//! End-to-end inference (serving) modeling: the §5 discussion's claim
//! that the methodology "is also applicable to the inference",
//! exercised through the same trace → graph → replay pipeline as
//! training.

use lumos::prelude::*;
use lumos_cluster::{execute, lower_inference, JitterModel as Jitter};
use lumos_cost::HostOverheads;
use lumos_model::inference::layer_decode_ops;
use lumos_model::InferenceSetup;
use lumos_trace::KernelClass;

fn serving_setup(tp: u32) -> InferenceSetup {
    InferenceSetup {
        model: ModelConfig::custom("serve-model", 4, 1024, 4096, 8, 128),
        tp,
        batch_size: 4,
        prompt_len: 256,
        decode_tokens: 8,
    }
}

fn profile(setup: &InferenceSetup, seed: u64) -> (ClusterTrace, Dur) {
    let job = lower_inference(setup).unwrap();
    let out = execute(
        &job,
        &AnalyticalCostModel::h100(),
        &HostOverheads::default(),
        &Jitter::realistic(seed),
        0,
    )
    .unwrap();
    (out.trace, out.makespan)
}

#[test]
fn inference_trace_replays_accurately() {
    // Serving timelines re-derive one blocking sync per decode step,
    // so the replay floor is looser than training's; the paper's
    // average across training configs is 3.3%.
    let (trace, actual) = profile(&serving_setup(2), 1);
    trace.validate().unwrap();
    let replayed = Lumos::new().replay(&trace).unwrap();
    let err = replayed.makespan().relative_error(actual);
    assert!(err < 0.03, "inference replay error {err}");
}

#[test]
fn small_batch_decode_is_host_bound() {
    // A real serving insight the what-if machinery surfaces: at batch
    // 4 on an H100, decode kernels are near the launch floor, so
    // halving *kernel* time barely moves the makespan while halving
    // *host* time moves it substantially.
    let setup = serving_setup(2);
    let (trace, _) = profile(&setup, 2);
    let lumos = Lumos::new();
    let baseline = lumos.replay(&trace).unwrap().makespan();

    let mut kernel_graph = lumos.build_graph(&trace).unwrap();
    let touched =
        lumos::core::manipulate::whatif::scale_kernel_class(&mut kernel_graph, 0.5, |c| {
            matches!(
                c,
                KernelClass::AttentionDecode { .. } | KernelClass::Gemm { .. }
            )
        });
    assert!(touched > 0, "decode kernels present in the graph");
    let kernel_fast = lumos::core::simulate(&kernel_graph, &SimOptions::default())
        .unwrap()
        .makespan();

    let mut host_graph = lumos.build_graph(&trace).unwrap();
    lumos::core::manipulate::whatif::scale_host(&mut host_graph, 0.5);
    let host_fast = lumos::core::simulate(&host_graph, &SimOptions::default())
        .unwrap()
        .makespan();

    let kernel_gain = 1.0 - kernel_fast.as_secs_f64() / baseline.as_secs_f64();
    let host_gain = 1.0 - host_fast.as_secs_f64() / baseline.as_secs_f64();
    assert!(
        host_gain > kernel_gain,
        "expected host-bound decode: host gain {host_gain:.3} vs kernel gain {kernel_gain:.3}"
    );
    assert!(host_gain > 0.15, "host gain {host_gain:.3}");
}

#[test]
fn tensor_parallel_serving_exposes_communication() {
    // At this model size TP does not pay for itself (collective
    // latency exceeds the GEMM savings) — the structural claim that
    // holds at every size is that sharded serving shows communication
    // and solo serving shows none.
    let (solo_trace, _) = profile(&serving_setup(1), 3);
    let (tp_trace, _) = profile(&serving_setup(2), 3);
    use lumos_trace::BreakdownExt;
    let b = tp_trace.breakdown();
    assert!(b.exposed_comm > Dur::ZERO || b.overlapped > Dur::ZERO);
    let solo_b = solo_trace.breakdown();
    assert_eq!(solo_b.exposed_comm, Dur::ZERO);
    assert_eq!(solo_b.overlapped, Dur::ZERO);
}

#[test]
fn decode_cost_grows_with_kv_length() {
    // Later decode steps attend over longer caches; the modeled cost
    // of a decode layer must be monotone in cache length.
    let setup = serving_setup(1);
    let cost = AnalyticalCostModel::h100();
    let layer_cost = |kv: u64| -> Dur {
        layer_decode_ops(&setup, kv)
            .iter()
            .filter_map(|op| match op.body {
                lumos_model::ops::OpBody::AttentionDecode {
                    batch_heads,
                    kv_len,
                    head_dim,
                } => Some(cost.compute_cost(&KernelClass::AttentionDecode {
                    batch_heads,
                    kv_len,
                    head_dim,
                })),
                _ => None,
            })
            .sum()
    };
    assert!(layer_cost(4096) > layer_cost(1024));
    assert!(layer_cost(65_536) > layer_cost(4096));
}

#[test]
fn prefill_dominates_short_generations() {
    // A long prompt and two generated tokens: prefill compute dwarfs
    // the (host-bound) decode steps, so most of the makespan must be
    // the prefill annotation's span.
    let mut setup = serving_setup(1);
    setup.prompt_len = 4096;
    setup.batch_size = 8;
    setup.decode_tokens = 2;
    let (trace, makespan) = profile(&setup, 4);
    let rank0 = &trace.ranks()[0];
    // The prefill *annotation* covers only host dispatch; prefill
    // completion is the end of the first sample step's blocking sync
    // — i.e. time-to-first-token.
    let ttft = rank0
        .annotations()
        .find(|a| &*a.name == "sample step=0")
        .expect("first sample annotation present")
        .end();
    let origin = rank0
        .events()
        .iter()
        .map(|e| e.ts)
        .min()
        .expect("non-empty trace");
    let ttft = ttft.saturating_since(origin);
    assert!(
        ttft.as_secs_f64() > 0.5 * makespan.as_secs_f64(),
        "ttft {ttft} vs makespan {makespan}"
    );
}

#[test]
fn kv_cache_fits_are_checkable() {
    // An 80 GiB device holds the serve-model's cache comfortably, but
    // not at absurd batch sizes: the capacity math must be usable as
    // a feasibility gate like the training memory model.
    let setup = serving_setup(2);
    let per_seq_len = setup.kv_cache_bytes(setup.prompt_len + setup.decode_tokens as u64);
    assert!(per_seq_len < 80 * (1 << 30));
    let mut absurd = setup.clone();
    absurd.batch_size = 1 << 24;
    assert!(absurd.kv_cache_bytes(4096) > 80 * (1 << 30));
}
