//! Property tests for the Chrome-Trace-Format (Kineto-style) JSON
//! layer: arbitrary traces must survive export → import losslessly,
//! and replays must be identical through the JSON round trip.

use lumos::prelude::*;
use lumos_trace::{
    from_chrome_json, to_chrome_json, ChromeTraceOptions, CollectiveKind, CommMeta,
    CudaRuntimeKind, EventKind, KernelClass, RankTrace, StreamId, ThreadId, TraceEvent,
};
use proptest::prelude::*;

fn arb_kernel_class() -> impl Strategy<Value = KernelClass> {
    prop_oneof![
        (1u64..4096, 1u64..4096, 1u64..4096).prop_map(|(m, n, k)| KernelClass::Gemm { m, n, k }),
        (1u64..64, 1u64..4096, 16u64..256).prop_map(|(batch_heads, seq, head_dim)| {
            KernelClass::AttentionFwd {
                batch_heads,
                seq,
                head_dim,
            }
        }),
        (1u64..64, 1u64..8192, 16u64..256).prop_map(|(batch_heads, kv_len, head_dim)| {
            KernelClass::AttentionDecode {
                batch_heads,
                kv_len,
                head_dim,
            }
        }),
        (1u64..1_000_000).prop_map(|elems| KernelClass::Elementwise { elems }),
        (1u64..1_000_000).prop_map(|elems| KernelClass::Norm { elems }),
        (1u64..1_000_000).prop_map(|params| KernelClass::Optimizer { params }),
        (1u64..(1 << 30)).prop_map(|bytes| KernelClass::Memcpy { bytes }),
        Just(KernelClass::Other),
        (0u64..8, 0u32..16, 1u64..(1 << 24)).prop_map(|(group, seq, bytes)| {
            KernelClass::Collective(CommMeta {
                kind: CollectiveKind::AllReduce,
                group,
                seq,
                bytes,
            })
        }),
    ]
}

/// One host op + launch + kernel triple at a random offset, plus an
/// optional annotation / sync event — the building blocks of real
/// Kineto timelines.
fn arb_rank_trace(rank: u32) -> impl Strategy<Value = RankTrace> {
    let triple = (
        0u64..1_000_000,
        1u64..10_000,
        1u64..100_000,
        arb_kernel_class(),
        prop::bool::ANY,
    );
    prop::collection::vec(triple, 1..12).prop_map(move |triples| {
        let tid = ThreadId(1);
        let mut t = RankTrace::new(rank);
        for (i, (ts, host_dur, kernel_dur, class, annotate)) in triples.into_iter().enumerate() {
            let corr = i as u64 + 1;
            let stream = if class.is_comm() {
                StreamId(13)
            } else {
                StreamId(7)
            };
            t.push(TraceEvent::cpu_op("op", Ts(ts), Dur(host_dur), tid));
            t.push(
                TraceEvent::cuda_runtime(
                    CudaRuntimeKind::LaunchKernel,
                    Ts(ts + host_dur),
                    Dur(2_000),
                    tid,
                )
                .with_correlation(corr),
            );
            t.push(
                TraceEvent::kernel(
                    "k",
                    Ts(ts + host_dur + 4_000 + i as u64 * 200_000),
                    Dur(kernel_dur),
                    stream,
                )
                .with_correlation(corr)
                .with_class(class),
            );
            if annotate {
                t.push(TraceEvent::annotation(
                    format!("layer={i} fwd mb=0"),
                    Ts(ts),
                    Dur(host_dur + kernel_dur),
                    tid,
                ));
            }
        }
        t
    })
}

fn arb_cluster() -> impl Strategy<Value = ClusterTrace> {
    prop::collection::vec(Just(()), 1..4).prop_flat_map(|ranks| {
        let strategies: Vec<_> = (0..ranks.len() as u32).map(arb_rank_trace).collect();
        strategies.prop_map(|rank_traces| {
            let mut c = ClusterTrace::new("proptest");
            for r in rank_traces {
                c.push_rank(r);
            }
            c
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Export → import preserves every event of every rank.
    #[test]
    fn chrome_round_trip_lossless(cluster in arb_cluster()) {
        let json = to_chrome_json(&cluster, &ChromeTraceOptions::default());
        let parsed = from_chrome_json(&json).unwrap();
        prop_assert_eq!(parsed.world_size(), cluster.world_size());
        for (a, b) in cluster.ranks().iter().zip(parsed.ranks()) {
            prop_assert_eq!(a.rank(), b.rank());
            let mut ae = a.events().to_vec();
            let mut be = b.events().to_vec();
            let key = |e: &TraceEvent| (e.ts, e.dur, format!("{:?}", e.kind));
            ae.sort_by_key(key);
            be.sort_by_key(key);
            prop_assert_eq!(ae, be);
        }
    }

    /// Kernel classes — including the inference decode class — survive
    /// the args encoding exactly.
    #[test]
    fn kernel_classes_survive_json(class in arb_kernel_class()) {
        let mut r = RankTrace::new(0);
        r.push(
            TraceEvent::cuda_runtime(CudaRuntimeKind::LaunchKernel, Ts(0), Dur(1_000), ThreadId(1))
                .with_correlation(1),
        );
        r.push(
            TraceEvent::kernel("k", Ts(2_000), Dur(5_000), StreamId(7))
                .with_correlation(1)
                .with_class(class),
        );
        let mut c = ClusterTrace::new("classes");
        c.push_rank(r);
        let parsed = from_chrome_json(&to_chrome_json(&c, &ChromeTraceOptions::default())).unwrap();
        let kernel = parsed.ranks()[0]
            .events()
            .iter()
            .find(|e| e.is_gpu())
            .unwrap();
        match kernel.kind {
            EventKind::Kernel { class: parsed_class, .. } => prop_assert_eq!(parsed_class, class),
            _ => prop_assert!(false, "kernel did not survive"),
        }
    }

    /// Replaying a parsed trace gives exactly the same makespan as
    /// replaying the original.
    #[test]
    fn replay_identical_through_json(cluster in arb_cluster()) {
        let direct = Lumos::new().replay(&cluster);
        let json = to_chrome_json(&cluster, &ChromeTraceOptions::default());
        let parsed = from_chrome_json(&json).unwrap();
        let via_json = Lumos::new().replay(&parsed);
        match (direct, via_json) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.makespan(), b.makespan()),
            (Err(_), Err(_)) => {} // consistent rejection is fine
            (a, b) => prop_assert!(
                false,
                "inconsistent: direct={:?} via_json={:?}",
                a.is_ok(),
                b.is_ok()
            ),
        }
    }
}
