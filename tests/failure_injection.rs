//! Failure-injection and robustness tests: extreme noise, straggler
//! ranks, and degenerate traces must produce defined behavior (clean
//! errors or sound replays), never panics or silent nonsense.

use lumos::prelude::*;
use lumos_trace::{CudaRuntimeKind, RankTrace, StreamId, ThreadId, TraceEvent, Ts};

fn small_setup() -> TrainingSetup {
    let model = ModelConfig::custom("inject-model", 2, 512, 2048, 4, 128);
    TrainingSetup::new(model, Parallelism::new(2, 1, 2).unwrap())
}

#[test]
fn extreme_jitter_still_replays() {
    // Crank every noise source far beyond production levels: the
    // trace must stay structurally valid and replay exactly (replay
    // reproduces whatever timeline was recorded, noisy or not).
    let jitter = JitterModel {
        kernel_cv: 0.5,
        host_cv: 1.0,
        comm_cv: 0.8,
        drift_cv: 0.3,
        seed: 99,
    };
    let cluster = GroundTruthCluster::new(&small_setup(), AnalyticalCostModel::h100())
        .unwrap()
        .with_jitter(jitter);
    let out = cluster.profile_iteration(0).unwrap();
    out.trace.validate().unwrap();
    let replayed = Lumos::new().replay(&out.trace).unwrap();
    let err = replayed.makespan().relative_error(out.makespan);
    assert!(err < 0.01, "replay of a noisy trace drifted {err}");
}

#[test]
fn straggler_rank_slows_everyone_through_rendezvous() {
    // Slow down one rank's compute kernels 3x in the graph; collective
    // rendezvous must propagate the slowdown to the whole job, and
    // the healthy ranks' added time must show up as exposed comm /
    // waiting, not compute.
    let setup = small_setup();
    let cluster = GroundTruthCluster::new(&setup, AnalyticalCostModel::h100()).unwrap();
    let trace = cluster.profile_iteration(0).unwrap().trace;
    let lumos = Lumos::new();
    let baseline = lumos.replay(&trace).unwrap().makespan();

    let mut graph = lumos.build_graph(&trace).unwrap();
    let straggler = lumos_trace::RankId(0);
    // The predicate sees only the task, so resolve the straggler's
    // processor indices up front.
    let straggler_procs: Vec<u32> = (0..graph.processors().len() as u32)
        .filter(|&i| match graph.processor(i) {
            lumos::core::Processor::Stream { rank, .. } => rank == straggler,
            lumos::core::Processor::Thread { rank, .. } => rank == straggler,
        })
        .collect();
    let slowed = lumos::core::manipulate::whatif::scale_tasks(&mut graph, 3.0, |t| {
        straggler_procs.contains(&t.processor)
            && matches!(t.kind, lumos::core::TaskKind::Kernel(ref c) if !c.is_comm())
    });
    assert!(slowed > 0);

    let sim = lumos::core::simulate(&graph, &SimOptions::default()).unwrap();
    assert!(
        sim.makespan() > baseline.scale(1.5),
        "straggler did not propagate: {} vs baseline {}",
        sim.makespan(),
        baseline
    );
}

#[test]
fn empty_trace_replays_to_zero() {
    let trace = ClusterTrace::new("empty");
    let replayed = Lumos::new().replay(&trace).unwrap();
    assert_eq!(replayed.makespan(), Dur::ZERO);
    assert!(replayed.trace.ranks().is_empty());
}

#[test]
fn kernel_without_launch_is_rejected() {
    // A kernel whose correlation id has no launching runtime event
    // breaks the CPU→GPU dependency class: the builder must say so.
    let mut r = RankTrace::new(0);
    r.push(TraceEvent::kernel("orphan", Ts(0), Dur(1000), StreamId(7)).with_correlation(42));
    let mut trace = ClusterTrace::new("orphan-kernel");
    trace.push_rank(r);
    let err = Lumos::new().replay(&trace).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("correlation") || msg.contains("launch"),
        "unhelpful error: {msg}"
    );
}

#[test]
fn wait_on_unrecorded_event_is_rejected() {
    let tid = ThreadId(1);
    let mut r = RankTrace::new(0);
    r.push(TraceEvent::cuda_runtime(
        CudaRuntimeKind::StreamWaitEvent {
            stream: StreamId(7),
            event: 123,
        },
        Ts(0),
        Dur(1000),
        tid,
    ));
    let mut trace = ClusterTrace::new("dangling-wait");
    trace.push_rank(r);
    // Waiting on an event never recorded is a no-op in CUDA; the
    // builder must tolerate it (no edge) rather than fail.
    let replayed = Lumos::new().replay(&trace).unwrap();
    assert!(replayed.makespan() >= Dur(1000));
}

#[test]
fn unsorted_rank_trace_is_handled() {
    // Events pushed out of order: RankTrace sorts on demand; the
    // replay must match the sorted equivalent.
    let tid = ThreadId(1);
    let mut r = RankTrace::new(0);
    r.push(
        TraceEvent::cuda_runtime(CudaRuntimeKind::LaunchKernel, Ts(5_000), Dur(2_000), tid)
            .with_correlation(1),
    );
    r.push(TraceEvent::kernel("k", Ts(9_000), Dur(10_000), StreamId(7)).with_correlation(1));
    r.push(TraceEvent::cpu_op("eager-op", Ts(0), Dur(5_000), tid));
    let mut trace = ClusterTrace::new("unsorted");
    trace.push_rank(r);
    let replayed = Lumos::new().replay(&trace).unwrap();
    assert!(replayed.makespan() >= Dur(17_000));
}

#[test]
fn duplicate_correlation_ids_are_rejected() {
    let tid = ThreadId(1);
    let mut r = RankTrace::new(0);
    for i in 0..2u64 {
        r.push(
            TraceEvent::cuda_runtime(
                CudaRuntimeKind::LaunchKernel,
                Ts(i * 10_000),
                Dur(2_000),
                tid,
            )
            .with_correlation(7),
        );
        r.push(
            TraceEvent::kernel("k", Ts(i * 10_000 + 4_000), Dur(1_000), StreamId(7))
                .with_correlation(7),
        );
    }
    let mut trace = ClusterTrace::new("dup-corr");
    trace.push_rank(r);
    let result = Lumos::new().replay(&trace);
    assert!(
        result.is_err(),
        "duplicate correlation ids must not be silently accepted"
    );
}

#[test]
fn predict_on_unannotated_trace_gives_missing_annotations() {
    // Structural manipulation needs layer annotations; a bare trace
    // must produce the documented MissingAnnotations error.
    let tid = ThreadId(1);
    let mut r = RankTrace::new(0);
    r.push(TraceEvent::cpu_op("op", Ts(0), Dur(1_000), tid));
    let mut trace = ClusterTrace::new("bare");
    trace.push_rank(r);
    let setup = small_setup();
    let err = Lumos::new()
        .predict(
            &trace,
            &setup,
            &[Transform::NumLayers { layers: 4 }],
            AnalyticalCostModel::h100(),
        )
        .unwrap_err();
    assert!(err.to_string().contains("annotation"));
}

#[test]
fn zero_duration_events_are_harmless() {
    let tid = ThreadId(1);
    let mut r = RankTrace::new(0);
    r.push(TraceEvent::cpu_op("instant", Ts(0), Dur::ZERO, tid));
    r.push(TraceEvent::cpu_op("after", Ts(0), Dur(100), tid));
    let mut trace = ClusterTrace::new("zero-dur");
    trace.push_rank(r);
    let replayed = Lumos::new().replay(&trace).unwrap();
    assert_eq!(replayed.makespan(), Dur(100));
}
