//! Determinism guarantees (DESIGN.md key decision #4): identical
//! inputs must always produce identical traces and replays, across
//! the ground-truth engine, the Lumos simulator, the dPRO baseline,
//! and graph manipulation.

use lumos::prelude::*;

fn setup() -> TrainingSetup {
    let model = ModelConfig::custom("det-model", 4, 512, 2048, 4, 128);
    TrainingSetup::new(model, Parallelism::new(2, 2, 1).unwrap())
}

fn profiled(seed: u64, iteration: u64) -> (ClusterTrace, Dur) {
    let cluster = GroundTruthCluster::new(&setup(), AnalyticalCostModel::h100())
        .unwrap()
        .with_jitter(JitterModel::realistic(seed));
    let out = cluster.profile_iteration(iteration).unwrap();
    (out.trace, out.makespan)
}

#[test]
fn engine_is_deterministic_per_seed_and_iteration() {
    let (t1, m1) = profiled(5, 0);
    let (t2, m2) = profiled(5, 0);
    assert_eq!(m1, m2);
    assert_eq!(t1.total_events(), t2.total_events());
    for (a, b) in t1.ranks().iter().zip(t2.ranks()) {
        assert_eq!(a.events(), b.events());
    }
}

#[test]
fn different_iterations_differ_under_jitter() {
    let (_, m0) = profiled(5, 0);
    let (_, m1) = profiled(5, 1);
    assert_ne!(m0, m1, "jitter must vary across iterations");
}

#[test]
fn different_seeds_differ() {
    let (_, a) = profiled(5, 0);
    let (_, b) = profiled(6, 0);
    assert_ne!(a, b, "different clusters must time differently");
}

#[test]
fn simulator_is_deterministic_across_rebuilds() {
    let (trace, _) = profiled(7, 0);
    let lumos = Lumos::new();
    let mut spans = Vec::new();
    for _ in 0..3 {
        let replayed = lumos.replay(&trace).unwrap();
        spans.push(replayed.makespan());
        // The full simulated timeline must match, not just the end.
        let again = lumos.replay(&trace).unwrap();
        for (a, b) in replayed.trace.ranks().iter().zip(again.trace.ranks()) {
            assert_eq!(a.events(), b.events());
        }
    }
    assert!(spans.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn dpro_baseline_is_deterministic() {
    let (trace, _) = profiled(8, 0);
    let a = Dpro::new().replay(&trace).unwrap().makespan();
    let b = Dpro::new().replay(&trace).unwrap().makespan();
    assert_eq!(a, b);
}

#[test]
fn replay_of_a_replay_is_a_fixed_point() {
    // Simulated traces use the same event vocabulary as profiles, so
    // replaying a replay must reproduce the same makespan almost
    // exactly (sync placeholders are re-derived, so allow 1%).
    let (trace, _) = profiled(9, 0);
    let lumos = Lumos::new();
    let first = lumos.replay(&trace).unwrap();
    let second = lumos.replay(&first.trace).unwrap();
    let drift = second.makespan().relative_error(first.makespan());
    assert!(drift < 0.01, "replay fixed-point drift {drift}");
}

#[test]
fn predictions_are_deterministic() {
    let (trace, _) = profiled(10, 0);
    let s = setup();
    let predict = || {
        Lumos::new()
            .predict(
                &trace,
                &s,
                &[Transform::DataParallel { dp: 2 }],
                AnalyticalCostModel::h100(),
            )
            .unwrap()
            .makespan()
    };
    assert_eq!(predict(), predict());
}

#[test]
fn inference_profiles_are_deterministic() {
    let inf = lumos_model::InferenceSetup {
        model: ModelConfig::tiny(),
        tp: 2,
        batch_size: 2,
        prompt_len: 64,
        decode_tokens: 3,
    };
    let a = lumos_cluster::profile_inference(&inf, 11).unwrap();
    let b = lumos_cluster::profile_inference(&inf, 11).unwrap();
    assert_eq!(a.makespan(), b.makespan());
    assert_eq!(a.total_events(), b.total_events());
}
