//! Workspace-level property tests: invariants that must hold for
//! arbitrary (small) configurations, end to end.

use lumos::prelude::*;
use proptest::prelude::*;

fn setup_for(tp: u32, pp: u32, dp: u32, layers: u32, mb: u32) -> TrainingSetup {
    let model = ModelConfig::custom("prop-model", layers, 256, 1024, 4, 64);
    TrainingSetup {
        model,
        parallelism: Parallelism::new(tp, pp, dp).unwrap(),
        batch: BatchConfig {
            seq_len: 128,
            microbatch_size: 1,
            num_microbatches: mb,
        },
        schedule: ScheduleKind::OneFOneB,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any valid small deployment executes, validates, and replays
    /// exactly under zero jitter.
    #[test]
    fn zero_jitter_replay_is_exact(
        tp in 1u32..3,
        pp in 1u32..4,
        dp in 1u32..3,
        mb in 1u32..5,
    ) {
        // Layers divisible by pp; heads (4) divisible by tp.
        let layers = pp * 2;
        let setup = setup_for(tp, pp, dp, layers, mb);
        let cluster = GroundTruthCluster::new(&setup, AnalyticalCostModel::h100()).unwrap();
        let out = cluster.profile_iteration(0).unwrap();
        out.trace.validate().unwrap();
        let replayed = Lumos::new().replay(&out.trace).unwrap();
        let err = replayed.makespan().relative_error(out.makespan);
        prop_assert!(err < 0.001, "replay error {err} for {}", setup.label());
    }

    /// The dPRO baseline never predicts slower than Lumos (it only
    /// removes constraints).
    #[test]
    fn dpro_is_a_relaxation(
        tp in 1u32..3,
        dp in 1u32..3,
        mb in 1u32..4,
    ) {
        let setup = setup_for(tp, 1, dp, 2, mb);
        let cluster = GroundTruthCluster::new(&setup, AnalyticalCostModel::h100()).unwrap();
        let out = cluster.profile_iteration(0).unwrap();
        let lumos = Lumos::new().replay(&out.trace).unwrap();
        let dpro = Dpro::new().replay(&out.trace).unwrap();
        prop_assert!(dpro.makespan() <= lumos.makespan());
    }

    /// Identity prediction (no transforms) reproduces the base
    /// configuration's timing within tolerance.
    #[test]
    fn identity_prediction_stable(
        pp in 1u32..3,
        dp in 1u32..3,
    ) {
        let setup = setup_for(1, pp, dp, pp * 2, 2 * pp);
        let cluster = GroundTruthCluster::new(&setup, AnalyticalCostModel::h100()).unwrap();
        let out = cluster.profile_iteration(0).unwrap();
        let prediction = Lumos::new()
            .predict(&out.trace, &setup, &[], AnalyticalCostModel::h100())
            .unwrap();
        prediction.trace.validate().unwrap();
        let err = prediction.makespan().relative_error(out.makespan);
        prop_assert!(err < 0.06, "identity prediction error {err} for {}", setup.label());
    }

    /// Scaling every kernel duration by a factor scales no task's
    /// simulated span below the host-bound floor, and the makespan is
    /// monotone in the factor.
    #[test]
    fn whatif_scaling_is_monotone(factor_pct in 25u32..100) {
        let setup = setup_for(1, 1, 1, 2, 2);
        let cluster = GroundTruthCluster::new(&setup, AnalyticalCostModel::h100()).unwrap();
        let out = cluster.profile_iteration(0).unwrap();
        let lumos = Lumos::new();
        let baseline = lumos.replay(&out.trace).unwrap().makespan();
        let mut graph = lumos.build_graph(&out.trace).unwrap();
        lumos::core::manipulate::whatif::scale_tasks(
            &mut graph,
            factor_pct as f64 / 100.0,
            |t| matches!(t.kind, lumos::core::TaskKind::Kernel(_)),
        );
        let scaled = lumos::core::simulate(&graph, &SimOptions::default())
            .unwrap()
            .makespan();
        prop_assert!(scaled <= baseline);
    }
}
