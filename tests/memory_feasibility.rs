//! Memory-feasibility and FLOPS-utilization invariants across crates:
//! the §5 "future work" metrics composed with prediction the way a
//! capacity planner would use them.

use lumos::prelude::*;
use lumos_cost::GpuSpec;
use lumos_model::memory::{MemoryModel, OptimizerPlacement, Recompute};
use lumos_model::{iteration_flops, utilization};
use proptest::prelude::*;

fn setup_for(tp: u32, pp: u32, dp: u32, mb: u32) -> TrainingSetup {
    let model = ModelConfig::custom("mem-model", pp * 2, 1024, 4096, 8, 128);
    TrainingSetup {
        model,
        parallelism: Parallelism::new(tp, pp, dp).unwrap(),
        batch: BatchConfig {
            seq_len: 512,
            microbatch_size: 1,
            num_microbatches: mb,
        },
        schedule: ScheduleKind::OneFOneB,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// More tensor parallelism never increases any stage's footprint.
    #[test]
    fn memory_monotone_in_tp(pp in 1u32..3, dp in 1u32..3, mb in 1u32..5) {
        let m = MemoryModel::default();
        let narrow = m.estimate_peak(&setup_for(2, pp, dp, mb)).1;
        let wide = m.estimate_peak(&setup_for(4, pp, dp, mb)).1;
        prop_assert!(wide.total() <= narrow.total());
    }

    /// More pipeline stages never increase the peak footprint (fewer
    /// layers per stage; in-flight count grows more slowly).
    #[test]
    fn memory_monotone_in_pp(tp in 1u32..3, mb in 4u32..8) {
        let m = MemoryModel::default();
        let shallow = m.estimate_peak(&setup_for(tp, 2, 1, mb)).1;
        let deep = m.estimate_peak(&setup_for(tp, 4, 1, mb)).1;
        // Same total layers requires matching models: rebuild with a
        // fixed layer count divisible by both.
        let mut a = setup_for(tp, 2, 1, mb);
        a.model.num_layers = 8;
        let mut b = setup_for(tp, 4, 1, mb);
        b.model.num_layers = 8;
        let shallow_fixed = m.estimate_peak(&a).1;
        let deep_fixed = m.estimate_peak(&b).1;
        prop_assert!(deep_fixed.total() <= shallow_fixed.total());
        // The loosely-matched pair must at least both be positive.
        prop_assert!(shallow.total() > 0 && deep.total() > 0);
    }

    /// Recompute policies are ordered at every configuration.
    #[test]
    fn recompute_ordering_everywhere(tp in 1u32..3, pp in 1u32..3, mb in 1u32..5) {
        let s = setup_for(tp, pp, 1, mb);
        let acts = |r: Recompute| {
            MemoryModel::with_recompute(r).estimate_peak(&s).1.activations
        };
        prop_assert!(acts(Recompute::None) >= acts(Recompute::Selective));
        prop_assert!(acts(Recompute::Selective) >= acts(Recompute::Full));
    }

    /// The distributed optimizer saves exactly the sharded fraction.
    #[test]
    fn distributed_optimizer_saving(dp in 2u32..9) {
        let s = setup_for(1, 1, dp, 2);
        let repl = MemoryModel::default().estimate_stage(&s, 0);
        let dist = MemoryModel {
            optimizer: OptimizerPlacement::DistributedOptimizer,
            ..MemoryModel::default()
        }
        .estimate_stage(&s, 0);
        prop_assert_eq!(dist.optimizer, repl.optimizer.div_ceil(dp as u64));
    }

    /// MFU is scale-free in DP: doubling replicas doubles both FLOPs
    /// and GPUs.
    #[test]
    fn mfu_scale_free_in_dp(dp in 1u32..5) {
        let a = setup_for(2, 1, dp, 2);
        let b = setup_for(2, 1, 2 * dp, 2);
        let ua = utilization(&a, Recompute::Selective, 1.0, 989e12);
        let ub = utilization(&b, Recompute::Selective, 1.0, 989e12);
        prop_assert!((ua.mfu - ub.mfu).abs() < 1e-12);
    }

    /// Hardware FLOPs ≥ model FLOPs always.
    #[test]
    fn hfu_floor(tp in 1u32..3, pp in 1u32..3, mb in 1u32..4) {
        let s = setup_for(tp, pp, 1, mb);
        for r in [Recompute::None, Recompute::Selective, Recompute::Full] {
            let f = iteration_flops(&s, r);
            prop_assert!(f.hardware_flops() >= f.model_flops());
        }
    }
}

#[test]
fn capacity_planner_workflow() {
    // The workflow the memory gate exists for: sweep micro-batch
    // counts, keep the feasible ones, and verify the model agrees
    // that GPipe needs more memory than 1F1B for the same config.
    let gpu = GpuSpec::h100_sxm();
    let memory = MemoryModel::default();
    let mut feasible = Vec::new();
    for mb in [2u32, 4, 8, 16, 32] {
        let s = setup_for(2, 2, 1, mb);
        if memory.check(&s, gpu.memory_bytes()).is_ok() {
            feasible.push(mb);
        }
    }
    assert!(!feasible.is_empty(), "some micro-batch count must fit");
    // 1F1B caps in-flight activations at pp, so feasibility must not
    // depend on mb beyond pp: once one fits, all fit.
    assert_eq!(feasible.len(), 5);

    let mut gpipe = setup_for(2, 2, 1, 32);
    gpipe.schedule = ScheduleKind::GPipe;
    let f1b = setup_for(2, 2, 1, 32);
    assert!(memory.estimate_peak(&gpipe).1.activations > memory.estimate_peak(&f1b).1.activations);
}

#[test]
fn oom_error_reports_binding_stage() {
    // First stage binds under 1F1B (most in-flight micro-batches).
    let s = setup_for(1, 4, 1, 8);
    let err = MemoryModel::default()
        .check(&s, 1 << 30) // 1 GiB: everything overflows
        .unwrap_err();
    assert_eq!(err.stage, 0);
    assert!(err.required > err.capacity);
}
