//! Cross-validation of graph manipulation (§3.4/§4.3) against the
//! ground-truth cluster: every supported transform's prediction is
//! compared with an actual profile of the target configuration, the
//! way the paper's Figures 7 and 8 validate Lumos.

use lumos::prelude::*;

fn base_model() -> ModelConfig {
    ModelConfig::custom("xval-model", 4, 1024, 4096, 8, 128)
}

fn setup(tp: u32, pp: u32, dp: u32) -> TrainingSetup {
    TrainingSetup::new(base_model(), Parallelism::new(tp, pp, dp).unwrap())
}

fn profiled(setup: &TrainingSetup, seed: u64) -> (ClusterTrace, Dur) {
    let cluster = GroundTruthCluster::new(setup, AnalyticalCostModel::h100())
        .unwrap()
        .with_jitter(JitterModel::realistic(seed));
    let out = cluster.profile_iteration(0).unwrap();
    (out.trace, out.makespan)
}

/// Predicts `transforms` applied to `base`, profiles the target
/// configuration for ground truth, and returns (predicted, actual).
fn predict_vs_actual(
    base: &TrainingSetup,
    transforms: &[Transform],
    seed: u64,
) -> (Dur, Dur, TrainingSetup) {
    let (trace, _) = profiled(base, seed);
    let prediction = Lumos::new()
        .predict(&trace, base, transforms, AnalyticalCostModel::h100())
        .unwrap();
    let target = prediction.setup.clone();
    let (_, actual) = profiled(&target, seed + 1000);
    (prediction.makespan(), actual, target)
}

#[test]
fn tp_rescale_up_predicts_ground_truth() {
    // The paper's future work: tp 2 -> 4 on the same model.
    let base = setup(2, 1, 1);
    let (predicted, actual, target) =
        predict_vs_actual(&base, &[Transform::TensorParallel { tp: 4 }], 21);
    assert_eq!(target.parallelism.tp, 4);
    let err = predicted.relative_error(actual);
    assert!(err < 0.15, "tp 2->4 prediction error {err:.3}");
}

#[test]
fn tp_rescale_down_predicts_ground_truth() {
    let base = setup(4, 1, 1);
    let (predicted, actual, _) =
        predict_vs_actual(&base, &[Transform::TensorParallel { tp: 2 }], 22);
    let err = predicted.relative_error(actual);
    assert!(err < 0.15, "tp 4->2 prediction error {err:.3}");
}

#[test]
fn tp_rescale_shrinks_per_rank_compute() {
    // Doubling TP halves per-rank GEMM work; with fast intra-node
    // collectives the iteration must get faster.
    let base = setup(2, 1, 1);
    let (trace, actual_base) = profiled(&base, 23);
    let prediction = Lumos::new()
        .predict(
            &trace,
            &base,
            &[Transform::TensorParallel { tp: 4 }],
            AnalyticalCostModel::h100(),
        )
        .unwrap();
    assert!(
        prediction.makespan() < actual_base,
        "tp 4 predicted {} !< tp 2 actual {}",
        prediction.makespan(),
        actual_base
    );
}

#[test]
fn tp_one_to_many_is_rejected() {
    let base = setup(1, 1, 1);
    let (trace, _) = profiled(&base, 24);
    let err = Lumos::new()
        .predict(
            &trace,
            &base,
            &[Transform::TensorParallel { tp: 2 }],
            AnalyticalCostModel::h100(),
        )
        .unwrap_err();
    assert!(err.to_string().contains("collective structure"));
}

#[test]
fn seq_len_scaling_predicts_ground_truth() {
    let base = setup(2, 1, 1);
    for (seq, seed) in [(256u64, 31u64), (1024, 32)] {
        let (predicted, actual, target) =
            predict_vs_actual(&base, &[Transform::SeqLen { seq_len: seq }], seed);
        assert_eq!(target.batch.seq_len, seq);
        let err = predicted.relative_error(actual);
        assert!(err < 0.15, "seq {seq} prediction error {err:.3}");
    }
}

#[test]
fn longer_sequences_cost_more() {
    let base = setup(2, 1, 1); // default seq 2048
    let (trace, _) = profiled(&base, 33);
    let lumos = Lumos::new();
    let short = lumos
        .predict(
            &trace,
            &base,
            &[Transform::SeqLen { seq_len: 512 }],
            AnalyticalCostModel::h100(),
        )
        .unwrap();
    let long = lumos
        .predict(
            &trace,
            &base,
            &[Transform::SeqLen { seq_len: 4096 }],
            AnalyticalCostModel::h100(),
        )
        .unwrap();
    assert!(long.makespan() > short.makespan());
    // 8x the tokens must scale substantially, but host overheads and
    // the optimizer phase are seq-independent, so stay loose.
    let ratio = long.makespan().as_secs_f64() / short.makespan().as_secs_f64();
    assert!(ratio > 2.0, "8x seq scaled only {ratio:.2}x");
}

#[test]
fn tp_composes_with_dp_and_layers() {
    let base = setup(2, 1, 1);
    let (predicted, actual, target) = predict_vs_actual(
        &base,
        &[
            Transform::TensorParallel { tp: 4 },
            Transform::DataParallel { dp: 2 },
            Transform::NumLayers { layers: 8 },
        ],
        41,
    );
    assert_eq!(target.parallelism.tp, 4);
    assert_eq!(target.parallelism.dp, 2);
    assert_eq!(target.model.num_layers, 8);
    let err = predicted.relative_error(actual);
    assert!(err < 0.20, "composed prediction error {err:.3}");
}

#[test]
fn predicted_tp_trace_has_resharded_kernels() {
    let base = setup(2, 1, 1);
    let (trace, _) = profiled(&base, 51);
    let prediction = Lumos::new()
        .predict(
            &trace,
            &base,
            &[Transform::TensorParallel { tp: 4 }],
            AnalyticalCostModel::h100(),
        )
        .unwrap();
    // Every QKV GEMM in the predicted trace must have n = 3a/4.
    let model = base_model();
    let expect_n = 3 * model.num_heads as u64 * model.head_dim / 4;
    let mut seen = 0;
    for rank in prediction.trace.ranks() {
        for e in rank.kernels() {
            if let lumos::trace::EventKind::Kernel {
                class: lumos::trace::KernelClass::Gemm { n, k, .. },
                ..
            } = e.kind
            {
                // QKV is the only k = d_model GEMM whose width is a
                // multiple of 3 (fc1's 4096/4 = 1024 is not).
                if k == model.hidden_size && n % 3 == 0 {
                    assert_eq!(n, expect_n);
                    seen += 1;
                }
            }
        }
    }
    assert!(seen > 0, "no qkv gemms found in predicted trace");
    // And the TP communicators must now span 4 ranks.
    assert_eq!(prediction.trace.world_size(), 4);
}

#[test]
fn microbatch_scaling_predicts_ground_truth() {
    let base = setup(2, 2, 1);
    let (predicted, actual, _) =
        predict_vs_actual(&base, &[Transform::Microbatches { num: 8 }], 61);
    let err = predicted.relative_error(actual);
    assert!(err < 0.15, "microbatch prediction error {err:.3}");
}
