//! Workspace-level integration tests exercising the public facade the
//! way a downstream user would: trace I/O, replay, prediction,
//! baseline comparison, and analytics all composed together.

use lumos::prelude::*;

fn small_setup() -> TrainingSetup {
    let model = ModelConfig::custom("e2e-model", 4, 1024, 4096, 8, 128);
    TrainingSetup::new(model, Parallelism::new(2, 2, 1).unwrap())
}

fn profiled_trace(setup: &TrainingSetup, seed: u64) -> (ClusterTrace, Dur) {
    let cluster = GroundTruthCluster::new(setup, AnalyticalCostModel::h100())
        .unwrap()
        .with_jitter(JitterModel::realistic(seed));
    let out = cluster.profile_iteration(0).unwrap();
    (out.trace, out.makespan)
}

#[test]
fn replay_round_trips_through_chrome_json() {
    // Kineto-format export/import must preserve replay results
    // exactly: a user can archive traces as JSON and replay later.
    let setup = small_setup();
    let (trace, _) = profiled_trace(&setup, 1);
    let direct = Lumos::new().replay(&trace).unwrap();

    let json = lumos::trace::to_chrome_json(&trace, &Default::default());
    let parsed = lumos::trace::from_chrome_json(&json).unwrap();
    let via_json = Lumos::new().replay(&parsed).unwrap();

    assert_eq!(direct.makespan(), via_json.makespan());
    assert_eq!(direct.breakdown(), via_json.breakdown());
}

#[test]
fn full_paper_loop_on_one_trace() {
    // Profile -> replay -> dPRO compare -> predict 2x DP -> validate.
    let setup = small_setup();
    let (trace, actual) = profiled_trace(&setup, 2);

    let lumos = Lumos::new();
    let replayed = lumos.replay(&trace).unwrap();
    assert!(
        replayed.makespan().relative_error(actual) < 0.02,
        "same-iteration replay should be tight"
    );

    let dpro = Dpro::new().replay(&trace).unwrap();
    assert!(dpro.makespan() <= replayed.makespan());

    let prediction = lumos
        .predict(
            &trace,
            &setup,
            &[Transform::DataParallel { dp: 2 }],
            AnalyticalCostModel::h100(),
        )
        .unwrap();
    let mut target = setup.clone();
    target.parallelism = Parallelism::new(2, 2, 2).unwrap();
    let (_, target_actual) = profiled_trace(&target, 3);
    let err = prediction.makespan().relative_error(target_actual);
    assert!(err < 0.12, "dp prediction error {err}");
}

#[test]
fn breakdown_components_sum_to_makespan() {
    let setup = small_setup();
    let (trace, _) = profiled_trace(&setup, 4);
    let b = trace.breakdown();
    // Component sum equals the analysis window (the cluster span), up
    // to one nanosecond of integer rounding per averaged component.
    let diff = trace.makespan().saturating_sub(b.total());
    assert!(diff <= Dur(4), "breakdown total off by {diff}");
    // A TP+PP job must expose some communication and some overlap-free
    // compute.
    assert!(b.exposed_compute > Dur::ZERO);
    assert!(b.exposed_comm > Dur::ZERO);
}

#[test]
fn deterministic_end_to_end() {
    let setup = small_setup();
    let (t1, m1) = profiled_trace(&setup, 9);
    let (t2, m2) = profiled_trace(&setup, 9);
    assert_eq!(m1, m2);
    assert_eq!(t1.total_events(), t2.total_events());
    let r1 = Lumos::new().replay(&t1).unwrap();
    let r2 = Lumos::new().replay(&t2).unwrap();
    assert_eq!(r1.makespan(), r2.makespan());
}

#[test]
fn schedule_policies_differ_as_expected() {
    // GPipe holds more activations in flight and (with these sizes)
    // the same bubble fraction; both must execute and validate.
    let mut gpipe_setup = small_setup();
    gpipe_setup.schedule = ScheduleKind::GPipe;
    let (gpipe_trace, gpipe_time) = profiled_trace(&gpipe_setup, 5);
    let (f1b_trace, f1b_time) = profiled_trace(&small_setup(), 5);
    gpipe_trace.validate().unwrap();
    f1b_trace.validate().unwrap();
    assert!(gpipe_time > Dur::ZERO && f1b_time > Dur::ZERO);
}

#[test]
fn what_if_kernel_speedups_bounded_by_amdahl() {
    let setup = small_setup();
    let (trace, _) = profiled_trace(&setup, 6);
    let lumos = Lumos::new();
    let baseline = lumos.replay(&trace).unwrap().makespan();

    let mut graph = lumos.build_graph(&trace).unwrap();
    let touched = lumos::core::manipulate::whatif::scale_gemms(&mut graph, 0.5);
    assert!(touched > 0);
    let sim = lumos::core::simulate(&graph, &SimOptions::default()).unwrap();
    // Faster GEMMs help, but never more than 2x (Amdahl).
    assert!(sim.makespan() < baseline);
    assert!(sim.makespan() > baseline.scale(0.4));
}

#[test]
fn critical_path_spans_the_iteration() {
    let setup = small_setup();
    let (trace, _) = profiled_trace(&setup, 8);
    let replayed = Lumos::new().replay(&trace).unwrap();
    let cp = lumos::core::analysis::critical_path(&replayed.graph, &replayed.result);
    assert!(!cp.is_empty());
    let accounted = cp.compute + cp.comm + cp.host + cp.idle;
    // The path plus its gaps accounts for the full makespan.
    assert_eq!(accounted, replayed.makespan());
}

#[test]
fn predictions_compose_transforms() {
    let setup = small_setup();
    let (trace, _) = profiled_trace(&setup, 10);
    let prediction = Lumos::new()
        .predict(
            &trace,
            &setup,
            &[
                Transform::NumLayers { layers: 8 },
                Transform::DataParallel { dp: 2 },
                Transform::Microbatches { num: 6 },
            ],
            AnalyticalCostModel::h100(),
        )
        .unwrap();
    assert_eq!(prediction.setup.model.num_layers, 8);
    assert_eq!(prediction.setup.parallelism.dp, 2);
    assert_eq!(prediction.setup.batch.num_microbatches, 6);
    prediction.trace.validate().unwrap();
    // The predicted trace world matches the target deployment.
    assert_eq!(
        prediction.trace.world_size(),
        prediction.setup.parallelism.world_size() as usize
    );
}
