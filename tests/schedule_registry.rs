//! Schedule-registry integration: the pluggable schedule seam works
//! end to end (zb-h1 lowers, verifies, simulates, and searches), and
//! the refactor left legacy 1F1B/GPipe behavior byte-identical.

use lumos::cluster::{lower, verify};
use lumos::prelude::*;

/// The sweep-style fixture: four stages, eight micro-batches —
/// enough pipeline depth for the schedules to separate.
fn fixture(schedule: ScheduleKind) -> TrainingSetup {
    let model = ModelConfig::custom("sched-e2e", 8, 256, 1024, 4, 64);
    let mut setup = TrainingSetup::new(model, Parallelism::new(1, 4, 1).unwrap());
    setup.batch = BatchConfig {
        seq_len: 128,
        microbatch_size: 1,
        num_microbatches: 8,
    };
    setup.schedule = schedule;
    setup
}

/// Deterministic (zero-jitter) ground-truth profile.
fn profiled(setup: &TrainingSetup) -> (ClusterTrace, Dur) {
    let out = GroundTruthCluster::new(setup, AnalyticalCostModel::h100())
        .unwrap()
        .profile_iteration(0)
        .unwrap();
    (out.trace, out.makespan)
}

#[test]
fn zb_h1_lowers_verifies_and_beats_1f1b_in_simulation() {
    let zb = fixture(ScheduleKind::ZbH1);
    let f1b = fixture(ScheduleKind::OneFOneB);

    // The lowered multi-rank program is statically deadlock-free.
    verify(&lower(&zb).unwrap()).unwrap();

    // Engine-simulated: splitting backward lets weight-grad work fill
    // cooldown bubbles, so the same workload finishes sooner.
    let (zb_trace, zb_time) = profiled(&zb);
    let (f1b_trace, f1b_time) = profiled(&f1b);
    zb_trace.validate().unwrap();
    f1b_trace.validate().unwrap();
    assert!(
        zb_time < f1b_time,
        "zb-h1 {zb_time:?} should beat 1f1b {f1b_time:?}"
    );

    // Simulated bubble fraction: the non-compute/non-comm share of the
    // iteration (host gaps + pipeline bubbles) shrinks under zb-h1.
    let bubble_share = |trace: &ClusterTrace| {
        let b = trace.breakdown();
        b.other.as_secs_f64() / b.total().as_secs_f64()
    };
    assert!(
        bubble_share(&zb_trace) < bubble_share(&f1b_trace),
        "zb-h1 bubble share {} should be below 1f1b {}",
        bubble_share(&zb_trace),
        bubble_share(&f1b_trace)
    );

    // And the analytic model agrees: (p-1)/(3m+p-1) < (p-1)/(m+p-1).
    assert!(
        ScheduleKind::ZbH1.analytic_bubble(4, 8) < ScheduleKind::OneFOneB.analytic_bubble(4, 8)
    );
}

#[test]
fn schedule_axis_searches_and_ranks_zb_h1_ahead() {
    let base = fixture(ScheduleKind::OneFOneB);
    let (trace, _) = profiled(&base);
    let spec = SpaceSpec::empty().with_schedules(&[ScheduleKind::OneFOneB, ScheduleKind::ZbH1]);
    let opts = SearchOptions {
        refine_sim: true,
        verify: true,
        ..SearchOptions::default()
    };
    let report = search_space(&trace, &base, &spec, &opts, AnalyticalCostModel::h100()).unwrap();

    let find = |needle: &str| {
        report
            .results
            .iter()
            .find(|r| r.label.contains(needle))
            .unwrap_or_else(|| panic!("no result labeled {needle}"))
    };
    let zb = find("s=zb-h1");
    let f1b = find("s=1f1b");
    assert!(zb.bubble_fraction < f1b.bubble_fraction);
    assert!(zb.makespan < f1b.makespan);

    // The refinement phase lowered both natively and simulated them.
    let refined = report.refined.as_ref().unwrap();
    let refined_find = |needle: &str| {
        refined
            .iter()
            .find(|r| r.label.contains(needle))
            .unwrap_or_else(|| panic!("no refined finalist labeled {needle}"))
    };
    assert!(refined_find("s=zb-h1").simulated_makespan < refined_find("s=1f1b").simulated_makespan);
}

#[test]
fn default_space_reports_stay_schedule_suffix_free_and_deterministic() {
    // Registry parity: spaces that never name a schedule axis keep
    // their pre-refactor labels and rank deterministically.
    let base = fixture(ScheduleKind::OneFOneB);
    let (trace, _) = profiled(&base);
    let spec = SpaceSpec::deployment_grid(&[1], &[2, 4], &[1]).with_microbatches(&[4, 8]);
    let opts = SearchOptions::default();
    let a = search_space(&trace, &base, &spec, &opts, AnalyticalCostModel::h100()).unwrap();
    let b = search_space(&trace, &base, &spec, &opts, AnalyticalCostModel::h100()).unwrap();
    assert_eq!(a.format_top(10), b.format_top(10));
    assert!(
        !a.format_top(10).contains(" s="),
        "default spaces must not grow schedule suffixes"
    );
}

#[test]
fn explicit_1f1b_axis_matches_default_numbers() {
    // A singleton `schedules = ["1f1b"]` axis prices every candidate
    // identically to the axis-free default — only the label gains the
    // disambiguating suffix.
    let base = fixture(ScheduleKind::OneFOneB);
    let (trace, _) = profiled(&base);
    let spec = SpaceSpec::deployment_grid(&[1], &[2, 4], &[1]).with_microbatches(&[4, 8]);
    let spec_axis = spec.clone().with_schedules(&[ScheduleKind::OneFOneB]);
    let opts = SearchOptions::default();
    let a = search_space(&trace, &base, &spec, &opts, AnalyticalCostModel::h100()).unwrap();
    let b = search_space(
        &trace,
        &base,
        &spec_axis,
        &opts,
        AnalyticalCostModel::h100(),
    )
    .unwrap();
    assert_eq!(a.results.len(), b.results.len());
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.candidate, y.candidate);
        assert_eq!(x.makespan, y.makespan);
        assert_eq!(x.bubble_fraction.to_bits(), y.bubble_fraction.to_bits());
        assert_eq!(y.label, format!("{} s=1f1b", x.label));
    }
}

#[test]
fn gpipe_stays_byte_identical_through_the_registry() {
    // The registry dispatch prices GPipe exactly as the closed enum
    // did: same generated order, same analytic bubble, same wire name.
    let setup = fixture(ScheduleKind::GPipe);
    let (trace, time) = profiled(&setup);
    trace.validate().unwrap();
    assert!(time > Dur::ZERO);
    assert_eq!(
        serde_json::to_string(&ScheduleKind::GPipe).unwrap(),
        "\"GPipe\""
    );
    assert_eq!(
        serde_json::to_string(&ScheduleKind::OneFOneB).unwrap(),
        "\"OneFOneB\""
    );
    // New schedules serialize under their registry name.
    assert_eq!(
        serde_json::to_string(&ScheduleKind::ZbH1).unwrap(),
        "\"zb-h1\""
    );
}
