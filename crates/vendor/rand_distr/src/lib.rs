//! A vendored, offline stand-in for `rand_distr` providing the
//! [`LogNormal`] distribution used by the jitter model, sampled via
//! the Box–Muller transform.

use rand::distributions::Distribution;
use rand::{Rng, RngCore};
use std::fmt;

/// Invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// The log-normal distribution: `exp(mu + sigma * Z)` for standard
/// normal `Z`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with the given location and scale of the
    /// underlying normal.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `sigma` is negative or not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if sigma < 0.0 || !sigma.is_finite() || !mu.is_finite() {
            return Err(Error);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms → one standard normal.
        let mut u1 = rng.gen_f64();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = rng.gen_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_matches_lognormal_identity() {
        // E[LogNormal(mu, sigma)] = exp(mu + sigma^2 / 2).
        let cv: f64 = 0.1;
        let sigma2 = (1.0 + cv * cv).ln();
        let dist = LogNormal::new(-sigma2 / 2.0, sigma2.sqrt()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn rejects_bad_sigma() {
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
    }
}
