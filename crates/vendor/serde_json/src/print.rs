//! Compact and pretty JSON printers.

use serde::value::Value;
use std::fmt::Write;

pub(crate) fn compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

pub(crate) fn pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some("  "), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
