//! A vendored, offline stand-in for `serde_json`, implementing the
//! entry points the workspace uses (`to_string`, `to_string_pretty`,
//! `from_str`, `to_value`, `from_value`, [`json!`], [`Value`]) on top
//! of the vendored `serde` value model.

mod parse;
mod print;

pub use serde::value::{Map, Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

/// A serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes to compact JSON.
///
/// # Errors
///
/// Infallible for tree-shaped data; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&value.serialize_value()))
}

/// Serializes to human-indented JSON.
///
/// # Errors
///
/// Infallible for tree-shaped data; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&value.serialize_value()))
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Infallible for tree-shaped data; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns the first shape mismatch.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::deserialize_value(&value)?)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns parse errors (malformed JSON) and shape mismatches.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    Ok(T::deserialize_value(&value)?)
}

/// Builds a [`Value`] from a JSON-ish literal. Object values and array
/// elements may be arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem).expect("json! element") ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::to_value(&$val).expect("json! value")); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::to_value(&$other).expect("json! value") };
}
