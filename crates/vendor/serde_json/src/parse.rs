//! A recursive-descent JSON parser producing [`Value`] trees.

use crate::Error;
use serde::value::{Map, Number, Value};

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("expected low surrogate"));
                            }
                            let low = self.hex4()?;
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 in string"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }
}
