//! A vendored, offline stand-in for the `rand` crate covering the API
//! surface the workspace uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], uniform `f64` generation, and the
//! [`distributions::Distribution`] trait (implemented by the sibling
//! `rand_distr` stand-in).
//!
//! `StdRng` here is SplitMix64 — statistically solid for simulation
//! noise and, crucially, **deterministic and stable across releases**,
//! which the workspace's seeded jitter model depends on.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 (see crate docs for why this
    /// differs from upstream `rand`'s ChaCha-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Sampling distributions.
pub mod distributions {
    use super::RngCore;

    /// Types that sample values of `T` from an RNG.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }
}
