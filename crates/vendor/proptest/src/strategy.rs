//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Builds a second strategy from each generated value and samples
    /// it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy (used by `prop_oneof!` so heterogeneous arms
/// unify).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds from non-empty arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.range_u64(0, self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.range_u64(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64() * (self.end - self.start)
    }
}

/// Each element strategy samples independently (mirrors proptest's
/// `Strategy for Vec<S>`).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// `PhantomData` marker kept for parity with call sites that name the
/// module path; not part of the public API.
#[doc(hidden)]
pub struct _Marker(PhantomData<()>);
