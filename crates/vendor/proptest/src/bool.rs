//! Boolean strategies (`prop::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A fair coin.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// The canonical fair-coin strategy.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
