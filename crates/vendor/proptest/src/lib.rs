//! A vendored, offline stand-in for the `proptest` crate.
//!
//! Covers the API surface the workspace's property tests use —
//! [`proptest!`], [`prop_assert!`]/[`prop_assert_eq!`],
//! [`prop_oneof!`], range/tuple/`Just`/`prop_map`/`prop_flat_map`
//! strategies, `collection::vec`, and `bool::ANY` — with two
//! deliberate simplifications:
//!
//! * cases are generated from a **deterministic** per-test seed
//!   (hashed from the test name), so failures reproduce exactly and CI
//!   is stable;
//! * there is **no shrinking**: a failing case reports its inputs via
//!   `Debug` in the panic message instead.

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Re-exports for `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module alias (`prop::collection::vec`,
    /// `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Declares deterministic property tests.
///
/// Accepts an optional `#![proptest_config(…)]` header followed by
/// `#[test] fn name(pat in strategy, …) { body }` items. The body may
/// use `prop_assert!`-family macros (which abort the case) and plain
/// panics/unwraps.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal: expands each test item of a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident (
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..config.cases {
                let ($($pat,)+) = (
                    $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )+
                );
                let __result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let left = $a;
        let right = $b;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let left = $a;
        let right = $b;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let left = $a;
        let right = $b;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
}

/// Picks uniformly among the given strategies (all sharing one value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($strat) ),+
        ])
    };
}
