//! Case configuration, errors, and the deterministic RNG.

use std::fmt;

/// Per-block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed case (from `prop_assert!`-family macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// SplitMix64 generator seeded from the test name: deterministic
/// across runs, processes, and thread counts.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary label (typically the test name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`. `hi` must exceed `lo`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
