//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A strategy for vectors with length drawn from `size` and elements
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.end > self.size.start {
            rng.range_u64(self.size.start as u64, self.size.end as u64) as usize
        } else {
            self.size.start
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
