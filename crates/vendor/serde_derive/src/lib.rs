//! `#[derive(Serialize, Deserialize)]` for the vendored serde
//! stand-in.
//!
//! Implemented without `syn`/`quote` (this workspace builds offline):
//! the derive input is parsed by walking `proc_macro::TokenTree`s
//! directly, and the generated impl is assembled as a string and
//! re-parsed into a `TokenStream`.
//!
//! Supported shapes — exactly what the workspace uses:
//!
//! * non-generic structs: named fields, tuple (newtype serializes
//!   transparently, wider tuples as arrays), unit;
//! * non-generic enums with unit / newtype / tuple / struct variants,
//!   externally tagged (`"Variant"` or `{"Variant": …}`);
//! * container attribute `#[serde(transparent)]`;
//! * field attributes `#[serde(rename = "…")]`, `#[serde(default)]`,
//!   `#[serde(skip)]`, `#[serde(skip_serializing_if = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    code.parse().unwrap_or_else(|e| {
        compile_error(&format!("serde_derive generated invalid code: {e}\n{code}"))
    })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------- //
// Parsed representation
// ---------------------------------------------------------------- //

struct Item {
    name: String,
    body: Body,
    transparent: bool,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    ident: String,
    attrs: FieldAttrs,
}

#[derive(Default)]
struct FieldAttrs {
    rename: Option<String>,
    default: bool,
    skip: bool,
    skip_serializing_if: Option<String>,
}

impl Field {
    fn key(&self) -> &str {
        self.attrs.rename.as_deref().unwrap_or(&self.ident)
    }
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------- //
// Token-stream parsing
// ---------------------------------------------------------------- //

type Toks = Vec<TokenTree>;

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Toks = input.into_iter().collect();
    let mut i = 0;

    let container_serde = collect_attrs(&toks, &mut i);
    let transparent = container_serde
        .iter()
        .any(|(name, _)| name == "transparent");

    skip_visibility(&toks, &mut i);

    let kw = ident_at(&toks, i).ok_or("expected `struct` or `enum`")?;
    i += 1;
    let name = ident_at(&toks, i).ok_or("expected type name")?;
    i += 1;

    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored) does not support generic type `{name}`"
        ));
    }

    let body = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            _ => return Err("unsupported struct body".to_string()),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            _ => return Err("expected enum body".to_string()),
        },
        other => return Err(format!("expected struct or enum, found `{other}`")),
    };

    Ok(Item {
        name,
        body,
        transparent,
    })
}

fn ident_at(toks: &Toks, i: usize) -> Option<String> {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Consumes leading `#[…]` attributes, returning the flattened
/// `(name, value)` pairs of every `#[serde(…)]` among them.
fn collect_attrs(toks: &Toks, i: &mut usize) -> Vec<(String, Option<String>)> {
    let mut serde_args = Vec::new();
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(*i) {
            let inner: Toks = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        serde_args.extend(parse_serde_args(args.stream()));
                    }
                }
            }
            *i += 1;
        }
    }
    serde_args
}

/// Parses `default, rename = "x", skip_serializing_if = "path"` into
/// `(name, value)` pairs (string literals unquoted).
fn parse_serde_args(stream: TokenStream) -> Vec<(String, Option<String>)> {
    let toks: Toks = stream.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let Some(name) = ident_at(&toks, i) else {
            i += 1;
            continue;
        };
        i += 1;
        let mut value = None;
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            if let Some(TokenTree::Literal(lit)) = toks.get(i) {
                value = Some(unquote(&lit.to_string()));
                i += 1;
            }
        }
        out.push((name, value));
        // Skip the separating comma if present.
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    out
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn field_attrs(serde_args: Vec<(String, Option<String>)>) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    for (name, value) in serde_args {
        match name.as_str() {
            "rename" => attrs.rename = value,
            "default" => attrs.default = true,
            "skip" => attrs.skip = true,
            "skip_serializing_if" => attrs.skip_serializing_if = value,
            _ => {}
        }
    }
    attrs
}

fn skip_visibility(toks: &Toks, i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            toks.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

/// Skips one type expression: everything up to a top-level `,`
/// (respecting `<…>` nesting). Leaves `i` on the comma or at the end.
fn skip_type(toks: &Toks, i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Toks = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let serde_args = collect_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        let Some(ident) = ident_at(&toks, i) else {
            return Err(format!(
                "expected field name, found {:?}",
                toks.get(i).map(|t| t.to_string())
            ));
        };
        i += 1;
        if !matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("expected `:` after field `{ident}`"));
        }
        i += 1;
        skip_type(&toks, &mut i);
        // Now on the comma (or end).
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field {
            ident,
            attrs: field_attrs(serde_args),
        });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Toks = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        let mut j = i;
        // A tuple field may start with attributes / visibility.
        collect_attrs(&toks, &mut j);
        skip_visibility(&toks, &mut j);
        skip_type(&toks, &mut j);
        count += 1;
        i = j + 1; // past the comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Toks = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let _serde_args = collect_attrs(&toks, &mut i);
        let Some(name) = ident_at(&toks, i) else {
            return Err("expected variant name".to_string());
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                match count_tuple_fields(g.stream()) {
                    1 => VariantKind::Newtype,
                    n => VariantKind::Tuple(n),
                }
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            let mut depth = 0i32;
            while let Some(t) = toks.get(i) {
                if let TokenTree::Punct(p) = t {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 0 => break,
                        _ => {}
                    }
                }
                i += 1;
            }
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- //
// Code generation
// ---------------------------------------------------------------- //

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) if item.transparent && fields.len() == 1 => {
            format!(
                "::serde::Serialize::serialize_value(&self.{})",
                fields[0].ident
            )
        }
        Body::NamedStruct(fields) => {
            let mut s = String::from("let mut map = ::serde::value::Map::new();\n");
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                let insert = format!(
                    "map.insert({:?}.to_string(), ::serde::Serialize::serialize_value(&self.{}));",
                    f.key(),
                    f.ident
                );
                if let Some(pred) = &f.attrs.skip_serializing_if {
                    s.push_str(&format!("if !({pred})(&self.{}) {{ {insert} }}\n", f.ident));
                } else {
                    s.push_str(&insert);
                    s.push('\n');
                }
            }
            s.push_str("::serde::Value::Object(map)");
            s
        }
        Body::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vname}(x) => {{\n\
                         let mut map = ::serde::value::Map::new();\n\
                         map.insert({vname:?}.to_string(), ::serde::Serialize::serialize_value(x));\n\
                         ::serde::Value::Object(map)\n}}\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             let mut map = ::serde::value::Map::new();\n\
                             map.insert({vname:?}.to_string(), ::serde::Value::Array(vec![{}]));\n\
                             ::serde::Value::Object(map)\n}}\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.ident.clone()).collect();
                        let mut inner = String::from(
                            "let mut inner = ::serde::value::Map::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "inner.insert({:?}.to_string(), ::serde::Serialize::serialize_value({}));\n",
                                f.key(),
                                f.ident
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n{inner}\
                             let mut map = ::serde::value::Map::new();\n\
                             map.insert({vname:?}.to_string(), ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(map)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// The expression used for a missing field: honors `default`/`skip`,
/// otherwise deserializes `Null` (so `Option` fields become `None`)
/// with a missing-field error as fallback.
fn missing_field_expr(ty: &str, f: &Field) -> String {
    if f.attrs.default || f.attrs.skip {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "::serde::Deserialize::deserialize_value(&::serde::Value::Null)\
             .map_err(|_| ::serde::de::Error::missing_field({ty:?}, {:?}))?",
            f.key()
        )
    }
}

fn gen_named_struct_de(ty: &str, path: &str, fields: &[Field], obj: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.attrs.skip {
            inits.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.ident
            ));
            continue;
        }
        inits.push_str(&format!(
            "{}: match {obj}.get({:?}) {{\n\
             Some(x) => ::serde::Deserialize::deserialize_value(x)?,\n\
             None => {},\n}},\n",
            f.ident,
            f.key(),
            missing_field_expr(ty, f)
        ));
    }
    format!("{path} {{\n{inits}}}")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) if item.transparent && fields.len() == 1 => {
            format!(
                "Ok({name} {{ {}: ::serde::Deserialize::deserialize_value(v)? }})",
                fields[0].ident
            )
        }
        Body::NamedStruct(fields) => {
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::de::Error::expected({:?}, v))?;\n\
                 Ok({})",
                format!("object for {name}"),
                gen_named_struct_de(name, name, fields, "obj")
            )
        }
        Body::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize_value(v)?))")
        }
        Body::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Array(items) if items.len() == {n} => \
                 Ok({name}({})),\n\
                 other => Err(::serde::de::Error::expected({:?}, other)),\n}}",
                elems.join(", "),
                format!("array of {n} for {name}")
            )
        }
        Body::UnitStruct => format!("let _ = v; Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for var in variants {
                let vname = &var.name;
                match &var.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("{vname:?} => Ok({name}::{vname}),\n"))
                    }
                    VariantKind::Newtype => data_arms.push_str(&format!(
                        "{vname:?} => Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize_value(inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize_value(&items[{i}])?")
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "{vname:?} => match inner {{\n\
                             ::serde::Value::Array(items) if items.len() == {n} => \
                             Ok({name}::{vname}({})),\n\
                             other => Err(::serde::de::Error::expected(\"variant tuple\", other)),\n\
                             }},\n",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        data_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let obj = inner.as_object().ok_or_else(|| \
                             ::serde::de::Error::expected(\"variant object\", inner))?;\n\
                             Ok({})\n}},\n",
                            gen_named_struct_de(name, &format!("{name}::{vname}"), fields, "obj")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::de::Error::unknown_variant({name:?}, other)),\n}},\n\
                 ::serde::Value::Object(map) if map.len() == 1 => {{\n\
                 let (tag, inner) = map.iter().next().expect(\"len checked\");\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => Err(::serde::de::Error::unknown_variant({name:?}, other)),\n}}\n}},\n\
                 other => Err(::serde::de::Error::expected({:?}, other)),\n}}",
                format!("string or single-key object for {name}")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}
