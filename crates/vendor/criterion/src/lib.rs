//! A vendored, offline stand-in for `criterion` exposing the macro
//! and builder API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups,
//! throughput, `bench_with_input`, `Bencher::iter`).
//!
//! Measurement is deliberately simple: a short warm-up, then
//! `sample_size` timed batches, reporting min/mean per iteration (and
//! derived throughput). No statistics machinery, no HTML reports —
//! enough to compare hot paths between commits offline.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== {name} ==");
        BenchmarkGroup {
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut group = BenchmarkGroup {
            sample_size: 10,
            throughput: None,
        };
        group.run(name, |b| f(b));
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named benchmark id, possibly parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup {
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.label, |b| f(b, input));
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        self.run(&id.to_string(), |b| f(b));
    }

    /// Ends the group (drop would do; mirrors criterion's API).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        // Warm-up pass (not recorded).
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let per_iter: Vec<Duration> = bencher.samples.clone();
        if per_iter.is_empty() {
            println!("{label:<28} (no samples)");
            return;
        }
        let min = per_iter.iter().min().copied().unwrap_or_default();
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{label:<28} min {:>12?}  mean {:>12?}{rate}", min, mean);
    }
}

/// Runs and times the benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one batch of `f` calls (one call per `iter` invocation).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
