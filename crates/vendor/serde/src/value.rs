//! The concrete value tree this stand-in serializes into — the moral
//! equivalent of `serde_json::Value` (which re-exports these types).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON-shaped value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// A key-ordered object.
    Object(Map),
}

/// A JSON number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// Wraps a `u64`.
    pub fn from_u64(n: u64) -> Self {
        Number::PosInt(n)
    }

    /// Wraps an `i64`, normalizing non-negatives to [`Number::PosInt`].
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    /// Wraps an `f64`, normalizing integral values to integers so that
    /// `2.0` prints as `2.0`-compatible but stays float-typed.
    pub fn from_f64(n: f64) -> Self {
        Number::Float(n)
    }

    /// As `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// As `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }

    /// As `f64` (always representable, possibly lossy for big ints).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    // Keep a decimal point so the value re-parses as a
                    // float-compatible number either way.
                    write!(f, "{x:.1}")
                } else {
                    // Rust's shortest-round-trip float formatting.
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a key mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Inserts (replacing any previous value for the key).
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl Value {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// As `u64` if this is a representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `i64` if this is a representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `f64` if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `bool` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As an array slice if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an object map if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Value {
    /// Auto-vivifying object access, matching `serde_json`:
    /// `value["key"] = v` inserts into an object (a `Null` value is
    /// promoted to an empty object first).
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Map::new());
        }
        let map = match self {
            Value::Object(m) => m,
            other => panic!("cannot index {} with a string key", other.kind()),
        };
        if !map.contains_key(key) {
            map.insert(key.to_string(), Value::Null);
        }
        map.get_mut(key).expect("just inserted")
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => &a[idx],
            other => panic!("cannot index {} with a usize", other.kind()),
        }
    }
}

/// A canonical total ordering over values, used to sort map entries
/// for deterministic serialization.
pub fn cmp_values(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Number(_) => 2,
            Value::String(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Number(x), Value::Number(y)) => x
            .as_f64()
            .partial_cmp(&y.as_f64())
            .unwrap_or(Ordering::Equal),
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) => {
            for (xa, ya) in x.iter().zip(y.iter()) {
                let c = cmp_values(xa, ya);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        // Objects compare entry-wise in stored order (struct/enum
        // serialization emits fields in a fixed order, so same-typed
        // keys get a total order — required for deterministic
        // serialization of maps with struct keys, and hence for
        // [`value_digest`] stability).
        (Value::Object(x), Value::Object(y)) => {
            for ((xk, xv), (yk, yv)) in x.iter().zip(y.iter()) {
                let c = xk.cmp(yk);
                if c != Ordering::Equal {
                    return c;
                }
                let c = cmp_values(xv, yv);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

/// A stable 64-bit FNV-1a digest of a value tree, identical across
/// processes and platforms. Each node is tagged with a discriminant
/// byte so differently shaped trees with the same leaves hash
/// differently; objects hash entries in stored (serialization) order,
/// which [`cmp_values`]-sorted map encoding makes deterministic.
///
/// Nonstandard extension of this vendored stand-in (like
/// [`cmp_values`]): persistent-artifact consumers digest serialized
/// trees for integrity checks, and the hash must live beside the
/// ordering guarantees it depends on.
pub fn value_digest(v: &Value) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    fn bytes(bytes: &[u8], h: &mut u64) {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(FNV_PRIME);
        }
    }

    fn node(v: &Value, h: &mut u64) {
        match v {
            Value::Null => bytes(&[0], h),
            Value::Bool(b) => bytes(&[1, *b as u8], h),
            Value::Number(n) => {
                let (tag, bits) = match n {
                    Number::PosInt(u) => (2u8, *u),
                    Number::NegInt(i) => (3u8, *i as u64),
                    Number::Float(f) => (4u8, f.to_bits()),
                };
                bytes(&[tag], h);
                bytes(&bits.to_le_bytes(), h);
            }
            Value::String(s) => {
                bytes(&[5], h);
                bytes(&(s.len() as u64).to_le_bytes(), h);
                bytes(s.as_bytes(), h);
            }
            Value::Array(items) => {
                bytes(&[6], h);
                bytes(&(items.len() as u64).to_le_bytes(), h);
                for item in items {
                    node(item, h);
                }
            }
            Value::Object(map) => {
                bytes(&[7], h);
                bytes(&(map.len() as u64).to_le_bytes(), h);
                for (k, val) in map.iter() {
                    bytes(&(k.len() as u64).to_le_bytes(), h);
                    bytes(k.as_bytes(), h);
                    node(val, h);
                }
            }
        }
    }

    let mut h = FNV_OFFSET;
    node(v, &mut h);
    h
}
