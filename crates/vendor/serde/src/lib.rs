//! A vendored, offline stand-in for the `serde` crate.
//!
//! This workspace builds in environments with no access to crates.io,
//! so instead of the real serde (trait-object-free visitor
//! architecture) we provide a much smaller design that covers exactly
//! the API surface the workspace uses: `#[derive(Serialize,
//! Deserialize)]` on concrete (non-generic) types, the
//! `#[serde(transparent)]`, `#[serde(rename = "…")]`,
//! `#[serde(default)]`, `#[serde(skip)]`, and
//! `#[serde(skip_serializing_if = "…")]` attributes, and the
//! `serde_json` entry points built on top.
//!
//! The data model is a concrete [`value::Value`] tree (the moral
//! equivalent of `serde_json::Value`); [`Serialize`] renders into it
//! and [`Deserialize`] reads back out of it. Representation choices
//! (externally tagged enums, transparent newtypes, maps with
//! non-string keys as arrays of pairs) match real serde closely enough
//! that JSON written by this stand-in parses the way the workspace
//! expects.

pub mod de;
pub mod value;

pub use de::Error as DeError;
pub use serde_derive::{Deserialize, Serialize};
pub use value::{value_digest, Map, Number, Value};

use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::Arc;

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// Converts to a value tree.
    fn serialize_value(&self) -> Value;
}

/// Reconstructs `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Converts from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`de::Error`] describing the first mismatch between
    /// the value tree and `Self`'s expected shape.
    fn deserialize_value(v: &Value) -> Result<Self, de::Error>;
}

// ---------------------------------------------------------------- //
// Primitive impls
// ---------------------------------------------------------------- //

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| de::Error::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| de::Error::new(format!(
                    "integer {n} out of range for {}",
                    stringify!($t)
                )))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| de::Error::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| de::Error::new(format!(
                    "integer {n} out of range for {}",
                    stringify!($t)
                )))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}
impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64().ok_or_else(|| de::Error::expected("f64", v))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}
impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.as_f64().ok_or_else(|| de::Error::expected("f32", v))? as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(de::Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for &'static str {
    /// Leaks the parsed string. Exists so types carrying static name
    /// tables (e.g. operator descriptors) can derive `Deserialize`;
    /// those types are serialized for debugging and effectively never
    /// read back, so the leak is acceptable and bounded.
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(de::Error::expected("string", other)),
        }
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(de::Error::expected("char", other)),
        }
    }
}

impl Serialize for () {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(de::Error::expected("null", other)),
        }
    }
}

// ---------------------------------------------------------------- //
// Containers
// ---------------------------------------------------------------- //

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(de::Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        Ok(Box::new(T::deserialize_value(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Deserialize for Arc<str> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(Arc::from(s.as_str())),
            other => Err(de::Error::expected("string", other)),
        }
    }
}
impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        Ok(Arc::new(T::deserialize_value(v)?))
    }
}

// Maps are encoded as arrays of `[key, value]` pairs, sorted by the
// canonical ordering of the serialized key so output is deterministic
// regardless of hash-map iteration order. (Real serde_json writes
// string-keyed maps as objects and rejects the rest; the pair-list
// encoding covers both uniformly and round-trips through this crate.)
impl<K: Serialize, V: Serialize, S: ::std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        let mut entries: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.serialize_value(), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| value::cmp_values(&a.0, &b.0));
        Value::Array(
            entries
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k, v]))
                .collect(),
        )
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + ::std::hash::Hash,
    V: Deserialize,
    S: ::std::hash::BuildHasher + Default,
{
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(|pair| match pair {
                    Value::Array(kv) if kv.len() == 2 => {
                        Ok((K::deserialize_value(&kv[0])?, V::deserialize_value(&kv[1])?))
                    }
                    other => Err(de::Error::expected("[key, value] pair", other)),
                })
                .collect(),
            other => Err(de::Error::expected("array of pairs", other)),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize_value(), v.serialize_value()]))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(|pair| match pair {
                    Value::Array(kv) if kv.len() == 2 => {
                        Ok((K::deserialize_value(&kv[0])?, V::deserialize_value(&kv[1])?))
                    }
                    other => Err(de::Error::expected("[key, value] pair", other)),
                })
                .collect(),
            other => Err(de::Error::expected("array of pairs", other)),
        }
    }
}

// Tuples (used both directly and as pair-map keys).
macro_rules! impl_serde_tuple {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::deserialize_value(&items[$idx])?,)+))
                    }
                    other => Err(de::Error::expected("tuple array", other)),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}
