//! Deserialization errors.

use crate::value::Value;
use std::fmt;

/// A deserialization failure: a human-readable description of the
/// first mismatch between a value tree and the target type.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with an explicit message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// "expected X, found Y" convenience.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error::new(format!("expected {what}, found {}", found.kind()))
    }

    /// Missing-field convenience for derived struct impls.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error::new(format!("missing field `{field}` for {ty}"))
    }

    /// Unknown-variant convenience for derived enum impls.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Error::new(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}
