//! One function per paper artifact, shared by the per-figure binaries
//! and the `experiments` master binary.

use crate::harness::{
    predict_from_calibrated, profile_calibrated, profile_config, replay_experiment, RunOptions,
};
use crate::paper::{self, PaperError};
use crate::table::{breakdown_cells, ms, pct, TextTable};
use lumos_core::manipulate::Transform;
use lumos_core::{BuildOptions, InterStreamMode, Lumos, RendezvousMode, SimOptions};
use lumos_dpro::Dpro;
use lumos_model::ModelConfig;
use lumos_trace::{sm_utilization, BreakdownExt, Dur, RankId};

/// Progress sink (binaries pass stderr printers).
pub type Progress<'a> = &'a mut dyn FnMut(&str);

/// Table 1 / Table 2: architectures with computed parameter counts.
pub fn model_table(models: &[ModelConfig]) -> TextTable {
    let mut t = TextTable::new(&[
        "model", "n_params", "n_layers", "d_model", "d_ffn", "n_heads", "d_head",
    ]);
    for m in models {
        t.row(vec![
            m.name.clone(),
            format!("{:.1}B", m.num_params() as f64 / 1e9),
            m.num_layers.to_string(),
            m.hidden_size.to_string(),
            m.ffn_size.to_string(),
            m.num_heads.to_string(),
            m.head_dim.to_string(),
        ]);
    }
    t
}

/// Figure 1: execution breakdown of one GPT-3 175B iteration
/// (TP8/PP4/DP8) — actual vs dPRO vs Lumos.
///
/// # Errors
///
/// Propagates configuration-lookup failures.
pub fn fig1(opts: &RunOptions, progress: Progress) -> Result<TextTable, PaperError> {
    let cfg = paper::fig1_config(opts.microbatches)?;
    progress(&format!(
        "fig1: running {} ({} GPUs)",
        cfg.label(),
        cfg.parallelism.world_size()
    ));
    let row = replay_experiment(&cfg, opts);
    let mut t = TextTable::new(&[
        "series",
        "exposed compute (ms)",
        "overlapped (ms)",
        "exposed comm (ms)",
        "other (ms)",
        "total (ms)",
    ]);
    for (name, b, total) in [
        ("Actual", row.actual_breakdown, row.actual),
        ("dPRO", row.dpro_breakdown, row.dpro),
        ("Lumos", row.lumos_breakdown, row.lumos),
    ] {
        let cells = breakdown_cells(&b);
        t.row(vec![
            name.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
            ms(total),
        ]);
    }
    Ok(t)
}

/// Figure 5 output: per-model tables plus headline error statistics.
pub struct Fig5Output {
    /// `(model name, table)` per panel.
    pub panels: Vec<(String, TextTable)>,
    /// Mean Lumos replay error.
    pub lumos_avg: f64,
    /// Max Lumos replay error.
    pub lumos_max: f64,
    /// Mean dPRO replay error.
    pub dpro_avg: f64,
    /// Max dPRO replay error.
    pub dpro_max: f64,
    /// Rows measured.
    pub rows: usize,
}

/// Figure 5: replay accuracy across four models × six parallelism
/// configurations. `models` defaults to all of Table 1.
///
/// # Errors
///
/// Returns [`PaperError::UnknownModel`] for models outside Table 1 and
/// propagates label failures.
pub fn fig5(
    models: &[ModelConfig],
    opts: &RunOptions,
    progress: Progress,
) -> Result<Fig5Output, PaperError> {
    let mut panels = Vec::new();
    let mut lumos_errs = Vec::new();
    let mut dpro_errs = Vec::new();
    for model in models {
        let mut t = TextTable::new(&[
            "config",
            "actual (ms)",
            "lumos (ms)",
            "lumos err",
            "dpro (ms)",
            "dpro err",
            "actual cmp/ovl/comm/other",
            "lumos cmp/ovl/comm/other",
        ]);
        let labels = paper::fig5_labels(&model.name).ok_or_else(|| PaperError::UnknownModel {
            name: model.name.clone(),
        })?;
        for label in labels {
            let cfg = paper::config(model.clone(), label, opts.microbatches)?;
            progress(&format!(
                "fig5: {} {} ({} GPUs)",
                model.name,
                label,
                cfg.parallelism.world_size()
            ));
            let row = replay_experiment(&cfg, opts);
            lumos_errs.push(row.lumos_error());
            dpro_errs.push(row.dpro_error());
            t.row(vec![
                row.label.clone(),
                ms(row.actual),
                ms(row.lumos),
                pct(row.lumos_error()),
                ms(row.dpro),
                pct(row.dpro_error()),
                breakdown_cells(&row.actual_breakdown).join("/"),
                breakdown_cells(&row.lumos_breakdown).join("/"),
            ]);
        }
        panels.push((model.name.clone(), t));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let max = |v: &[f64]| v.iter().copied().fold(0.0, f64::max);
    Ok(Fig5Output {
        lumos_avg: avg(&lumos_errs),
        lumos_max: max(&lumos_errs),
        dpro_avg: avg(&dpro_errs),
        dpro_max: max(&dpro_errs),
        rows: lumos_errs.len(),
        panels,
    })
}

/// Renders a utilization series as a unicode sparkline.
fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|&v| BLOCKS[((v.clamp(0.0, 1.0) * 7.0).round()) as usize])
        .collect()
}

/// Figure 6: SM-utilization timelines (1 ms bins) for GPT-3 15B at
/// 2x2x4 — actual vs Lumos vs dPRO. Returns (summary table,
/// sparkline block).
pub fn fig6(opts: &RunOptions, progress: Progress) -> Result<(TextTable, String), PaperError> {
    let cfg = paper::fig6_config(opts.microbatches)?;
    progress(&format!("fig6: running {}", cfg.label()));
    let profiled = profile_config(&cfg, opts);
    let lumos = Lumos::new().replay(&profiled.output.trace).expect("replay");
    let dpro = Dpro::new().replay(&profiled.output.trace).expect("dpro");
    let bin = Dur::from_ms(1);
    let rank = RankId(0);
    let actual_u = sm_utilization(profiled.output.trace.rank(rank).expect("rank 0"), bin);
    let lumos_u = sm_utilization(lumos.trace.rank(rank).expect("rank 0"), bin);
    let dpro_u = sm_utilization(dpro.trace.rank(rank).expect("rank 0"), bin);

    let mut t = TextTable::new(&["series", "bins", "mean util", "MAE vs actual"]);
    for (name, u) in [
        ("Actual", &actual_u),
        ("Lumos", &lumos_u),
        ("dPRO", &dpro_u),
    ] {
        t.row(vec![
            name.to_string(),
            u.len().to_string(),
            format!("{:.3}", u.mean()),
            format!("{:.3}", u.mae(&actual_u)),
        ]);
    }
    // Downsample sparklines to ~100 columns for readability.
    let downsample = |v: &[f64]| -> Vec<f64> {
        let cols = 100usize;
        if v.len() <= cols {
            return v.to_vec();
        }
        (0..cols)
            .map(|c| {
                let lo = c * v.len() / cols;
                let hi = ((c + 1) * v.len() / cols).max(lo + 1);
                v[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect()
    };
    let spark = format!(
        "actual {}\nlumos  {}\ndpro   {}",
        sparkline(&downsample(&actual_u.values)),
        sparkline(&downsample(&lumos_u.values)),
        sparkline(&downsample(&dpro_u.values)),
    );
    Ok((t, spark))
}

/// Figure 7: parallelism-scaling predictions from the 15B 2x2x4 base
/// trace. `part` is 'a' (DP), 'b' (PP), or 'c' (both).
///
/// # Errors
///
/// Returns [`PaperError::UnknownFigurePart`] for parts outside a/b/c.
pub fn fig7(part: char, opts: &RunOptions, progress: Progress) -> Result<TextTable, PaperError> {
    let base = paper::fig7_base(opts.microbatches)?;
    progress(&format!("fig7{part}: profiling base {}", base.label()));
    // Memoized: parts a/b/c (and Figure 8 / the extension studies)
    // share one profiled trace and one fitted calibration artifact.
    let calibrated = profile_calibrated(&base, opts);
    let targets = match part {
        'a' => paper::fig7a_targets(),
        'b' => paper::fig7b_targets(),
        'c' => paper::fig7c_targets(),
        other => return Err(PaperError::UnknownFigurePart { part: other }),
    };
    let mut t = TextTable::new(&[
        "config",
        "predicted (ms)",
        "actual (ms)",
        "error",
        "predicted cmp/ovl/comm/other",
        "actual cmp/ovl/comm/other",
    ]);
    for (label, transforms) in targets {
        progress(&format!("fig7{part}: predicting {label}"));
        let row = predict_from_calibrated(&calibrated, label, &transforms, opts);
        t.row(vec![
            row.label.clone(),
            ms(row.predicted),
            ms(row.actual),
            pct(row.error()),
            breakdown_cells(&row.predicted_breakdown).join("/"),
            breakdown_cells(&row.actual_breakdown).join("/"),
        ]);
    }
    Ok(t)
}

/// Dependency-mechanism ablation (DESIGN.md §7): replay one GPT-3 15B
/// 2x2x4 iteration under every fence-coverage × rendezvous combination.
/// Returns the table plus the actual makespan and overlapped time it
/// is read against.
///
/// # Errors
///
/// Propagates configuration-lookup failures.
pub fn ablation(
    opts: &RunOptions,
    progress: Progress,
) -> Result<(TextTable, Dur, Dur), PaperError> {
    let config = paper::config(ModelConfig::gpt3_15b(), "2x2x4", opts.microbatches)?;
    progress(&format!("ablation: profiling {}", config.label()));
    let profiled = profile_config(&config, opts);
    let actual = profiled.actual;
    let actual_overlap = profiled.output.trace.breakdown().overlapped;

    let mode_name = |m: InterStreamMode| match m {
        InterStreamMode::Full => "full fences",
        InterStreamMode::ConsumerOnly => "consumer-only",
        InterStreamMode::ProducerOnly => "producer-only",
        InterStreamMode::DataflowOnly => "dataflow-only",
        InterStreamMode::None => "no fences",
    };
    let mut t = TextTable::new(&[
        "inter-stream",
        "rendezvous",
        "replayed (ms)",
        "error",
        "overlapped (ms)",
        "note",
    ]);
    let combos = [
        (InterStreamMode::Full, RendezvousMode::All, "Lumos"),
        (InterStreamMode::Full, RendezvousMode::SendRecvOnly, ""),
        (InterStreamMode::ConsumerOnly, RendezvousMode::All, ""),
        (InterStreamMode::ProducerOnly, RendezvousMode::All, ""),
        (InterStreamMode::DataflowOnly, RendezvousMode::All, ""),
        (
            InterStreamMode::DataflowOnly,
            RendezvousMode::SendRecvOnly,
            "dPRO",
        ),
        (InterStreamMode::None, RendezvousMode::SendRecvOnly, ""),
    ];
    for (interstream, rendezvous, note) in combos {
        let toolkit = Lumos {
            build: BuildOptions {
                interstream,
                ..BuildOptions::default()
            },
            sim: SimOptions {
                rendezvous,
                ..SimOptions::default()
            },
        };
        let replayed = toolkit
            .replay(&profiled.output.trace)
            .expect("replay succeeds");
        let b = replayed.breakdown();
        t.row(vec![
            mode_name(interstream).to_string(),
            match rendezvous {
                RendezvousMode::All => "all".to_string(),
                RendezvousMode::SendRecvOnly => "send/recv".to_string(),
            },
            ms(replayed.makespan()),
            pct(replayed.makespan().relative_error(actual)),
            ms(b.overlapped),
            note.to_string(),
        ]);
    }
    Ok((t, actual, actual_overlap))
}

/// Extension validation (DESIGN.md §7): tensor-parallel rescaling and
/// sequence-length predictions from the 15B 2x2x4 base trace, checked
/// against fresh ground truth exactly like Figures 7/8.
///
/// # Errors
///
/// Propagates configuration-lookup failures.
pub fn extension_transforms(
    opts: &RunOptions,
    progress: Progress,
) -> Result<TextTable, PaperError> {
    let base = paper::fig7_base(opts.microbatches)?;
    progress(&format!("extensions: profiling base {}", base.label()));
    let calibrated = profile_calibrated(&base, opts);
    let targets: Vec<(&str, Vec<Transform>)> = vec![
        ("tp 2→4 (4x2x4)", vec![Transform::TensorParallel { tp: 4 }]),
        (
            "tp 2→4, dp 4→2 (4x2x2)",
            vec![
                Transform::TensorParallel { tp: 4 },
                Transform::DataParallel { dp: 2 },
            ],
        ),
        ("seq 2048→1024", vec![Transform::SeqLen { seq_len: 1024 }]),
        ("seq 2048→4096", vec![Transform::SeqLen { seq_len: 4096 }]),
        (
            "tp 4 + seq 4096",
            vec![
                Transform::TensorParallel { tp: 4 },
                Transform::SeqLen { seq_len: 4096 },
            ],
        ),
    ];
    let mut t = TextTable::new(&[
        "target",
        "predicted (ms)",
        "actual (ms)",
        "error",
        "predicted cmp/ovl/comm/other",
        "actual cmp/ovl/comm/other",
    ]);
    for (label, transforms) in targets {
        progress(&format!("extensions: predicting {label}"));
        let row = predict_from_calibrated(&calibrated, label, &transforms, opts);
        t.row(vec![
            row.label.clone(),
            ms(row.predicted),
            ms(row.actual),
            pct(row.error()),
            breakdown_cells(&row.predicted_breakdown).join("/"),
            breakdown_cells(&row.actual_breakdown).join("/"),
        ]);
    }
    Ok(t)
}

/// Figure 8: architecture-variant predictions from the 15B 2x2x4
/// base trace (Table 2 variants).
///
/// # Errors
///
/// Propagates configuration-lookup failures.
pub fn fig8(opts: &RunOptions, progress: Progress) -> Result<TextTable, PaperError> {
    let base = paper::fig7_base(opts.microbatches)?;
    progress(&format!("fig8: profiling base {}", base.label()));
    let calibrated = profile_calibrated(&base, opts);
    let mut t = TextTable::new(&[
        "variant",
        "predicted (ms)",
        "actual (ms)",
        "error",
        "predicted cmp/ovl/comm/other",
        "actual cmp/ovl/comm/other",
    ]);
    for (label, transforms) in paper::fig8_targets() {
        progress(&format!("fig8: predicting {label}"));
        let row = predict_from_calibrated(&calibrated, label, &transforms, opts);
        t.row(vec![
            row.label.clone(),
            ms(row.predicted),
            ms(row.actual),
            pct(row.error()),
            breakdown_cells(&row.predicted_breakdown).join("/"),
            breakdown_cells(&row.actual_breakdown).join("/"),
        ]);
    }
    Ok(t)
}
