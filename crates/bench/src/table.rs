//! Plain-text and Markdown table rendering for experiment output.

use lumos_trace::{Breakdown, Dur};

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Renders with space-padded columns.
    pub fn to_text(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], w: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &w));
        out.push('\n');
        out.push_str(&"-".repeat(w.iter().sum::<usize>() + 2 * (w.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &w));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavored Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.header.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Milliseconds with one decimal (the paper's unit).
pub fn ms(d: Dur) -> String {
    format!("{:.1}", d.as_ms_f64())
}

/// Percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// `compute/overlap/comm/other` in ms — the Figure 1/5/7/8 breakdown
/// quadruple.
pub fn breakdown_cells(b: &Breakdown) -> [String; 4] {
    [
        ms(b.exposed_compute),
        ms(b.overlapped),
        ms(b.exposed_comm),
        ms(b.other),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_alignment() {
        let mut t = TextTable::new(&["config", "ms"]);
        t.row(vec!["2x2x4".into(), "612.5".into()]);
        t.row(vec!["8x4x16".into(), "8123.0".into()]);
        let s = t.to_text();
        assert!(s.contains("config"));
        assert!(s.lines().count() >= 4);
        // Columns aligned: both rows have the separator at the same
        // position.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].find("612").is_some());
    }

    #[test]
    fn markdown_shape() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(Dur::from_ms(612)), "612.0");
        assert_eq!(pct(0.033), "3.3%");
        let b = Breakdown {
            exposed_compute: Dur::from_ms(100),
            overlapped: Dur::from_ms(50),
            exposed_comm: Dur::from_ms(25),
            other: Dur::from_ms(5),
        };
        assert_eq!(
            breakdown_cells(&b),
            ["100.0", "50.0", "25.0", "5.0"].map(String::from)
        );
    }
}
