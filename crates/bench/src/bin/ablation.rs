//! Ablation study: which of Lumos's dependency mechanisms buys the
//! replay accuracy?
//!
//! DESIGN.md calls for this: the dPRO baseline differs from Lumos in
//! exactly two mechanisms — inter-stream event fences (§3.3.2's
//! GPU→GPU class) and synchronized collective execution (rendezvous).
//! This binary replays one profiled GPT-3 15B iteration under every
//! combination of fence coverage × rendezvous mode and reports the
//! replay error and the overlap overestimate each cripple introduces.
//!
//! Run with: `cargo run -p lumos-bench --release --bin ablation`

use lumos_bench::figures;
use lumos_bench::harness::RunOptions;
use lumos_bench::or_exit;

fn main() {
    let opts = RunOptions::default();
    let mut progress = |s: &str| eprintln!("[ablation] {s}");
    let (table, actual, actual_overlap) = or_exit(figures::ablation(&opts, &mut progress));
    println!();
    println!(
        "actual: {:.2} ms (overlapped {:.2} ms)",
        actual.as_ms_f64(),
        actual_overlap.as_ms_f64()
    );
    println!();
    println!("{}", table.to_text());
    println!(
        "reading: dropping fences inflates `overlapped` and deflates the\n\
         makespan; dropping rendezvous removes cross-rank waits. The dPRO\n\
         row combines both — the paper's §4.2.2 diagnosis."
    );
}
