//! Figure 6: SM utilization of one iteration of GPT-3 15B at
//! TP=2, PP=2, DP=4 (1 ms bins): actual vs Lumos vs dPRO.
use lumos_bench::figures::fig6;
use lumos_bench::{or_exit, RunOptions};

fn main() {
    let opts = RunOptions::default();
    let mut progress = |s: &str| eprintln!("[fig6] {s}");
    let (table, spark) = or_exit(fig6(&opts, &mut progress));
    println!("Figure 6: SM utilization, GPT-3 15B @ 2x2x4 (rank 0, 1 ms bins)\n");
    println!("{}", table.to_text());
    println!("{spark}");
}
