//! Figure 8: predicting architecture variants (Table 2) from the
//! GPT-3 15B 2x2x4 base trace.
use lumos_bench::figures::fig8;
use lumos_bench::{or_exit, RunOptions};

fn main() {
    let opts = RunOptions::default();
    let mut progress = |s: &str| eprintln!("[fig8] {s}");
    let table = or_exit(fig8(&opts, &mut progress));
    println!("Figure 8: architecture-variant prediction (base GPT-3 15B @ 2x2x4)\n");
    println!("{}", table.to_text());
}
