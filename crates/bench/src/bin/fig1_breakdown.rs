//! Figure 1: execution breakdown for one training iteration of
//! GPT-3 175B (TP=8, PP=4, DP=8): actual vs dPRO vs Lumos.
use lumos_bench::figures::fig1;
use lumos_bench::{or_exit, RunOptions};

fn main() {
    let opts = RunOptions::default();
    let mut progress = |s: &str| eprintln!("[fig1] {s}");
    let table = or_exit(fig1(&opts, &mut progress));
    println!("Figure 1: GPT-3 175B @ 8x4x8 execution breakdown\n");
    println!("{}", table.to_text());
}
