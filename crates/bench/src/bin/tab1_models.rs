//! Table 1: model sizes and architectures used in the evaluation.
use lumos_bench::figures::model_table;
use lumos_model::ModelConfig;

fn main() {
    println!("Table 1: evaluation models (computed parameter counts)\n");
    println!("{}", model_table(&ModelConfig::table1()).to_text());
}
