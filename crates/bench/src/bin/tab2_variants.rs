//! Table 2: sizes and architectures for model variations.
use lumos_bench::figures::model_table;
use lumos_model::ModelConfig;

fn main() {
    let mut models = vec![ModelConfig::gpt3_15b()];
    models.extend(ModelConfig::table2());
    println!("Table 2: architecture variants of GPT-3 15B\n");
    println!("{}", model_table(&models).to_text());
}
