//! Quick calibration harness (not a paper artifact): compares dPRO
//! inter-stream candidate models and checks error magnitudes.
use lumos_bench::paper;
use lumos_bench::{or_exit, profile_config, RunOptions};
use lumos_core::{BuildOptions, InterStreamMode, Lumos, RendezvousMode, SimOptions};
use lumos_model::ModelConfig;
use std::time::Instant;

fn main() {
    let opts = RunOptions {
        seed: 1,
        measured_iters: 3,
        microbatches: Some(8),
    };
    for (model, label) in [
        (ModelConfig::gpt3_15b(), "2x2x4"),
        (ModelConfig::gpt3_15b(), "4x2x4"),
        (ModelConfig::gpt3_44b(), "4x4x2"),
        (ModelConfig::gpt3_44b(), "8x4x2"),
        (ModelConfig::gpt3_117b(), "8x4x4"),
    ] {
        let cfg = or_exit(paper::config(model, label, opts.microbatches));
        let t0 = Instant::now();
        let profiled = profile_config(&cfg, &opts);
        let actual = profiled.actual;
        print!(
            "{} {}: actual {:.0}ms",
            cfg.model.name,
            label,
            actual.as_ms_f64()
        );
        for (name, mode, rdv) in [
            ("lumos", InterStreamMode::Full, RendezvousMode::All),
            (
                "dflow+sr",
                InterStreamMode::DataflowOnly,
                RendezvousMode::SendRecvOnly,
            ),
            (
                "dflow+all",
                InterStreamMode::DataflowOnly,
                RendezvousMode::All,
            ),
            (
                "cons+all",
                InterStreamMode::ConsumerOnly,
                RendezvousMode::All,
            ),
        ] {
            let toolkit = Lumos {
                build: BuildOptions {
                    interstream: mode,
                    ..BuildOptions::default()
                },
                sim: SimOptions {
                    rendezvous: rdv,
                    ..SimOptions::default()
                },
            };
            let r = toolkit.replay(&profiled.output.trace).unwrap();
            print!(
                "  {}={:.0}ms({:+.1}%)",
                name,
                r.makespan().as_ms_f64(),
                (r.makespan().as_ms_f64() / actual.as_ms_f64() - 1.0) * 100.0
            );
        }
        println!("  [{:?}]", t0.elapsed());
    }
}
