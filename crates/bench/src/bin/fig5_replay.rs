//! Figure 5: per-iteration replay accuracy across four GPT-3 models
//! and six parallelism configurations each.
//!
//! Usage: fig5_replay [15b|44b|117b|175b]   (default: all four)
use lumos_bench::figures::fig5;
use lumos_bench::table::pct;
use lumos_bench::{or_exit, RunOptions};
use lumos_model::ModelConfig;

fn main() {
    let filter = std::env::args().nth(1);
    let models: Vec<ModelConfig> = match filter.as_deref() {
        // Shared preset resolver — the same names `lumos synth
        // --model` accepts.
        Some(name) => vec![or_exit(ModelConfig::from_preset(name))],
        None => ModelConfig::table1(),
    };
    let opts = RunOptions::default();
    let mut progress = |s: &str| eprintln!("[fig5] {s}");
    let out = or_exit(fig5(&models, &opts, &mut progress));
    for (model, table) in &out.panels {
        println!("Figure 5 — {model}\n");
        println!("{}", table.to_text());
    }
    println!(
        "Replay error over {} configs: Lumos avg {} (max {}), dPRO avg {} (max {})",
        out.rows,
        pct(out.lumos_avg),
        pct(out.lumos_max),
        pct(out.dpro_avg),
        pct(out.dpro_max)
    );
}
