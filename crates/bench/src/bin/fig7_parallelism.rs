//! Figure 7: predicting scale-out configurations from the GPT-3 15B
//! 2x2x4 base trace by graph manipulation.
//!
//! Usage: fig7_parallelism [--part a|b|c]   (default: all parts)
use lumos_bench::figures::fig7;
use lumos_bench::{or_exit, RunOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let part = args
        .windows(2)
        .find(|w| w[0] == "--part")
        .and_then(|w| w[1].chars().next());
    let parts: Vec<char> = match part {
        Some(p) => vec![p],
        None => vec!['a', 'b', 'c'],
    };
    let opts = RunOptions::default();
    for p in parts {
        let mut progress = |s: &str| eprintln!("[fig7] {s}");
        let table = or_exit(fig7(p, &opts, &mut progress));
        let what = match p {
            'a' => "scaling data parallelism",
            'b' => "scaling pipeline parallelism",
            _ => "scaling both",
        };
        println!("Figure 7{p}: {what} (base GPT-3 15B @ 2x2x4)\n");
        println!("{}", table.to_text());
    }
}
