//! §4.2 headline: average replay error of Lumos vs dPRO over the
//! Figure 5 sweep (paper: Lumos 3.3% avg; dPRO 14% avg, 21.8% max).
use lumos_bench::figures::fig5;
use lumos_bench::table::{pct, TextTable};
use lumos_bench::{or_exit, RunOptions};
use lumos_model::ModelConfig;

fn main() {
    let opts = RunOptions::default();
    let mut progress = |s: &str| eprintln!("[summary] {s}");
    let out = or_exit(fig5(&ModelConfig::table1(), &opts, &mut progress));
    let mut t = TextTable::new(&[
        "toolkit",
        "avg error",
        "max error",
        "paper avg",
        "paper max",
    ]);
    t.row(vec![
        "Lumos".into(),
        pct(out.lumos_avg),
        pct(out.lumos_max),
        "3.3%".into(),
        "~5%".into(),
    ]);
    t.row(vec![
        "dPRO".into(),
        pct(out.dpro_avg),
        pct(out.dpro_max),
        "14%".into(),
        "21.8%".into(),
    ]);
    println!("Replay-error summary over {} configurations\n", out.rows);
    println!("{}", t.to_text());
}
