//! Experiment harness reproducing every table and figure of the Lumos
//! paper.
//!
//! Each binary in `src/bin/` regenerates one artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `tab1_models` | Table 1 (model architectures + parameter counts) |
//! | `tab2_variants` | Table 2 (architecture variants) |
//! | `fig1_breakdown` | Figure 1 (GPT-3 175B breakdown, dPRO vs actual) |
//! | `fig5_replay` | Figure 5 (replay accuracy, 4 models × 6 configs) |
//! | `fig6_sm_util` | Figure 6 (SM-utilization timeline) |
//! | `fig7_parallelism` | Figure 7a/b/c (parallelism-scaling prediction) |
//! | `fig8_arch` | Figure 8 (architecture-variant prediction) |
//! | `summary` | §4.2 headline (average replay error) |
//! | `experiments` | all of the above → writes `EXPERIMENTS.md` |
//!
//! The harness profiles one jittered iteration of the ground-truth
//! engine ("collecting a Kineto trace"), measures iteration time as
//! the mean of further jittered iterations ("actual"), then replays
//! the profiled trace with Lumos and with the dPRO baseline and
//! compares.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod paper;
pub mod table;

pub use harness::{
    measure_actual, predict_from, predict_from_calibrated, profile_calibrated, profile_config,
    replay_experiment, CalibratedBase, ConfigResult, PredictionResult, RunOptions,
};
pub use paper::PaperError;

/// Unwraps a bench-binary result, printing the error to stderr and
/// exiting with status 2 instead of panicking with a backtrace.
pub fn or_exit<T, E: std::fmt::Display>(result: Result<T, E>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
