//! The paper's experiment configurations, verbatim from §4.

use lumos_cluster::SimConfig;
use lumos_core::manipulate::Transform;
use lumos_model::{BatchConfig, ModelConfig, ModelError, Parallelism, ScheduleKind};
use std::fmt;

/// A paper-configuration lookup that cannot be satisfied — unknown
/// model names, malformed `TPxPPxDP` labels, or out-of-range figure
/// parts surface as clean errors instead of aborting a bench binary.
#[derive(Debug)]
pub enum PaperError {
    /// A `TPxPPxDP` parallelism label failed to parse.
    Label {
        /// The offending label.
        label: String,
        /// Why it was rejected.
        source: ModelError,
    },
    /// No Figure-5 label set exists for the model name.
    UnknownModel {
        /// The unrecognized model name.
        name: String,
    },
    /// Figure 7 has parts `a`, `b`, and `c` only.
    UnknownFigurePart {
        /// The unrecognized part.
        part: char,
    },
}

impl fmt::Display for PaperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PaperError::Label { label, source } => {
                write!(f, "invalid TPxPPxDP label `{label}`: {source}")
            }
            PaperError::UnknownModel { name } => {
                write!(
                    f,
                    "no figure-5 labels for model `{name}` \
                     (expected a Table-1 GPT-3 name)"
                )
            }
            PaperError::UnknownFigurePart { part } => {
                write!(f, "unknown figure-7 part `{part}` (use a, b, or c)")
            }
        }
    }
}

impl std::error::Error for PaperError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PaperError::Label { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Builds a [`SimConfig`] for a model at a `TPxPPxDP` label, with the
/// repository's default micro-batch policy (`2 × PP`, overridable).
///
/// # Errors
///
/// Returns [`PaperError::Label`] on malformed labels.
pub fn config(
    model: ModelConfig,
    label: &str,
    microbatches: Option<u32>,
) -> Result<SimConfig, PaperError> {
    let parallelism = Parallelism::parse_label(label).map_err(|source| PaperError::Label {
        label: label.to_string(),
        source,
    })?;
    let num_mb = microbatches.unwrap_or(2 * parallelism.pp);
    Ok(SimConfig {
        model,
        parallelism,
        batch: BatchConfig::gpt3_default(num_mb),
        schedule: ScheduleKind::OneFOneB,
    })
}

/// Figure 5's per-model parallelism labels (x-axes of the four
/// panels); `None` for models outside Table 1.
pub fn fig5_labels(model_name: &str) -> Option<&'static [&'static str]> {
    match model_name {
        "GPT-3 15B" => Some(&["2x2x4", "2x2x8", "2x4x2", "2x4x4", "4x2x2", "4x2x4"]),
        "GPT-3 44B" => Some(&["4x4x2", "4x4x4", "4x8x1", "4x8x2", "8x4x1", "8x4x2"]),
        "GPT-3 117B" => Some(&["4x8x2", "4x8x4", "8x4x2", "8x4x4", "8x8x1", "8x8x2"]),
        "GPT-3 175B" => Some(&["4x8x4", "4x8x8", "4x8x16", "8x4x4", "8x4x8", "8x4x16"]),
        _ => None,
    }
}

/// Figure 1 / §1: GPT-3 175B with TP=8, PP=4, DP=8.
///
/// # Errors
///
/// Propagates label-parse failures (none for the built-in label).
pub fn fig1_config(microbatches: Option<u32>) -> Result<SimConfig, PaperError> {
    config(ModelConfig::gpt3_175b(), "8x4x8", microbatches)
}

/// Figure 6 / §4.2.3: GPT-3 15B with TP=2, PP=2, DP=4.
///
/// # Errors
///
/// Propagates label-parse failures (none for the built-in label).
pub fn fig6_config(microbatches: Option<u32>) -> Result<SimConfig, PaperError> {
    config(ModelConfig::gpt3_15b(), "2x2x4", microbatches)
}

/// §4.3 baseline: GPT-3 15B at 2x2x4 — the trace all Figure 7/8
/// predictions start from.
///
/// # Errors
///
/// Propagates label-parse failures (none for the built-in label).
pub fn fig7_base(microbatches: Option<u32>) -> Result<SimConfig, PaperError> {
    config(ModelConfig::gpt3_15b(), "2x2x4", microbatches)
}

/// Figure 7a targets: scale data parallelism (32 → 128 GPUs).
pub fn fig7a_targets() -> Vec<(&'static str, Vec<Transform>)> {
    vec![
        ("2x2x8", vec![Transform::DataParallel { dp: 8 }]),
        ("2x2x16", vec![Transform::DataParallel { dp: 16 }]),
        ("2x2x32", vec![Transform::DataParallel { dp: 32 }]),
    ]
}

/// Figure 7b targets: scale pipeline parallelism.
pub fn fig7b_targets() -> Vec<(&'static str, Vec<Transform>)> {
    vec![
        (
            "2x4x4",
            vec![
                Transform::PipelineParallel { pp: 4 },
                Transform::DataParallel { dp: 4 },
            ],
        ),
        (
            "2x8x4",
            vec![
                Transform::PipelineParallel { pp: 8 },
                Transform::DataParallel { dp: 4 },
            ],
        ),
        (
            "2x16x4",
            vec![
                Transform::PipelineParallel { pp: 16 },
                Transform::DataParallel { dp: 4 },
            ],
        ),
    ]
}

/// Figure 7c targets: scale both axes simultaneously.
pub fn fig7c_targets() -> Vec<(&'static str, Vec<Transform>)> {
    vec![
        (
            "2x4x8",
            vec![
                Transform::PipelineParallel { pp: 4 },
                Transform::DataParallel { dp: 8 },
            ],
        ),
        (
            "2x8x8",
            vec![
                Transform::PipelineParallel { pp: 8 },
                Transform::DataParallel { dp: 8 },
            ],
        ),
        (
            "2x4x16",
            vec![
                Transform::PipelineParallel { pp: 4 },
                Transform::DataParallel { dp: 16 },
            ],
        ),
    ]
}

/// Figure 8 / Table 2 targets: architecture variants of the 15B base.
pub fn fig8_targets() -> Vec<(&'static str, Vec<Transform>)> {
    vec![
        ("GPT-3 V1", vec![Transform::NumLayers { layers: 64 }]),
        ("GPT-3 V2", vec![Transform::NumLayers { layers: 96 }]),
        (
            "GPT-3 V3",
            vec![Transform::HiddenSize {
                hidden: 9_216,
                ffn: 18_432,
            }],
        ),
        (
            "GPT-3 V4",
            vec![Transform::HiddenSize {
                hidden: 12_288,
                ffn: 24_576,
            }],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_labels_world_sizes() {
        // Figure 5 spans 16 to 512 GPUs.
        let mut min_ws = u32::MAX;
        let mut max_ws = 0;
        for m in ModelConfig::table1() {
            for label in fig5_labels(&m.name).expect("table-1 model has labels") {
                let p = Parallelism::parse_label(label).unwrap();
                p.validate_for(m.num_layers, m.num_heads).unwrap();
                min_ws = min_ws.min(p.world_size());
                max_ws = max_ws.max(p.world_size());
            }
        }
        assert_eq!(min_ws, 16);
        assert_eq!(max_ws, 512);
    }

    #[test]
    fn unknown_lookups_are_errors_not_panics() {
        assert!(fig5_labels("GPT-5 9000B").is_none());
        let err = config(ModelConfig::gpt3_15b(), "not-a-label", None).unwrap_err();
        assert!(matches!(err, PaperError::Label { .. }), "{err}");
        assert!(err.to_string().contains("not-a-label"));
        let err = config(ModelConfig::gpt3_15b(), "0x4x2", None).unwrap_err();
        assert!(matches!(err, PaperError::Label { .. }), "{err}");
    }

    #[test]
    fn fig1_is_256_gpus() {
        let c = fig1_config(None).unwrap();
        assert_eq!(c.parallelism.world_size(), 256);
        assert_eq!(c.model.name, "GPT-3 175B");
    }

    #[test]
    fn prediction_targets_valid() {
        let base = fig7_base(None).unwrap();
        for (label, transforms) in fig7a_targets()
            .into_iter()
            .chain(fig7b_targets())
            .chain(fig7c_targets())
        {
            let new = lumos_core::manipulate::apply_transforms(&base, &transforms).unwrap();
            assert_eq!(new.parallelism.label(), label);
        }
        for (_, transforms) in fig8_targets() {
            lumos_core::manipulate::apply_transforms(&base, &transforms).unwrap();
        }
    }
}
