//! The paper's experiment configurations, verbatim from §4.

use lumos_cluster::SimConfig;
use lumos_core::manipulate::Transform;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};

/// Builds a [`SimConfig`] for a model at a `TPxPPxDP` label, with the
/// repository's default micro-batch policy (`2 × PP`, overridable).
pub fn config(model: ModelConfig, label: &str, microbatches: Option<u32>) -> SimConfig {
    let parallelism = Parallelism::parse_label(label).expect("valid TPxPPxDP label");
    let num_mb = microbatches.unwrap_or(2 * parallelism.pp);
    SimConfig {
        model,
        parallelism,
        batch: BatchConfig::gpt3_default(num_mb),
        schedule: ScheduleKind::OneFOneB,
    }
}

/// Figure 5's per-model parallelism labels (x-axes of the four
/// panels).
pub fn fig5_labels(model_name: &str) -> &'static [&'static str] {
    match model_name {
        "GPT-3 15B" => &["2x2x4", "2x2x8", "2x4x2", "2x4x4", "4x2x2", "4x2x4"],
        "GPT-3 44B" => &["4x4x2", "4x4x4", "4x8x1", "4x8x2", "8x4x1", "8x4x2"],
        "GPT-3 117B" => &["4x8x2", "4x8x4", "8x4x2", "8x4x4", "8x8x1", "8x8x2"],
        "GPT-3 175B" => &["4x8x4", "4x8x8", "4x8x16", "8x4x4", "8x4x8", "8x4x16"],
        other => panic!("no figure-5 labels for {other}"),
    }
}

/// Figure 1 / §1: GPT-3 175B with TP=8, PP=4, DP=8.
pub fn fig1_config(microbatches: Option<u32>) -> SimConfig {
    config(ModelConfig::gpt3_175b(), "8x4x8", microbatches)
}

/// Figure 6 / §4.2.3: GPT-3 15B with TP=2, PP=2, DP=4.
pub fn fig6_config(microbatches: Option<u32>) -> SimConfig {
    config(ModelConfig::gpt3_15b(), "2x2x4", microbatches)
}

/// §4.3 baseline: GPT-3 15B at 2x2x4 — the trace all Figure 7/8
/// predictions start from.
pub fn fig7_base(microbatches: Option<u32>) -> SimConfig {
    config(ModelConfig::gpt3_15b(), "2x2x4", microbatches)
}

/// Figure 7a targets: scale data parallelism (32 → 128 GPUs).
pub fn fig7a_targets() -> Vec<(&'static str, Vec<Transform>)> {
    vec![
        ("2x2x8", vec![Transform::DataParallel { dp: 8 }]),
        ("2x2x16", vec![Transform::DataParallel { dp: 16 }]),
        ("2x2x32", vec![Transform::DataParallel { dp: 32 }]),
    ]
}

/// Figure 7b targets: scale pipeline parallelism.
pub fn fig7b_targets() -> Vec<(&'static str, Vec<Transform>)> {
    vec![
        (
            "2x4x4",
            vec![
                Transform::PipelineParallel { pp: 4 },
                Transform::DataParallel { dp: 4 },
            ],
        ),
        (
            "2x8x4",
            vec![
                Transform::PipelineParallel { pp: 8 },
                Transform::DataParallel { dp: 4 },
            ],
        ),
        (
            "2x16x4",
            vec![
                Transform::PipelineParallel { pp: 16 },
                Transform::DataParallel { dp: 4 },
            ],
        ),
    ]
}

/// Figure 7c targets: scale both axes simultaneously.
pub fn fig7c_targets() -> Vec<(&'static str, Vec<Transform>)> {
    vec![
        (
            "2x4x8",
            vec![
                Transform::PipelineParallel { pp: 4 },
                Transform::DataParallel { dp: 8 },
            ],
        ),
        (
            "2x8x8",
            vec![
                Transform::PipelineParallel { pp: 8 },
                Transform::DataParallel { dp: 8 },
            ],
        ),
        (
            "2x4x16",
            vec![
                Transform::PipelineParallel { pp: 4 },
                Transform::DataParallel { dp: 16 },
            ],
        ),
    ]
}

/// Figure 8 / Table 2 targets: architecture variants of the 15B base.
pub fn fig8_targets() -> Vec<(&'static str, Vec<Transform>)> {
    vec![
        ("GPT-3 V1", vec![Transform::NumLayers { layers: 64 }]),
        ("GPT-3 V2", vec![Transform::NumLayers { layers: 96 }]),
        (
            "GPT-3 V3",
            vec![Transform::HiddenSize {
                hidden: 9_216,
                ffn: 18_432,
            }],
        ),
        (
            "GPT-3 V4",
            vec![Transform::HiddenSize {
                hidden: 12_288,
                ffn: 24_576,
            }],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_labels_world_sizes() {
        // Figure 5 spans 16 to 512 GPUs.
        let mut min_ws = u32::MAX;
        let mut max_ws = 0;
        for m in ModelConfig::table1() {
            for label in fig5_labels(&m.name) {
                let p = Parallelism::parse_label(label).unwrap();
                p.validate_for(m.num_layers, m.num_heads).unwrap();
                min_ws = min_ws.min(p.world_size());
                max_ws = max_ws.max(p.world_size());
            }
        }
        assert_eq!(min_ws, 16);
        assert_eq!(max_ws, 512);
    }

    #[test]
    fn fig1_is_256_gpus() {
        let c = fig1_config(None);
        assert_eq!(c.parallelism.world_size(), 256);
        assert_eq!(c.model.name, "GPT-3 175B");
    }

    #[test]
    fn prediction_targets_valid() {
        let base = fig7_base(None);
        for (label, transforms) in fig7a_targets()
            .into_iter()
            .chain(fig7b_targets())
            .chain(fig7c_targets())
        {
            let new = lumos_core::manipulate::apply_transforms(&base, &transforms).unwrap();
            assert_eq!(new.parallelism.label(), label);
        }
        for (_, transforms) in fig8_targets() {
            lumos_core::manipulate::apply_transforms(&base, &transforms).unwrap();
        }
    }
}
