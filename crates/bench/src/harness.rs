//! Experiment runner: ground truth vs Lumos vs dPRO.
//!
//! Prediction experiments run calibrate-once: each base trace is
//! profiled and fitted into a [`CalibrationArtifact`] exactly one
//! time per process ([`profile_calibrated`] memoizes it), and every
//! prediction from that trace reuses the artifact's tables and block
//! library instead of re-ingesting — across all figures that share a
//! base (Figure 7a/b/c, Figure 8, and the extension studies all start
//! from the same 15B 2x2x4 trace).

use lumos_calib::CalibrationArtifact;
use lumos_cluster::{EngineOutput, GroundTruthCluster, JitterModel, SimConfig};
use lumos_core::manipulate::Transform;
use lumos_core::Lumos;
use lumos_cost::AnalyticalCostModel;
use lumos_dpro::Dpro;
use lumos_trace::{Breakdown, BreakdownExt, ClusterTrace, Dur};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Knobs shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Jitter seed (the "cluster" this run happens on).
    pub seed: u64,
    /// Iterations averaged into the "actual" measurement (beyond the
    /// profiled one).
    pub measured_iters: usize,
    /// Micro-batch override (`None` = `2 × PP`).
    pub microbatches: Option<u32>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            seed: 2025,
            measured_iters: 2,
            microbatches: None,
        }
    }
}

/// Ground-truth artifacts for one configuration.
pub struct Profiled {
    /// The configuration that ran.
    pub config: SimConfig,
    /// The profiled iteration's trace (iteration 0).
    pub output: EngineOutput,
    /// Mean measured iteration time over further iterations.
    pub actual: Dur,
    /// Breakdown of the profiled iteration.
    pub actual_breakdown: Breakdown,
}

/// Profiles one jittered iteration of `config` and measures the mean
/// over `opts.measured_iters` more iterations.
///
/// # Panics
///
/// Panics on invalid configurations or engine failures (experiment
/// configurations are static and must be valid).
pub fn profile_config(config: &SimConfig, opts: &RunOptions) -> Profiled {
    // Each configuration is its own "job" on the cluster: diversify
    // the jitter seed so per-iteration drift is independent across
    // configs (otherwise every row would share one drift sample and
    // replay errors would be perfectly correlated).
    let mut seed = opts.seed;
    for b in config.label().bytes() {
        seed = seed.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
    }
    let cluster = GroundTruthCluster::new(config, AnalyticalCostModel::h100())
        .expect("experiment configuration must be valid")
        .with_jitter(JitterModel::realistic(seed));
    let output = cluster.profile_iteration(0).expect("engine completes");
    let mut total = Dur::ZERO;
    let mut n = 0u64;
    for i in 0..opts.measured_iters {
        total += cluster
            .profile_iteration(1 + i as u64)
            .expect("engine completes")
            .makespan;
        n += 1;
    }
    let actual = if n == 0 { output.makespan } else { total / n };
    let actual_breakdown = output.trace.breakdown();
    Profiled {
        config: config.clone(),
        output,
        actual,
        actual_breakdown,
    }
}

/// Just the mean measured iteration time of a configuration (used to
/// validate predictions).
pub fn measure_actual(config: &SimConfig, opts: &RunOptions) -> (Dur, Breakdown) {
    let p = profile_config(config, opts);
    (p.actual, p.actual_breakdown)
}

/// A profiled base and its fitted calibration artifact — everything a
/// prediction experiment needs, shared across every figure that
/// starts from the same trace. The raw trace is deliberately *not*
/// retained: the artifact's tables + block library answer every
/// prediction, and the memo pins these for the process lifetime.
pub struct CalibratedBase {
    /// The configuration that ran.
    pub config: SimConfig,
    /// Mean measured iteration time.
    pub actual: Dur,
    /// Breakdown of the profiled iteration.
    pub actual_breakdown: Breakdown,
    /// The calibration fitted from the trace (tables + block library).
    pub artifact: CalibrationArtifact,
}

/// Process-wide calibration memo: one artifact per distinct
/// (configuration, run options) pair.
static CALIBRATION_MEMO: OnceLock<Mutex<HashMap<String, Arc<CalibratedBase>>>> = OnceLock::new();

fn memo_key(config: &SimConfig, opts: &RunOptions) -> String {
    // The full serialized setup disambiguates configurations that
    // share a label but differ in batching or scheduling.
    format!(
        "{}|seed={}|iters={}|mb={:?}",
        serde_json::to_string(config).expect("setups serialize"),
        opts.seed,
        opts.measured_iters,
        opts.microbatches
    )
}

/// [`profile_config`] plus a fitted [`CalibrationArtifact`], memoized
/// process-wide: the first call for a configuration profiles and
/// calibrates; every later call (same figure or another one) gets the
/// shared result without re-profiling or re-fitting.
///
/// # Panics
///
/// Panics on invalid configurations or engine failures (experiment
/// configurations are static and must be valid).
pub fn profile_calibrated(config: &SimConfig, opts: &RunOptions) -> Arc<CalibratedBase> {
    let memo = CALIBRATION_MEMO.get_or_init(Default::default);
    let key = memo_key(config, opts);
    // The lock is held across the profile + fit so concurrent callers
    // for the same configuration cannot both do the expensive work
    // (and every caller provably gets the same Arc).
    let mut memo = memo.lock().expect("calibration memo");
    if let Some(hit) = memo.get(&key).cloned() {
        return hit;
    }
    let profiled = profile_config(config, opts);
    let artifact = CalibrationArtifact::calibrate(&profiled.output.trace, config, "h100", 8)
        .expect("experiment traces are annotated");
    let base = Arc::new(CalibratedBase {
        config: config.clone(),
        actual: profiled.actual,
        actual_breakdown: profiled.actual_breakdown,
        artifact,
    });
    memo.insert(key, Arc::clone(&base));
    base
}

/// One row of Figure 5: actual vs Lumos vs dPRO for a configuration.
#[derive(Debug, Clone)]
pub struct ConfigResult {
    /// `TPxPPxDP` label.
    pub label: String,
    /// Mean measured iteration time.
    pub actual: Dur,
    /// Breakdown of the profiled iteration.
    pub actual_breakdown: Breakdown,
    /// Lumos replayed time.
    pub lumos: Dur,
    /// Lumos replayed breakdown.
    pub lumos_breakdown: Breakdown,
    /// dPRO replayed time.
    pub dpro: Dur,
    /// dPRO replayed breakdown.
    pub dpro_breakdown: Breakdown,
}

impl ConfigResult {
    /// Lumos replay error vs actual.
    pub fn lumos_error(&self) -> f64 {
        self.lumos.relative_error(self.actual)
    }

    /// dPRO replay error vs actual.
    pub fn dpro_error(&self) -> f64 {
        self.dpro.relative_error(self.actual)
    }
}

/// Runs the full replay comparison for one configuration.
pub fn replay_experiment(config: &SimConfig, opts: &RunOptions) -> ConfigResult {
    let profiled = profile_config(config, opts);
    let lumos = Lumos::new()
        .replay(&profiled.output.trace)
        .expect("replay succeeds");
    let dpro = Dpro::new()
        .replay(&profiled.output.trace)
        .expect("dpro replay succeeds");
    ConfigResult {
        label: config.parallelism.label(),
        actual: profiled.actual,
        actual_breakdown: profiled.actual_breakdown,
        lumos: lumos.makespan(),
        lumos_breakdown: lumos.breakdown(),
        dpro: dpro.makespan(),
        dpro_breakdown: dpro.breakdown(),
    }
}

/// One row of Figures 7/8: prediction vs fresh ground truth.
#[derive(Debug, Clone)]
pub struct PredictionResult {
    /// Target label (parallelism or variant name).
    pub label: String,
    /// Lumos-predicted iteration time.
    pub predicted: Dur,
    /// Predicted breakdown.
    pub predicted_breakdown: Breakdown,
    /// Fresh ground-truth iteration time at the target config.
    pub actual: Dur,
    /// Ground-truth breakdown.
    pub actual_breakdown: Breakdown,
}

impl PredictionResult {
    /// Prediction error vs actual.
    pub fn error(&self) -> f64 {
        self.predicted.relative_error(self.actual)
    }
}

/// Predicts `transforms` applied to the deployment behind
/// `base_trace`, then validates against a fresh ground-truth run of
/// the target configuration. Re-fits the calibration from the trace
/// on every call; prefer [`predict_from_calibrated`] when several
/// predictions share one base.
pub fn predict_from(
    base_trace: &ClusterTrace,
    base_config: &SimConfig,
    label: &str,
    transforms: &[Transform],
    opts: &RunOptions,
) -> PredictionResult {
    let prediction = Lumos::new()
        .predict(
            base_trace,
            base_config,
            transforms,
            AnalyticalCostModel::h100(),
        )
        .expect("prediction succeeds");
    let (actual, actual_breakdown) = measure_actual(&prediction.setup, opts);
    PredictionResult {
        label: label.to_string(),
        predicted: prediction.makespan(),
        predicted_breakdown: prediction.replayed.breakdown(),
        actual,
        actual_breakdown,
    }
}

/// [`predict_from`] against a memoized calibration: prices the target
/// through the shared artifact's tables and block library (no
/// per-prediction re-fit, bit-identical results), then validates
/// against a fresh ground-truth run.
pub fn predict_from_calibrated(
    base: &CalibratedBase,
    label: &str,
    transforms: &[Transform],
    opts: &RunOptions,
) -> PredictionResult {
    let fallback = AnalyticalCostModel::from_preset(&base.artifact.hardware)
        .expect("harness artifacts record a known hardware preset");
    let lookup = base.artifact.cost_model(fallback);
    let prediction = Lumos::new()
        .predict_with_library(&base.artifact.library, &base.config, transforms, &lookup)
        .expect("prediction succeeds");
    let (actual, actual_breakdown) = measure_actual(&prediction.setup, opts);
    PredictionResult {
        label: label.to_string(),
        predicted: prediction.makespan(),
        predicted_breakdown: prediction.replayed.breakdown(),
        actual,
        actual_breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};

    fn tiny() -> SimConfig {
        SimConfig {
            model: ModelConfig::tiny(),
            parallelism: Parallelism::new(1, 2, 1).unwrap(),
            batch: BatchConfig {
                seq_len: 128,
                microbatch_size: 1,
                num_microbatches: 4,
            },
            schedule: ScheduleKind::OneFOneB,
        }
    }

    #[test]
    fn replay_experiment_produces_row() {
        let opts = RunOptions {
            seed: 7,
            measured_iters: 1,
            microbatches: None,
        };
        let row = replay_experiment(&tiny(), &opts);
        assert_eq!(row.label, "1x2x1");
        assert!(row.actual > Dur::ZERO);
        assert!(row.lumos_error() < 0.2);
        assert!(row.dpro <= row.lumos);
    }

    #[test]
    fn prediction_experiment_produces_row() {
        let opts = RunOptions {
            seed: 7,
            measured_iters: 1,
            microbatches: None,
        };
        let base = tiny();
        let profiled = profile_config(&base, &opts);
        let row = predict_from(
            &profiled.output.trace,
            &base,
            "1x2x2",
            &[Transform::DataParallel { dp: 2 }],
            &opts,
        );
        assert!(row.predicted > Dur::ZERO);
        assert!(row.error() < 0.25);
    }

    #[test]
    fn calibrated_prediction_is_bit_identical_and_memoized() {
        let opts = RunOptions {
            seed: 7,
            measured_iters: 1,
            microbatches: None,
        };
        let base = tiny();
        let calibrated = profile_calibrated(&base, &opts);
        // Memo hit: the same Arc comes back, no re-profile.
        let again = profile_calibrated(&base, &opts);
        assert!(Arc::ptr_eq(&calibrated, &again));

        let transforms = [Transform::DataParallel { dp: 2 }];
        // profile_config is deterministic per (config, seed), so this
        // re-profile reproduces the trace the calibration was fitted
        // from.
        let trace = profile_config(&base, &opts).output.trace;
        let fresh = predict_from(&trace, &base, "1x2x2", &transforms, &opts);
        let from_artifact = predict_from_calibrated(&calibrated, "1x2x2", &transforms, &opts);
        assert_eq!(fresh.predicted, from_artifact.predicted);
        assert_eq!(fresh.actual, from_artifact.actual);
        assert_eq!(
            fresh.predicted_breakdown.exposed_compute,
            from_artifact.predicted_breakdown.exposed_compute
        );
        assert_eq!(
            fresh.predicted_breakdown.exposed_comm,
            from_artifact.predicted_breakdown.exposed_comm
        );
    }
}
