//! `lumos serve` throughput bench: sustained req/s against an
//! in-process daemon serving the 15B sweep artifact (PR 6).
//!
//! Calibrates the sweep example's base (`lumos synth --model 15b
//! --tp 2 --pp 2 --dp 1`) into a temp registry, starts the daemon on
//! an ephemeral port, then drives it with persistent-connection client
//! threads: a predict phase (rotating what-if transforms) and a search
//! phase (a small dp × microbatch grid). Latency quantiles come from
//! the daemon's own `stats` endpoint — the same numbers an operator
//! would scrape — so the snapshot exercises the observability path
//! too.
//!
//! Writes `BENCH_PR6.json` at the repository root (override with
//! `BENCH_PR6_OUT`) and **fails** (exit 2) when any response is an
//! error or the daemon shed load mid-bench — CI runs it in smoke mode
//! (`SERVE_BENCH_SMOKE=1`, fewer requests) to guard the serve path on
//! every push.

use lumos_calib::CalibrationArtifact;
use lumos_cluster::{GroundTruthCluster, JitterModel, SimConfig};
use lumos_cost::AnalyticalCostModel;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};
use lumos_serve::{ServeConfig, Server};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("SERVE_BENCH_SMOKE").is_some()
}

/// The sweep example's documented base (examples/spaces/sweep.toml
/// header), same fixture as the calibration bench.
fn sweep_artifact() -> CalibrationArtifact {
    let cfg = SimConfig {
        model: ModelConfig::gpt3_15b(),
        parallelism: Parallelism::new(2, 2, 1).unwrap(),
        batch: BatchConfig {
            seq_len: 2048,
            microbatch_size: 1,
            num_microbatches: 4,
        },
        schedule: ScheduleKind::OneFOneB,
    };
    let trace = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100())
        .unwrap()
        .with_jitter(JitterModel::realistic(2025))
        .profile_iteration(0)
        .unwrap()
        .trace;
    CalibrationArtifact::calibrate(&trace, &cfg, "h100", 8).unwrap()
}

/// One persistent line-delimited JSON connection to the daemon.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to bench daemon");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn ask(&mut self, request: &str) -> String {
        writeln!(self.writer, "{request}").expect("send request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        line
    }
}

/// Sends `count` requests from `clients` persistent connections, each
/// request drawn round-robin from `requests`. Returns the wall-clock
/// seconds for the whole phase and the number of non-`expected`
/// responses observed.
fn drive(
    addr: SocketAddr,
    clients: usize,
    count: usize,
    requests: &[String],
    expected: &str,
) -> (f64, usize) {
    let needle = format!("\"kind\":\"{expected}\"");
    let start = Instant::now();
    let errors: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let needle = &needle;
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut errors = 0usize;
                    for i in 0..count {
                        let request = &requests[(c + i * clients) % requests.len()];
                        if !client.ask(request).contains(needle) {
                            errors += 1;
                        }
                    }
                    errors
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    (start.elapsed().as_secs_f64(), errors)
}

/// Pulls a quantile field for one request kind out of the daemon's
/// `stats` response.
fn kind_stat(stats: &Value, kind: &str, field: &str) -> u64 {
    stats["request_kinds"]
        .as_array()
        .expect("request_kinds array")
        .iter()
        .find(|k| k["kind"].as_str() == Some(kind))
        .unwrap_or_else(|| panic!("kind {kind} missing from stats"))[field]
        .as_u64()
        .unwrap_or_else(|| panic!("{kind}.{field} missing from stats"))
}

fn main() {
    let smoke = smoke();
    let (predict_clients, predict_each) = if smoke { (4, 10) } else { (4, 50) };
    let (search_clients, search_each) = if smoke { (2, 2) } else { (2, 10) };

    let dir = std::env::temp_dir().join(format!("lumos-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench registry dir");
    let artifact = sweep_artifact();
    artifact
        .save(dir.join("sweep.calib.json").to_str().unwrap())
        .expect("save sweep artifact");

    let mut config = ServeConfig::new("127.0.0.1:0", &dir);
    config.workers = 4;
    config.queue_capacity = 64;
    let (server, outcome) = Server::bind(&config).expect("bind bench daemon");
    assert_eq!(outcome.loaded.len(), 1, "one artifact in bench registry");
    let digest = outcome.loaded[0].clone();
    let addr = server.local_addr().expect("daemon local addr");
    let daemon = std::thread::spawn(move || server.run());

    // Predict phase: rotating what-if transforms against the 15B base,
    // the daemon's bread-and-butter request.
    let predicts: Vec<String> = [
        r#""dp":2"#,
        r#""microbatches":8"#,
        r#""dp":2,"microbatches":8"#,
        r#""microbatches":2"#,
    ]
    .iter()
    .map(|t| format!(r#"{{"kind":"predict","artifact":"{digest}",{t}}}"#))
    .collect();
    let (predict_secs, predict_errors) =
        drive(addr, predict_clients, predict_each, &predicts, "predict");
    let predict_total = predict_clients * predict_each;
    let predict_rps = predict_total as f64 / predict_secs;

    // Search phase: a small dp × microbatch grid. Repeats share the
    // cross-request stage memo, so the phase also populates the cache
    // hit-rate the stats check below reads back.
    let searches = vec![
        format!(
            r#"{{"kind":"search","artifact":"{digest}","dp":[1,2],"microbatches":[4,8],"top":3}}"#
        ),
        format!(
            r#"{{"kind":"search","artifact":"{digest}","dp":[1,2,4],"microbatches":[4],"top":3}}"#
        ),
    ];
    let (search_secs, search_errors) =
        drive(addr, search_clients, search_each, &searches, "search");
    let search_total = search_clients * search_each;
    let search_rps = search_total as f64 / search_secs;

    // Quantiles and cache hit-rate from the daemon's own stats
    // endpoint — the observability path is part of the bench surface.
    let mut admin = Client::connect(addr);
    let stats: Value =
        serde_json::from_str(&admin.ask(r#"{"kind":"stats"}"#)).expect("stats parses");
    let served = stats["served"].as_u64().expect("served");
    let rejected = stats["rejected_overloaded"].as_u64().expect("rejected");
    let predict_p50 = kind_stat(&stats, "predict", "p50_us");
    let predict_p95 = kind_stat(&stats, "predict", "p95_us");
    let predict_p99 = kind_stat(&stats, "predict", "p99_us");
    let search_p50 = kind_stat(&stats, "search", "p50_us");
    let search_p95 = kind_stat(&stats, "search", "p95_us");
    let search_p99 = kind_stat(&stats, "search", "p99_us");
    let memo_hit_rate = stats["artifacts"][0]["memo_hit_rate"]
        .as_f64()
        .expect("memo_hit_rate");

    admin.ask(r#"{"kind":"shutdown"}"#);
    daemon.join().expect("daemon thread").expect("daemon run");
    std::fs::remove_dir_all(&dir).ok();

    let json = format!(
        "{{\n  \"pr\": 6,\n  \"generated_by\": \"crates/bench/benches/serve.rs\",\n  \
         \"fixture\": {{\n    \"model\": \"gpt3-15b\",\n    \"tp\": 2,\n    \"pp\": 2,\n    \
         \"dp\": 1,\n    \"microbatches\": 4,\n    \"seq_len\": 2048\n  }},\n  \
         \"smoke\": {smoke},\n  \"workers\": {workers},\n  \
         \"queue_capacity\": {queue},\n  \
         \"predict_clients\": {predict_clients},\n  \
         \"predict_requests\": {predict_total},\n  \
         \"predict_wall_secs\": {predict_secs:.6},\n  \
         \"predict_reqs_per_sec\": {predict_rps:.1},\n  \
         \"predict_p50_us\": {predict_p50},\n  \
         \"predict_p95_us\": {predict_p95},\n  \
         \"predict_p99_us\": {predict_p99},\n  \
         \"search_clients\": {search_clients},\n  \
         \"search_requests\": {search_total},\n  \
         \"search_wall_secs\": {search_secs:.6},\n  \
         \"search_reqs_per_sec\": {search_rps:.1},\n  \
         \"search_p50_us\": {search_p50},\n  \
         \"search_p95_us\": {search_p95},\n  \
         \"search_p99_us\": {search_p99},\n  \
         \"memo_hit_rate\": {memo_hit_rate:.3},\n  \
         \"served\": {served},\n  \
         \"rejected_overloaded\": {rejected}\n}}\n",
        workers = config.workers,
        queue = config.queue_capacity,
    );

    let out = std::env::var("BENCH_PR6_OUT").unwrap_or_else(|_| {
        // Benches run with cwd = crates/bench; snapshot lives at the
        // repository root.
        format!("{}/../../BENCH_PR6.json", env!("CARGO_MANIFEST_DIR"))
    });
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));

    println!("\n== BENCH_PR6 snapshot ({out}) ==");
    print!("{json}");

    if predict_errors + search_errors > 0 {
        eprintln!(
            "FAIL: {predict_errors} predict / {search_errors} search responses \
             were not successes"
        );
        std::process::exit(2);
    }
    if rejected > 0 {
        eprintln!("FAIL: daemon shed {rejected} requests during the bench");
        std::process::exit(2);
    }
    if served != (predict_total + search_total) as u64 {
        eprintln!(
            "FAIL: daemon served {served} requests, expected {}",
            predict_total + search_total
        );
        std::process::exit(2);
    }
}
