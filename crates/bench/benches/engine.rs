//! Engine execution-mode benchmarks: metrics-only vs full-trace
//! simulation, and the refined-search end-to-end path that motivated
//! the metrics-only mode (PR 5).
//!
//! Besides the usual criterion output, this bench snapshots its
//! medians to `BENCH_PR5.json` at the repository root (override with
//! `BENCH_PR5_OUT`) and **fails** (exit 2) when the metrics-only
//! engine path is not faster than the full-trace path — CI runs it in
//! smoke mode (`ENGINE_BENCH_SMOKE=1`, fewer samples) to guard the
//! perf claim on every push.
//!
//! The fixture is the refined-search test fixture: an 8-layer research
//! model on tp=1 × pp=2 × dp=2 with 4 micro-batches, executed against
//! a trace-fitted lookup cost model exactly as `lumos search
//! --refine-sim --jitter-replicas 8` executes finalists.

use criterion::{criterion_group, BenchmarkId, Criterion};
use lumos_cluster::{GroundTruthCluster, JitterModel, PreparedJob, SimConfig};
use lumos_cost::{AnalyticalCostModel, HostOverheads, LookupCostModel};
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};
use lumos_search::{search, Objective, SearchOptions, SpaceSpec};
use lumos_trace::ClusterTrace;
use std::time::Instant;

/// The refined-search fixture (mirrors `crates/search/tests/refine.rs`).
fn fixture() -> (SimConfig, ClusterTrace) {
    let cfg = SimConfig {
        model: ModelConfig::custom("refine-e2e", 8, 256, 1024, 4, 64),
        parallelism: Parallelism::new(1, 2, 2).unwrap(),
        batch: BatchConfig {
            seq_len: 128,
            microbatch_size: 1,
            num_microbatches: 4,
        },
        schedule: ScheduleKind::OneFOneB,
    };
    let trace = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100())
        .unwrap()
        .profile_iteration(0)
        .unwrap()
        .trace;
    (cfg, trace)
}

fn smoke() -> bool {
    std::env::var_os("ENGINE_BENCH_SMOKE").is_some()
}

/// Median wall-clock seconds of `samples` runs of `f` (after one
/// warm-up run).
fn median_secs<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    f();
    let mut times: Vec<f64> = (0..samples.max(2))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Interleaved A/B medians: samples alternate between the two
/// workloads so clock-frequency drift hits both sides equally instead
/// of biasing whichever ran second.
fn median_pair_secs<FA: FnMut(), FB: FnMut()>(samples: usize, mut a: FA, mut b: FB) -> (f64, f64) {
    a();
    b();
    let mut ta = Vec::with_capacity(samples);
    let mut tb = Vec::with_capacity(samples);
    for _ in 0..samples.max(2) {
        let start = Instant::now();
        a();
        ta.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        b();
        tb.push(start.elapsed().as_secs_f64());
    }
    ta.sort_by(f64::total_cmp);
    tb.sort_by(f64::total_cmp);
    (ta[ta.len() / 2], tb[tb.len() / 2])
}

fn search_opts(jitter_replicas: u32) -> SearchOptions {
    SearchOptions {
        objective: Objective::Makespan,
        top_k: Some(5),
        refine_sim: true,
        jitter_replicas,
        ..SearchOptions::default()
    }
}

fn refine_space() -> SpaceSpec {
    SpaceSpec::deployment_grid(&[1], &[1, 2, 4], &[1, 2]).with_microbatches(&[4, 8])
}

/// Criterion view: one engine iteration of the fixture job, full-trace
/// vs metrics-only, priced by the trace-fitted lookup model.
fn bench_engine_modes(c: &mut Criterion) {
    let (cfg, trace) = fixture();
    let lookup = LookupCostModel::fit_from_trace(&trace, AnalyticalCostModel::h100(), 8);
    let job = lumos_cluster::lower(&cfg).unwrap();
    let prep = PreparedJob::new(&job).unwrap();
    let oh = HostOverheads::default();
    let jitter = JitterModel::none();
    let mut group = c.benchmark_group("engine");
    group.sample_size(if smoke() { 3 } else { 10 });
    group.bench_with_input(BenchmarkId::from_parameter("full-trace"), &prep, |b, p| {
        b.iter(|| p.execute(&lookup, &oh, &jitter, 0).unwrap())
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("metrics-only"),
        &prep,
        |b, p| b.iter(|| p.execute_metrics(&lookup, &oh, &jitter, 0).unwrap()),
    );
    group.finish();
}

/// Criterion view: the two-phase search end to end with 8 jitter
/// replicas per finalist (the workload the metrics-only mode exists
/// for).
fn bench_refined_search(c: &mut Criterion) {
    let (cfg, trace) = fixture();
    let spec = refine_space();
    let mut group = c.benchmark_group("search_refined_jitter8");
    group.sample_size(if smoke() { 2 } else { 5 });
    group.bench_function("refine-sim", |b| {
        b.iter(|| {
            search(
                &trace,
                &cfg,
                &spec,
                &search_opts(8),
                AnalyticalCostModel::h100(),
            )
            .unwrap()
        })
    });
    group.finish();
}

/// Criterion view: one finalist's whole refinement workload — the
/// zero-jitter base run plus 8 deterministic jitter replicas — the
/// way the pre-metrics refine path ran it (full-trace `execute`,
/// re-preparing per run) vs the way it runs now (prepare once,
/// metrics-only).
fn bench_refine_finalist(c: &mut Criterion) {
    let (cfg, trace) = fixture();
    let lookup = LookupCostModel::fit_from_trace(&trace, AnalyticalCostModel::h100(), 8);
    let job = lumos_cluster::lower(&cfg).unwrap();
    let oh = HostOverheads::default();
    let none = JitterModel::none();
    let realistic = JitterModel::realistic(0);
    let mut group = c.benchmark_group("refine_finalist_jitter8");
    group.sample_size(if smoke() { 2 } else { 5 });
    group.bench_function("full-trace-per-run", |b| {
        b.iter(|| {
            lumos_cluster::execute(&job, &lookup, &oh, &none, 0).unwrap();
            for replica in 0..8 {
                lumos_cluster::execute(&job, &lookup, &oh, &realistic, replica).unwrap();
            }
        })
    });
    group.bench_function("metrics-prepared-once", |b| {
        b.iter(|| {
            let prep = PreparedJob::new(&job).unwrap();
            prep.execute_metrics(&lookup, &oh, &none, 0).unwrap();
            for replica in 0..8 {
                prep.execute_metrics(&lookup, &oh, &realistic, replica)
                    .unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(
    engine_benches,
    bench_engine_modes,
    bench_refine_finalist,
    bench_refined_search
);

/// Machine-readable snapshot: medians of the same three workloads,
/// written to `BENCH_PR5.json`, plus the metrics-vs-full speedup gate.
fn emit_snapshot() {
    let smoke = smoke();
    let samples = if smoke { 5 } else { 25 };
    let search_samples = if smoke { 2 } else { 7 };

    let (cfg, trace) = fixture();
    let lookup = LookupCostModel::fit_from_trace(&trace, AnalyticalCostModel::h100(), 8);
    let job = lumos_cluster::lower(&cfg).unwrap();
    let prep = PreparedJob::new(&job).unwrap();
    let oh = HostOverheads::default();
    let jitter = JitterModel::none();

    // Headline comparison — one zero-jitter simulation of the refine
    // fixture, as the refine path runs it: before, a full-trace
    // `execute()` paying per-run setup and trace materialization
    // every time; now, a metrics-only run of the shared prepared job.
    let (full, metrics) = median_pair_secs(
        samples,
        || {
            std::hint::black_box(lumos_cluster::execute(&job, &lookup, &oh, &jitter, 0).unwrap());
        },
        || {
            std::hint::black_box(prep.execute_metrics(&lookup, &oh, &jitter, 0).unwrap());
        },
    );
    // Conservative variant: both sides share the prepared job, so the
    // delta is purely the sink (trace materialization vs aggregates).
    let (full_prepared, metrics_prepared) = median_pair_secs(
        samples,
        || {
            std::hint::black_box(prep.execute(&lookup, &oh, &jitter, 0).unwrap());
        },
        || {
            std::hint::black_box(prep.execute_metrics(&lookup, &oh, &jitter, 0).unwrap());
        },
    );
    let realistic = JitterModel::realistic(0);
    let (finalist_full, finalist_metrics) = median_pair_secs(
        samples / 3 + 2,
        || {
            lumos_cluster::execute(&job, &lookup, &oh, &jitter, 0).unwrap();
            for replica in 0..8 {
                std::hint::black_box(
                    lumos_cluster::execute(&job, &lookup, &oh, &realistic, replica).unwrap(),
                );
            }
        },
        || {
            let p = PreparedJob::new(&job).unwrap();
            p.execute_metrics(&lookup, &oh, &jitter, 0).unwrap();
            for replica in 0..8 {
                std::hint::black_box(
                    p.execute_metrics(&lookup, &oh, &realistic, replica)
                        .unwrap(),
                );
            }
        },
    );
    let spec = refine_space();
    let refined = median_secs(search_samples, || {
        std::hint::black_box(
            search(
                &trace,
                &cfg,
                &spec,
                &search_opts(8),
                AnalyticalCostModel::h100(),
            )
            .unwrap(),
        );
    });
    let speedup = full / metrics;
    let prepared_speedup = full_prepared / metrics_prepared;
    let finalist_speedup = finalist_full / finalist_metrics;

    let json = format!(
        "{{\n  \"pr\": 5,\n  \"generated_by\": \"crates/bench/benches/engine.rs\",\n  \
         \"fixture\": {{\n    \"model\": \"refine-e2e\",\n    \"layers\": 8,\n    \
         \"tp\": 1,\n    \"pp\": 2,\n    \"dp\": 2,\n    \"microbatches\": 4,\n    \
         \"seq_len\": 128,\n    \"world_size\": 4\n  }},\n  \
         \"samples\": {samples},\n  \"smoke\": {smoke},\n  \
         \"engine_full_trace_per_run_median_secs\": {full:.9},\n  \
         \"engine_metrics_only_median_secs\": {metrics:.9},\n  \
         \"engine_speedup_metrics_vs_full\": {speedup:.3},\n  \
         \"engine_full_trace_prepared_median_secs\": {full_prepared:.9},\n  \
         \"engine_metrics_only_prepared_median_secs\": {metrics_prepared:.9},\n  \
         \"engine_prepared_speedup_metrics_vs_full\": {prepared_speedup:.3},\n  \
         \"refine_finalist_jitter8_full_trace_median_secs\": {finalist_full:.9},\n  \
         \"refine_finalist_jitter8_metrics_median_secs\": {finalist_metrics:.9},\n  \
         \"refine_finalist_jitter8_speedup\": {finalist_speedup:.3},\n  \
         \"refined_search_jitter8_median_secs\": {refined:.9}\n}}\n"
    );

    let out = std::env::var("BENCH_PR5_OUT").unwrap_or_else(|_| {
        // Benches run with cwd = crates/bench; snapshot lives at the
        // repository root.
        format!("{}/../../BENCH_PR5.json", env!("CARGO_MANIFEST_DIR"))
    });
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));

    println!("\n== BENCH_PR5 snapshot ({out}) ==");
    print!("{json}");

    if metrics >= full {
        eprintln!(
            "FAIL: metrics-only engine path ({metrics:.6}s) is not faster than \
             full-trace ({full:.6}s)"
        );
        std::process::exit(2);
    }
}

fn main() {
    engine_benches();
    emit_snapshot();
}
