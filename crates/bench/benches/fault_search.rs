//! Fault-robust search benchmark (PR 10): re-rank a pp=4 finalist set
//! by expected makespan under the committed
//! `examples/fixtures/faults.toml` scenario mix, and gate the fault
//! pass's replay throughput. Emits deterministic numbers to
//! `BENCH_PR10.json` at the repository root (override with
//! `BENCH_PR10_OUT`).
//!
//! Gates (exit 2 on violation):
//!
//! * the fault pass must sustain ≥ 100 replicas/finalist/sec on the
//!   pp=4 fixture (the metrics-only engine fast path is the whole
//!   reason per-replica replay is affordable);
//! * every finalist's fault stats must be internally consistent
//!   (expected ≤ p95, robustness in (0, 1]);
//! * deterministic fields must match a committed `BENCH_PR10.json`.
//!
//! CI runs it in smoke mode (`FAULT_BENCH_SMOKE=1`): gates and
//! snapshot only, no criterion timing loops.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use lumos_cluster::{FaultSpec, GroundTruthCluster, JitterModel, SimConfig};
use lumos_cost::AnalyticalCostModel;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};
use lumos_search::{search, SearchOptions, SearchReport, SpaceSpec};
use lumos_trace::ClusterTrace;

/// Fault replicas per finalist in the gated run.
const REPLICAS: u32 = 64;

fn smoke() -> bool {
    std::env::var_os("FAULT_BENCH_SMOKE").is_some()
}

/// Base profiled at pp=4: the deepest pipeline in the ranked space,
/// so every candidate is trace-reachable.
fn base() -> (SimConfig, ClusterTrace) {
    let cfg = SimConfig {
        model: ModelConfig::custom("bench-faults", 8, 256, 1024, 4, 64),
        parallelism: Parallelism::new(1, 4, 1).unwrap(),
        batch: BatchConfig {
            seq_len: 128,
            microbatch_size: 1,
            num_microbatches: 8,
        },
        schedule: ScheduleKind::OneFOneB,
    };
    let trace = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100())
        .unwrap()
        .with_jitter(JitterModel::realistic(2025))
        .profile_iteration(0)
        .unwrap()
        .trace;
    (cfg, trace)
}

/// The pp axis the finalists come from.
fn space() -> SpaceSpec {
    SpaceSpec::deployment_grid(&[1], &[1, 2, 4], &[1]).with_microbatches(&[8])
}

/// The committed CI fixture, pinned into the binary: editing the file
/// shows up as snapshot drift here and as a test failure in
/// `crates/search/tests/faults.rs`.
fn fixture_spec() -> FaultSpec {
    FaultSpec::parse(include_str!("../../../examples/fixtures/faults.toml"))
        .expect("committed fixture parses")
}

fn fault_opts(replicas: u32) -> SearchOptions {
    SearchOptions {
        top_k: Some(4),
        refine_sim: true,
        fault_spec: Some(fixture_spec()),
        fault_replicas: replicas,
        fault_seed: 2025,
        ..SearchOptions::default()
    }
}

fn run(cfg: &SimConfig, trace: &ClusterTrace, opts: &SearchOptions) -> SearchReport {
    search(trace, cfg, &space(), opts, AnalyticalCostModel::h100()).unwrap()
}

fn bench_fault_search(c: &mut Criterion) {
    let (cfg, trace) = base();
    let mut group = c.benchmark_group("fault_search");
    group.sample_size(10);

    group.bench_function(BenchmarkId::from_parameter("refine-clean"), |b| {
        b.iter(|| {
            run(
                &cfg,
                &trace,
                &SearchOptions {
                    top_k: Some(4),
                    refine_sim: true,
                    ..SearchOptions::default()
                },
            )
        })
    });

    for replicas in [8u32, 32, REPLICAS] {
        group.throughput(Throughput::Elements(u64::from(replicas)));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("faults-{replicas}rep")),
            &replicas,
            |b, &replicas| b.iter(|| run(&cfg, &trace, &fault_opts(replicas))),
        );
    }
    group.finish();
}

/// Deterministic snapshot plus the throughput and consistency gates.
fn emit_snapshot() {
    let (cfg, trace) = base();

    // The clean refined ranking, for the degradation baseline.
    let clean = run(
        &cfg,
        &trace,
        &SearchOptions {
            top_k: Some(4),
            refine_sim: true,
            ..SearchOptions::default()
        },
    );
    let clean_top = &clean.refined.as_ref().expect("refined finals")[0];
    let clean_label = clean_top.label.clone();

    // The gated robust run, timed end to end.
    let started = std::time::Instant::now();
    let report = run(&cfg, &trace, &fault_opts(REPLICAS));
    let elapsed = started.elapsed().as_secs_f64();
    let refined = report.refined.as_ref().expect("refined finals");
    let finalists = refined.len();
    let replicas_total = u64::from(REPLICAS) * finalists as u64;
    // Whole-search wall time is a conservative denominator: screening
    // and clean refinement are charged to the fault pass too.
    let rate = f64::from(REPLICAS) / elapsed;

    let mut consistent = true;
    for r in refined {
        let f = r.faults.as_ref().expect("fault stats on every finalist");
        consistent &= f.replicas == REPLICAS
            && f.expected <= f.p95
            && f.expected >= r.simulated_makespan
            && f.degradation >= 0.0
            && f.robustness > 0.0
            && f.robustness <= 1.0;
    }
    let top = &refined[0];
    let top_faults = top.faults.as_ref().expect("fault stats");

    let json = format!(
        "{{\n  \"pr\": 10,\n  \"generated_by\": \"crates/bench/benches/fault_search.rs\",\n  \
         \"smoke\": {},\n  \
         \"fixture\": \"examples/fixtures/faults.toml\",\n  \
         \"finalists\": {},\n  \"fault_replicas\": {},\n  \"fault_seed\": 2025,\n  \
         \"replicas_total\": {},\n  \
         \"clean_top1_label\": \"{}\",\n  \"robust_top1_label\": \"{}\",\n  \
         \"robust_top1_expected_ns\": {},\n  \"robust_top1_p95_ns\": {},\n  \
         \"replicas_per_finalist_per_sec\": {:.1},\n  \"elapsed_ms\": {}\n}}\n",
        smoke(),
        finalists,
        REPLICAS,
        replicas_total,
        clean_label,
        top.label,
        top_faults.expected.as_ns(),
        top_faults.p95.as_ns(),
        rate,
        (elapsed * 1e3) as u64,
    );

    let default_path = format!("{}/../../BENCH_PR10.json", env!("CARGO_MANIFEST_DIR"));
    let committed = std::fs::read_to_string(&default_path).ok();
    let out = std::env::var("BENCH_PR10_OUT").unwrap_or(default_path);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));

    println!("\n== BENCH_PR10 snapshot ({out}) ==");
    print!("{json}");

    if !consistent {
        eprintln!("FAIL: a finalist's fault stats are internally inconsistent");
        std::process::exit(2);
    }
    if rate < 100.0 {
        eprintln!(
            "FAIL: fault pass sustained {rate:.1} replicas/finalist/sec \
             ({REPLICAS} replicas x {finalists} finalists in {elapsed:.2}s) — under the 100/s gate"
        );
        std::process::exit(2);
    }
    if let Some(text) = committed {
        let drift = diff_against(
            &text,
            finalists,
            &clean_label,
            &top.label,
            top_faults.expected.as_ns(),
            top_faults.p95.as_ns(),
        );
        if drift.is_empty() {
            println!("trajectory diff clean: fault numbers match the committed snapshot");
        } else {
            eprintln!("FAIL: fault trajectory drifted from the committed BENCH_PR10.json:");
            for line in &drift {
                eprintln!("  {line}");
            }
            std::process::exit(2);
        }
    } else {
        println!("no committed BENCH_PR10.json — skipping trajectory diff");
    }
}

/// Diffs the deterministic fields against the committed snapshot
/// (rate/elapsed/smoke are machine-dependent and excluded).
fn diff_against(
    committed: &str,
    finalists: usize,
    clean_label: &str,
    robust_label: &str,
    expected_ns: u64,
    p95_ns: u64,
) -> Vec<String> {
    let doc: serde_json::Value = match serde_json::from_str(committed) {
        Ok(doc) => doc,
        Err(e) => return vec![format!("committed snapshot is not valid JSON: {e}")],
    };
    let mut drift = Vec::new();
    for (field, new) in [
        ("finalists", finalists as u64),
        ("fault_replicas", u64::from(REPLICAS)),
        ("robust_top1_expected_ns", expected_ns),
        ("robust_top1_p95_ns", p95_ns),
    ] {
        let old = doc.get(field).and_then(|v| v.as_u64());
        if old != Some(new) {
            drift.push(format!("{field}: {new} != committed {old:?}"));
        }
    }
    for (field, new) in [
        ("clean_top1_label", clean_label),
        ("robust_top1_label", robust_label),
    ] {
        let old = doc.get(field).and_then(|v| v.as_str());
        if old != Some(new) {
            drift.push(format!("{field}: {new} != committed {old:?}"));
        }
    }
    drift
}

criterion_group!(fault_benches, bench_fault_search);

fn main() {
    // Smoke mode (CI): gates and snapshot only — the criterion timing
    // loops re-run the same deterministic searches and add nothing.
    if !smoke() {
        fault_benches();
    }
    emit_snapshot();
}
