//! Algorithm 1 replay throughput (tasks/second).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lumos_cluster::{GroundTruthCluster, SimConfig};
use lumos_core::{build_graph, simulate, BuildOptions, SimOptions};
use lumos_cost::AnalyticalCostModel;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};

fn graph_for(ranks: (u32, u32, u32)) -> lumos_core::ExecutionGraph {
    let cfg = SimConfig {
        model: ModelConfig::custom("bench", 8, 1024, 4096, 8, 128),
        parallelism: Parallelism::new(ranks.0, ranks.1, ranks.2).unwrap(),
        batch: BatchConfig {
            seq_len: 1024,
            microbatch_size: 1,
            num_microbatches: 2 * ranks.1,
        },
        schedule: ScheduleKind::OneFOneB,
    };
    let trace = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100())
        .unwrap()
        .profile_iteration(0)
        .unwrap()
        .trace;
    build_graph(&trace, &BuildOptions::default()).unwrap()
}

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    for (name, ranks) in [
        ("1rank", (1, 1, 1)),
        ("8ranks", (2, 2, 2)),
        ("16ranks", (2, 2, 4)),
    ] {
        let graph = graph_for(ranks);
        group.throughput(Throughput::Elements(graph.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, g| {
            b.iter(|| simulate(g, &SimOptions::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulate);
criterion_main!(benches);
