//! Graph-manipulation (predict) cost per transform kind.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lumos_cluster::{GroundTruthCluster, SimConfig};
use lumos_core::manipulate::Transform;
use lumos_core::Lumos;
use lumos_cost::AnalyticalCostModel;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};

fn bench_manipulate(c: &mut Criterion) {
    let cfg = SimConfig {
        model: ModelConfig::custom("bench", 8, 1024, 4096, 8, 128),
        parallelism: Parallelism::new(1, 2, 2).unwrap(),
        batch: BatchConfig {
            seq_len: 1024,
            microbatch_size: 1,
            num_microbatches: 4,
        },
        schedule: ScheduleKind::OneFOneB,
    };
    let trace = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100())
        .unwrap()
        .profile_iteration(0)
        .unwrap()
        .trace;
    let lumos = Lumos::new();

    let mut group = c.benchmark_group("manipulate");
    group.sample_size(10);
    for (name, transforms) in [
        ("dp_x2", vec![Transform::DataParallel { dp: 4 }]),
        ("pp_x2", vec![Transform::PipelineParallel { pp: 4 }]),
        ("layers_x2", vec![Transform::NumLayers { layers: 16 }]),
        (
            "hidden_x2",
            vec![Transform::HiddenSize {
                hidden: 2048,
                ffn: 8192,
            }],
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &transforms, |b, tr| {
            b.iter(|| {
                lumos
                    .predict(&trace, &cfg, tr, AnalyticalCostModel::h100())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_manipulate);
criterion_main!(benches);
