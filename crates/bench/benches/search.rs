//! Search-engine throughput: candidates priced per second, end to end
//! (enumeration + memory gate + parallel evaluation + ranking).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lumos_cluster::{GroundTruthCluster, JitterModel, SimConfig};
use lumos_cost::AnalyticalCostModel;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};
use lumos_search::{search, SearchOptions, SpaceSpec};
use lumos_trace::ClusterTrace;

fn base() -> (SimConfig, ClusterTrace) {
    let cfg = SimConfig {
        model: ModelConfig::custom("bench-search", 8, 1024, 4096, 8, 128),
        parallelism: Parallelism::new(1, 2, 2).unwrap(),
        batch: BatchConfig {
            seq_len: 512,
            microbatch_size: 1,
            num_microbatches: 4,
        },
        schedule: ScheduleKind::OneFOneB,
    };
    let trace = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100())
        .unwrap()
        .with_jitter(JitterModel::realistic(2025))
        .profile_iteration(0)
        .unwrap()
        .trace;
    (cfg, trace)
}

fn bench_search(c: &mut Criterion) {
    let (cfg, trace) = base();
    let mut group = c.benchmark_group("search");
    group.sample_size(10);
    for (name, spec) in [
        (
            "small-12",
            SpaceSpec::deployment_grid(&[1], &[1, 2], &[1, 2]).with_microbatches(&[2, 4, 8]),
        ),
        (
            "medium-96",
            SpaceSpec::deployment_grid(&[1], &[1, 2, 4, 8], &[1, 2, 4])
                .with_microbatches(&[2, 4, 8, 16])
                .with_interleave(&[1, 2]),
        ),
    ] {
        let candidates = spec.grid_upper_bound(&cfg) as u64;
        group.throughput(Throughput::Elements(candidates));
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| {
                search(
                    &trace,
                    &cfg,
                    spec,
                    &SearchOptions::default(),
                    AnalyticalCostModel::h100(),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Streaming mode on a deliberately oversized grid: most points are
/// cheap lattice/budget rejects, survivors flow through the memoized
/// lower bound and bounded top-k heaps. Measures candidates *visited*
/// per second end to end.
fn bench_search_streaming(c: &mut Criterion) {
    let (cfg, trace) = base();
    let dp: Vec<u32> = (1..=100).collect();
    let interleave: Vec<u32> = (1..=8).collect();
    let spec = SpaceSpec::deployment_grid(&[1], &[1, 2, 4, 8], &dp)
        .with_microbatches(&[2, 4, 8, 16])
        .with_interleave(&interleave)
        .with_max_gpus(16);
    let mut group = c.benchmark_group("search_streaming");
    group.sample_size(10);
    let candidates = spec.grid_upper_bound(&cfg) as u64;
    group.throughput(Throughput::Elements(candidates));
    for top_k in [10usize, 100] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("top{top_k}-of-{candidates}")),
            &top_k,
            |b, &top_k| {
                let opts = SearchOptions {
                    top_k: Some(top_k),
                    ..SearchOptions::default()
                };
                b.iter(|| search(&trace, &cfg, &spec, &opts, AnalyticalCostModel::h100()).unwrap())
            },
        );
    }
    group.finish();
}

/// Two-phase search: analytic screen plus engine-simulated refinement
/// of the finals. Measures the cost of phase two (lower + discrete-
/// event execution per finalist, optional jitter replicas) against
/// the screen-only baseline on the same space.
fn bench_search_refined(c: &mut Criterion) {
    let (cfg, trace) = base();
    let spec = SpaceSpec::deployment_grid(&[1], &[1, 2, 4], &[1, 2]).with_microbatches(&[2, 4, 8]);
    let mut group = c.benchmark_group("search_refined");
    group.sample_size(10);
    for (name, refine_sim, jitter_replicas) in [
        ("screen-only", false, 0u32),
        ("refine-top5", true, 0),
        ("refine-top5-jitter3", true, 3),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(refine_sim, jitter_replicas),
            |b, &(refine_sim, jitter_replicas)| {
                let opts = SearchOptions {
                    top_k: Some(5),
                    refine_sim,
                    jitter_replicas,
                    ..SearchOptions::default()
                };
                b.iter(|| search(&trace, &cfg, &spec, &opts, AnalyticalCostModel::h100()).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_search_threads(c: &mut Criterion) {
    let (cfg, trace) = base();
    let spec =
        SpaceSpec::deployment_grid(&[1], &[1, 2, 4], &[1, 2, 4]).with_microbatches(&[2, 4, 8]);
    let mut group = c.benchmark_group("search_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let opts = SearchOptions {
                    threads: Some(threads),
                    ..SearchOptions::default()
                };
                b.iter(|| search(&trace, &cfg, &spec, &opts, AnalyticalCostModel::h100()).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_search,
    bench_search_streaming,
    bench_search_refined,
    bench_search_threads
);
criterion_main!(benches);
