//! Execution-graph construction throughput vs trace size.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lumos_cluster::{GroundTruthCluster, SimConfig};
use lumos_core::{build_graph, BuildOptions};
use lumos_cost::AnalyticalCostModel;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};

fn trace_for(layers: u32, ranks: (u32, u32, u32)) -> lumos_trace::ClusterTrace {
    let cfg = SimConfig {
        model: ModelConfig::custom("bench", layers, 1024, 4096, 8, 128),
        parallelism: Parallelism::new(ranks.0, ranks.1, ranks.2).unwrap(),
        batch: BatchConfig {
            seq_len: 1024,
            microbatch_size: 1,
            num_microbatches: 2 * ranks.1,
        },
        schedule: ScheduleKind::OneFOneB,
    };
    GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100())
        .unwrap()
        .profile_iteration(0)
        .unwrap()
        .trace
}

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    group.sample_size(10);
    for (name, trace) in [
        ("1rank_4layers", trace_for(4, (1, 1, 1))),
        ("8ranks_8layers", trace_for(8, (2, 2, 2))),
        ("16ranks_16layers", trace_for(16, (2, 2, 4))),
    ] {
        group.throughput(Throughput::Elements(trace.total_events() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, t| {
            b.iter(|| build_graph(t, &BuildOptions::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph_build);
criterion_main!(benches);
