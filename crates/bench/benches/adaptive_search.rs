//! Adaptive corpus-guided search benchmark (PR 9): rank a synthetic
//! space two-plus orders of magnitude beyond anything the exhaustive
//! walk could enumerate, and prove the adaptive engine's exactness
//! guarantee on a sweep-sized space. Emits deterministic numbers to
//! `BENCH_PR9.json` at the repository root (override with
//! `BENCH_PR9_OUT`).
//!
//! Gates (exit 2 on violation):
//!
//! * adaptive top-k must equal exhaustive top-k on the sweep-sized
//!   space (the `AdaptiveOutcome::Exact` contract);
//! * the synthetic-space run must visit ≤ 10% of the grid (the whole
//!   point of not enumerating);
//! * deterministic fields must match a committed `BENCH_PR9.json`.
//!
//! CI runs it in smoke mode (`ADAPTIVE_BENCH_SMOKE=1`): gates and
//! snapshot only, no criterion timing loops.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use lumos_cluster::{GroundTruthCluster, JitterModel, SimConfig};
use lumos_cost::AnalyticalCostModel;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};
use lumos_search::{search, AdaptiveOutcome, SearchOptions, SearchReport, SpaceSpec};
use lumos_trace::ClusterTrace;

fn smoke() -> bool {
    std::env::var_os("ADAPTIVE_BENCH_SMOKE").is_some()
}

/// Base profiled at tp=2 so tp>1 candidates are trace-reachable.
fn base() -> (SimConfig, ClusterTrace) {
    let cfg = SimConfig {
        model: ModelConfig::custom("bench-adaptive", 8, 256, 1024, 4, 64),
        parallelism: Parallelism::new(2, 1, 1).unwrap(),
        batch: BatchConfig {
            seq_len: 128,
            microbatch_size: 1,
            num_microbatches: 4,
        },
        schedule: ScheduleKind::OneFOneB,
    };
    let trace = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100())
        .unwrap()
        .with_jitter(JitterModel::realistic(2025))
        .profile_iteration(0)
        .unwrap()
        .trace;
    (cfg, trace)
}

/// The committed sweep.toml grid, inline (288 points): the exactness
/// fixture.
fn sweep_space() -> SpaceSpec {
    SpaceSpec::deployment_grid(&[2, 4, 8], &[1, 2, 4, 8], &[1, 2, 4, 8])
        .with_microbatches(&[4, 8, 16])
        .with_interleave(&[1, 2])
        .with_max_gpus(64)
}

/// A synthetic ~3×10⁷-candidate space (five orders of magnitude past
/// sweep.toml): a huge dp axis under a tight GPU budget, so the
/// feasible region is a vanishing fraction of the grid — exactly the
/// regime the corpus-guided engine exists for.
fn synthetic_space() -> SpaceSpec {
    let dp: Vec<u32> = (1..=8192).collect();
    let mb: Vec<u32> = (1..=16).collect();
    let v: Vec<u32> = (1..=4).collect();
    SpaceSpec::deployment_grid(&[2, 4, 8], &[1, 2, 4, 8, 16, 32], &dp)
        .with_microbatches(&mb)
        .with_interleave(&v)
        .with_schedules(&[
            ScheduleKind::OneFOneB,
            ScheduleKind::GPipe,
            ScheduleKind::ZbH1,
        ])
        .with_max_gpus(128)
}

fn adaptive_opts(budget: usize) -> SearchOptions {
    SearchOptions {
        top_k: Some(10),
        adaptive: true,
        budget: Some(budget),
        seed: 2025,
        ..SearchOptions::default()
    }
}

fn run(
    cfg: &SimConfig,
    trace: &ClusterTrace,
    spec: &SpaceSpec,
    opts: &SearchOptions,
) -> SearchReport {
    search(trace, cfg, spec, opts, AnalyticalCostModel::h100()).unwrap()
}

fn bench_adaptive(c: &mut Criterion) {
    let (cfg, trace) = base();
    let mut group = c.benchmark_group("adaptive_search");
    group.sample_size(10);

    let sweep = sweep_space();
    group.bench_function(BenchmarkId::from_parameter("sweep-288-exact"), |b| {
        b.iter(|| run(&cfg, &trace, &sweep, &adaptive_opts(4096)))
    });

    let synthetic = synthetic_space();
    let points = synthetic.grid_upper_bound(&cfg) as u64;
    group.throughput(Throughput::Elements(points));
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("synthetic-{points}")),
        &synthetic,
        |b, spec| b.iter(|| run(&cfg, &trace, spec, &adaptive_opts(512))),
    );
    group.finish();
}

/// Deterministic snapshot plus the exactness and ≤10%-visited gates.
fn emit_snapshot() {
    let (cfg, trace) = base();

    // Gate 1 — exactness on the sweep-sized space.
    let sweep = sweep_space();
    let exhaustive = run(
        &cfg,
        &trace,
        &sweep,
        &SearchOptions {
            top_k: Some(10),
            ..SearchOptions::default()
        },
    );
    let adaptive_sweep = run(&cfg, &trace, &sweep, &adaptive_opts(4096));
    let sweep_acct = adaptive_sweep.adaptive.expect("adaptive accounting");
    let exact = sweep_acct.outcome == AdaptiveOutcome::Exact
        && adaptive_sweep.results.len() == exhaustive.results.len()
        && adaptive_sweep
            .results
            .iter()
            .zip(&exhaustive.results)
            .all(|(a, e)| a.index == e.index && a.makespan == e.makespan);

    // Gate 2 — the synthetic space, timed end to end.
    let synthetic = synthetic_space();
    let started = std::time::Instant::now();
    let report = run(&cfg, &trace, &synthetic, &adaptive_opts(512));
    let elapsed_ms = started.elapsed().as_millis() as u64;
    let acct = report.adaptive.expect("adaptive accounting");
    let top = report.results.first().expect("ranked results");

    let json = format!(
        "{{\n  \"pr\": 9,\n  \"generated_by\": \"crates/bench/benches/adaptive_search.rs\",\n  \
         \"smoke\": {},\n  \
         \"sweep_exact\": {{\n    \"grid_points\": {},\n    \"visited\": {},\n    \
         \"outcome\": \"{}\",\n    \"matches_exhaustive_topk\": {}\n  }},\n  \
         \"synthetic\": {{\n    \"grid_points\": {},\n    \"budget\": {},\n    \
         \"visited\": {},\n    \"visited_percent\": {:.4},\n    \"mutations\": {},\n    \
         \"rounds\": {},\n    \"outcome\": \"{}\",\n    \"seed\": {},\n    \
         \"top1_label\": \"{}\",\n    \"top1_makespan_ns\": {},\n    \
         \"elapsed_ms\": {}\n  }}\n}}\n",
        smoke(),
        sweep_acct.grid_points,
        sweep_acct.visited,
        sweep_acct.outcome,
        exact,
        acct.grid_points,
        acct.budget,
        acct.visited,
        acct.visited_percent(),
        acct.mutations,
        acct.rounds,
        acct.outcome,
        acct.seed,
        top.label,
        top.makespan.as_ns(),
        elapsed_ms,
    );

    let default_path = format!("{}/../../BENCH_PR9.json", env!("CARGO_MANIFEST_DIR"));
    let committed = std::fs::read_to_string(&default_path).ok();
    let out = std::env::var("BENCH_PR9_OUT").unwrap_or(default_path);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));

    println!("\n== BENCH_PR9 snapshot ({out}) ==");
    print!("{json}");

    if !exact {
        eprintln!(
            "FAIL: adaptive top-k does not match exhaustive on the sweep space \
             (outcome {}, {} vs {} results)",
            sweep_acct.outcome,
            adaptive_sweep.results.len(),
            exhaustive.results.len()
        );
        std::process::exit(2);
    }
    if acct.visited.saturating_mul(10) > acct.grid_points {
        eprintln!(
            "FAIL: adaptive visited {} of {} grid points ({:.2}%) — over the 10% cap",
            acct.visited,
            acct.grid_points,
            acct.visited_percent()
        );
        std::process::exit(2);
    }
    if let Some(text) = committed {
        let drift = diff_against(&text, &acct, top.makespan.as_ns(), &top.label);
        if drift.is_empty() {
            println!("trajectory diff clean: adaptive numbers match the committed snapshot");
        } else {
            eprintln!("FAIL: adaptive trajectory drifted from the committed BENCH_PR9.json:");
            for line in &drift {
                eprintln!("  {line}");
            }
            std::process::exit(2);
        }
    } else {
        println!("no committed BENCH_PR9.json — skipping trajectory diff");
    }
}

/// Diffs the deterministic synthetic-space fields against the
/// committed snapshot (elapsed/smoke are machine-dependent and
/// excluded).
fn diff_against(
    committed: &str,
    acct: &lumos_search::AdaptiveReport,
    top1_makespan_ns: u64,
    top1_label: &str,
) -> Vec<String> {
    let doc: serde_json::Value = match serde_json::from_str(committed) {
        Ok(doc) => doc,
        Err(e) => return vec![format!("committed snapshot is not valid JSON: {e}")],
    };
    let mut drift = Vec::new();
    let synthetic = doc.get("synthetic").cloned().unwrap_or_default();
    for (field, new) in [
        ("grid_points", acct.grid_points as u64),
        ("budget", acct.budget as u64),
        ("visited", acct.visited as u64),
        ("seed", acct.seed),
        ("top1_makespan_ns", top1_makespan_ns),
    ] {
        let old = synthetic.get(field).and_then(|v| v.as_u64());
        if old != Some(new) {
            drift.push(format!("synthetic.{field}: {new} != committed {old:?}"));
        }
    }
    let old_outcome = synthetic.get("outcome").and_then(|v| v.as_str());
    if old_outcome != Some(acct.outcome.to_string().as_str()) {
        drift.push(format!(
            "synthetic.outcome: {} != committed {old_outcome:?}",
            acct.outcome
        ));
    }
    let old_label = synthetic.get("top1_label").and_then(|v| v.as_str());
    if old_label != Some(top1_label) {
        drift.push(format!(
            "synthetic.top1_label: {top1_label} != committed {old_label:?}"
        ));
    }
    drift
}

criterion_group!(adaptive_benches, bench_adaptive);

fn main() {
    // Smoke mode (CI): gates and snapshot only — the criterion timing
    // loops re-run the same deterministic searches and add nothing.
    if !smoke() {
        adaptive_benches();
    }
    emit_snapshot();
}
