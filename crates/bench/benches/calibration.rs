//! Calibrate-once economics: what a query pays on startup.
//!
//! `full_refit` is the fit-on-the-fly path every subcommand used to
//! take per invocation — parse the Chrome-trace JSON, fit the lookup
//! tables, extract the block library. `artifact_load` is the
//! calibrate-once path: parse + validate a `lumos calibrate` artifact
//! (version check, digest re-hash included). The gap between the two
//! is the per-query saving of the artifact workflow; `search_query`
//! then shows a whole repeated search (the sweep-example space)
//! against a preloaded calibration versus fitting from the trace
//! each time.
use criterion::{criterion_group, criterion_main, Criterion};
use lumos_calib::CalibrationArtifact;
use lumos_cluster::{GroundTruthCluster, JitterModel, SimConfig};
use lumos_core::manipulate::BlockLibrary;
use lumos_cost::{AnalyticalCostModel, LookupTables};
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};
use lumos_search::{search, search_calibrated, SearchCalibration, SearchOptions, SpecFile};
use lumos_trace::{from_chrome_json, to_chrome_json, ChromeTraceOptions, ClusterTrace};

fn profile(cfg: &SimConfig) -> ClusterTrace {
    GroundTruthCluster::new(cfg, AnalyticalCostModel::h100())
        .unwrap()
        .with_jitter(JitterModel::realistic(2025))
        .profile_iteration(0)
        .unwrap()
        .trace
}

/// The sweep example's documented base: `lumos synth --model 15b
/// --tp 2 --pp 2 --dp 1` (examples/spaces/sweep.toml header).
fn sweep_base() -> (SimConfig, ClusterTrace) {
    let cfg = SimConfig {
        model: ModelConfig::gpt3_15b(),
        parallelism: Parallelism::new(2, 2, 1).unwrap(),
        batch: BatchConfig {
            seq_len: 2048,
            microbatch_size: 1,
            num_microbatches: 4,
        },
        schedule: ScheduleKind::OneFOneB,
    };
    let trace = profile(&cfg);
    (cfg, trace)
}

/// A small synthetic model for the end-to-end repeated-search bench
/// (the 15B base would make each search iteration minutes long).
fn toy_base() -> (SimConfig, ClusterTrace) {
    let cfg = SimConfig {
        model: ModelConfig::custom("bench-calib", 8, 1024, 4096, 8, 128),
        parallelism: Parallelism::new(2, 2, 1).unwrap(),
        batch: BatchConfig {
            seq_len: 512,
            microbatch_size: 1,
            num_microbatches: 4,
        },
        schedule: ScheduleKind::OneFOneB,
    };
    let trace = profile(&cfg);
    (cfg, trace)
}

/// The sweep example's space (examples/spaces/sweep.toml), capped to
/// a bench-sized GPU budget.
fn sweep_space() -> SpecFile {
    let text = include_str!("../../../examples/spaces/sweep.toml");
    let mut file = SpecFile::parse(text).expect("sweep example parses");
    file.space.max_gpus = 16;
    file
}

fn bench_startup(c: &mut Criterion) {
    let (cfg, trace) = sweep_base();
    let chrome_json = to_chrome_json(&trace, &ChromeTraceOptions::default());
    let artifact = CalibrationArtifact::calibrate(&trace, &cfg, "h100", 8).unwrap();
    let artifact_json = artifact.to_json();

    let mut group = c.benchmark_group("calibration_startup");
    group.sample_size(10);
    group.bench_function("full_refit", |b| {
        b.iter(|| {
            let trace = from_chrome_json(&chrome_json).unwrap();
            let tables = LookupTables::fit_from_trace(&trace, 8);
            let library = BlockLibrary::extract(&trace, cfg.parallelism).unwrap();
            (tables.compute_entries(), library.len())
        })
    });
    group.bench_function("artifact_load", |b| {
        b.iter(|| {
            let artifact = CalibrationArtifact::from_json(&artifact_json).unwrap();
            (artifact.tables.compute_entries(), artifact.library.len())
        })
    });
    group.finish();
}

fn bench_repeated_queries(c: &mut Criterion) {
    let (cfg, trace) = toy_base();
    let file = sweep_space();
    let opts = SearchOptions {
        top_k: Some(5),
        ..SearchOptions::default()
    };
    let artifact = CalibrationArtifact::calibrate(&trace, &cfg, "h100", 8).unwrap();
    let calib = SearchCalibration::from_artifact(&artifact, AnalyticalCostModel::h100());

    let mut group = c.benchmark_group("search_query");
    group.sample_size(10);
    group.bench_function("fit_per_query", |b| {
        b.iter(|| {
            search(
                &trace,
                &cfg,
                &file.space,
                &opts,
                AnalyticalCostModel::h100(),
            )
            .unwrap()
        })
    });
    group.bench_function("shared_calibration", |b| {
        b.iter(|| search_calibrated(&calib, &file.space, &opts).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_startup, bench_repeated_queries);
criterion_main!(benches);
