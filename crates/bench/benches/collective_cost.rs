//! Collective cost-model evaluation throughput and algorithm
//! comparison (ring vs tree vs auto).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lumos_cost::{
    AnalyticalCostModel, ClusterSpec, CollectiveAlgorithm, CollectiveModel, CostModel,
};
use lumos_trace::CollectiveKind;

fn bench_collective_cost(c: &mut Criterion) {
    let model = AnalyticalCostModel::h100();
    let mut group = c.benchmark_group("collective_cost");
    for &n in &[8u32, 64, 512] {
        let members: Vec<u32> = (0..n).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("allreduce_{n}ranks")),
            &members,
            |b, m| b.iter(|| model.collective_cost(CollectiveKind::AllReduce, 256 << 20, m)),
        );
    }
    group.finish();
}

fn bench_algorithms(c: &mut Criterion) {
    let model = CollectiveModel::new(ClusterSpec::h100_roce());
    let members: Vec<u32> = (0..64).collect();
    let mut group = c.benchmark_group("collective_algorithms");
    for algo in [
        CollectiveAlgorithm::Ring,
        CollectiveAlgorithm::Tree,
        CollectiveAlgorithm::Auto,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{algo:?}")),
            &algo,
            |b, &a| {
                b.iter(|| {
                    // Sweep the payload range a training iteration sees.
                    let mut acc = lumos_trace::Dur::ZERO;
                    for pow in 10..30 {
                        acc +=
                            model.duration_with(a, CollectiveKind::AllReduce, 1 << pow, &members);
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_collective_cost, bench_algorithms);
criterion_main!(benches);
