//! Schedule-comparison harness: run every registered pipeline
//! schedule through the native pipeline (lower → verify →
//! engine-simulate) on the sweep-style fixture and snapshot the
//! deterministic numbers to `BENCH_PR7.json` at the repository root
//! (override with `BENCH_PR7_OUT`).
//!
//! The snapshot is a regression trajectory: when a committed
//! `BENCH_PR7.json` exists, the deterministic fields (zero-jitter
//! simulated makespans, simulated bubble shares, analytic bubbles —
//! including the interleaved 1F1B adjustment) are diffed against it
//! and any drift **fails** (exit 2). Wall-clock medians are recorded
//! but never diffed. The harness also gates the zero-bubble claim:
//! zb-h1 must finish the fixture sooner than 1F1B.
//!
//! CI runs it in smoke mode (`SCHEDULE_BENCH_SMOKE=1`, fewer
//! criterion samples); smoke mode changes timings only, never the
//! diffed fields.

use criterion::{criterion_group, BenchmarkId, Criterion};
use lumos_cluster::{lower, verify, GroundTruthCluster, SimConfig};
use lumos_cost::AnalyticalCostModel;
use lumos_model::{registry, BatchConfig, ModelConfig, Parallelism, ScheduleKind};
use lumos_trace::BreakdownExt;

/// Pipeline depth of the fixture.
const PP: u32 = 4;
/// Micro-batch count of the fixture.
const MICROBATCHES: u32 = 8;

/// The sweep-style fixture (mirrors `tests/schedule_registry.rs`):
/// four stages, eight micro-batches — enough pipeline depth for the
/// schedules to separate.
fn fixture(schedule: ScheduleKind) -> SimConfig {
    SimConfig {
        model: ModelConfig::custom("sched-bench", 8, 256, 1024, 4, 64),
        parallelism: Parallelism::new(1, PP, 1).unwrap(),
        batch: BatchConfig {
            seq_len: 128,
            microbatch_size: 1,
            num_microbatches: MICROBATCHES,
        },
        schedule,
    }
}

fn smoke() -> bool {
    std::env::var_os("SCHEDULE_BENCH_SMOKE").is_some()
}

/// One schedule's deterministic outcomes on the fixture.
struct Row {
    name: &'static str,
    wire: &'static str,
    /// Zero-jitter engine-simulated iteration makespan.
    makespan_ns: u64,
    /// Non-compute/non-comm share of the simulated iteration (host
    /// gaps + pipeline bubbles).
    bubble_share: f64,
    /// The schedule's own analytic bubble model at (PP, MICROBATCHES).
    analytic_bubble: f64,
}

/// Lowers, statically verifies, and engine-simulates every registered
/// schedule; deterministic per construction (zero jitter).
fn rows() -> Vec<Row> {
    registry::all()
        .into_iter()
        .map(|schedule| {
            let setup = fixture(schedule);
            verify(&lower(&setup).unwrap()).unwrap_or_else(|e| {
                panic!(
                    "schedule {} failed static verification: {e}",
                    schedule.name()
                )
            });
            let out = GroundTruthCluster::new(&setup, AnalyticalCostModel::h100())
                .unwrap()
                .profile_iteration(0)
                .unwrap();
            let b = out.trace.breakdown();
            Row {
                name: schedule.name(),
                wire: schedule.wire_name(),
                makespan_ns: out.makespan.as_ns(),
                bubble_share: b.other.as_secs_f64() / b.total().as_secs_f64(),
                analytic_bubble: schedule.analytic_bubble(PP, MICROBATCHES),
            }
        })
        .collect()
}

/// Criterion view: the full native pipeline (lower + prepare +
/// simulate) per registered schedule.
fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("compare_schedules");
    group.sample_size(if smoke() { 10 } else { 20 });
    for schedule in registry::all() {
        let setup = fixture(schedule);
        group.bench_with_input(
            BenchmarkId::from_parameter(schedule.name()),
            &setup,
            |b, setup| {
                b.iter(|| {
                    GroundTruthCluster::new(setup, AnalyticalCostModel::h100())
                        .unwrap()
                        .profile_iteration(0)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(schedule_benches, bench_schedules);

/// Renders one row's deterministic JSON body (floats pinned to six
/// decimals so the committed trajectory diffs bytewise).
fn row_json(r: &Row) -> String {
    format!(
        "{{ \"name\": \"{}\", \"wire\": \"{}\", \"makespan_ns\": {}, \
         \"bubble_share\": {:.6}, \"analytic_bubble\": {:.6} }}",
        r.name, r.wire, r.makespan_ns, r.bubble_share, r.analytic_bubble
    )
}

/// Diffs the freshly computed rows against the committed snapshot's
/// `schedules` array; returns human-readable drift lines.
fn diff_against(committed: &str, rows: &[Row], interleaved: f64) -> Vec<String> {
    let doc: serde_json::Value = match serde_json::from_str(committed) {
        Ok(doc) => doc,
        Err(e) => return vec![format!("committed snapshot is not valid JSON: {e}")],
    };
    let mut drift = Vec::new();
    let empty = Vec::new();
    let old_rows = doc
        .get("schedules")
        .and_then(|v| v.as_array())
        .unwrap_or(&empty);
    for r in rows {
        let Some(old) = old_rows
            .iter()
            .find(|o| o.get("name").and_then(|n| n.as_str()) == Some(r.name))
        else {
            drift.push(format!(
                "schedule `{}` missing from committed snapshot",
                r.name
            ));
            continue;
        };
        let old_makespan = old.get("makespan_ns").and_then(|v| v.as_u64());
        if old_makespan != Some(r.makespan_ns) {
            drift.push(format!(
                "schedule `{}`: makespan_ns {} != committed {:?}",
                r.name, r.makespan_ns, old_makespan
            ));
        }
        for (field, new) in [
            ("bubble_share", r.bubble_share),
            ("analytic_bubble", r.analytic_bubble),
        ] {
            let old_val = old.get(field).and_then(|v| v.as_f64());
            if old_val.map(|v| format!("{v:.6}")) != Some(format!("{new:.6}")) {
                drift.push(format!(
                    "schedule `{}`: {field} {new:.6} != committed {old_val:?}",
                    r.name
                ));
            }
        }
    }
    let old_interleaved = doc
        .get("interleaved_1f1b_v2_analytic_bubble")
        .and_then(|v| v.as_f64());
    if old_interleaved.map(|v| format!("{v:.6}")) != Some(format!("{interleaved:.6}")) {
        drift.push(format!(
            "interleaved_1f1b_v2_analytic_bubble {interleaved:.6} != committed {old_interleaved:?}"
        ));
    }
    drift
}

/// Machine-readable snapshot plus the drift and zero-bubble gates.
fn emit_snapshot() {
    let rows = rows();
    // The interleaved trajectory: the registry still prices v=2
    // through the 1F1B object's virtual-stage adjustment hook.
    let interleaved = ScheduleKind::OneFOneB
        .engine_adjustment(PP, MICROBATCHES, 2)
        .map(|a| a.target_bubble)
        .expect("1f1b must carry the interleaved adjustment at v=2");

    let f1b = rows.iter().find(|r| r.name == "1f1b").expect("1f1b row");
    let zb = rows.iter().find(|r| r.name == "zb-h1").expect("zb-h1 row");
    let speedup = f1b.makespan_ns as f64 / zb.makespan_ns as f64;

    let body: Vec<String> = rows
        .iter()
        .map(|r| format!("    {}", row_json(r)))
        .collect();
    let json = format!(
        "{{\n  \"pr\": 7,\n  \"generated_by\": \"crates/bench/benches/compare_schedules.rs\",\n  \
         \"fixture\": {{\n    \"model\": \"sched-bench\",\n    \"layers\": 8,\n    \
         \"tp\": 1,\n    \"pp\": {PP},\n    \"dp\": 1,\n    \"microbatches\": {MICROBATCHES},\n    \
         \"seq_len\": 128,\n    \"world_size\": {PP}\n  }},\n  \
         \"smoke\": {},\n  \"schedules\": [\n{}\n  ],\n  \
         \"interleaved_1f1b_v2_analytic_bubble\": {interleaved:.6},\n  \
         \"zb_h1_speedup_vs_1f1b\": {speedup:.3}\n}}\n",
        smoke(),
        body.join(",\n")
    );

    let default_path = format!("{}/../../BENCH_PR7.json", env!("CARGO_MANIFEST_DIR"));
    let committed = std::fs::read_to_string(&default_path).ok();
    let out = std::env::var("BENCH_PR7_OUT").unwrap_or(default_path);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));

    println!("\n== BENCH_PR7 snapshot ({out}) ==");
    print!("{json}");

    if zb.makespan_ns >= f1b.makespan_ns {
        eprintln!(
            "FAIL: zb-h1 simulated makespan ({} ns) is not below 1f1b ({} ns)",
            zb.makespan_ns, f1b.makespan_ns
        );
        std::process::exit(2);
    }
    match committed {
        None => println!("no committed BENCH_PR7.json — skipping trajectory diff"),
        Some(text) => {
            let drift = diff_against(&text, &rows, interleaved);
            if drift.is_empty() {
                println!("trajectory diff clean: schedule numbers match the committed snapshot");
            } else {
                eprintln!("FAIL: schedule trajectory drifted from the committed BENCH_PR7.json:");
                for line in &drift {
                    eprintln!("  {line}");
                }
                std::process::exit(2);
            }
        }
    }
}

fn main() {
    schedule_benches();
    emit_snapshot();
}
