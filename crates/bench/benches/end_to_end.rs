//! End-to-end toolkit wall time: trace -> graph -> replay, validating
//! the paper's "a few seconds to several minutes" claim (§4).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lumos_cluster::{GroundTruthCluster, SimConfig};
use lumos_core::Lumos;
use lumos_cost::AnalyticalCostModel;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for (name, tp, pp, dp) in [("16gpu_15B_slice", 2, 2, 4), ("32gpu_15B_slice", 2, 2, 8)] {
        // An 8-layer slice of GPT-3 15B keeps bench time sane while
        // exercising realistic kernel populations.
        let cfg = SimConfig {
            model: ModelConfig::custom("15B-slice", 8, 6144, 12288, 48, 128),
            parallelism: Parallelism::new(tp, pp, dp).unwrap(),
            batch: BatchConfig {
                seq_len: 2048,
                microbatch_size: 1,
                num_microbatches: 2 * pp,
            },
            schedule: ScheduleKind::OneFOneB,
        };
        let trace = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100())
            .unwrap()
            .profile_iteration(0)
            .unwrap()
            .trace;
        group.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, t| {
            b.iter(|| Lumos::new().replay(t).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
