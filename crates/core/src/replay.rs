//! High-level replay API: trace in, simulated trace + metrics out.

use crate::build::{build_graph, BuildOptions};
use crate::error::CoreError;
use crate::graph::ExecutionGraph;
use crate::sim::{simulate, SimOptions, SimResult};
use lumos_trace::{Breakdown, BreakdownExt, ClusterTrace, Dur};

/// The Lumos toolkit façade: builds execution graphs from traces and
/// replays or predicts performance through simulation.
#[derive(Debug, Clone, Default)]
pub struct Lumos {
    /// Graph-construction options.
    pub build: BuildOptions,
    /// Simulation timing constants.
    pub sim: SimOptions,
}

impl Lumos {
    /// A toolkit with default options.
    pub fn new() -> Self {
        Lumos::default()
    }

    /// The dPRO baseline configuration: dataflow-recoverable fences
    /// only, and no synchronized execution of all-reduce collectives
    /// (see [`crate::sim::RendezvousMode::SendRecvOnly`]).
    pub fn dpro_baseline() -> Self {
        Lumos {
            build: BuildOptions::dpro_baseline(),
            sim: SimOptions {
                rendezvous: crate::sim::RendezvousMode::SendRecvOnly,
                ..SimOptions::default()
            },
        }
    }

    /// Builds the execution graph of a profiled trace (§3.3).
    ///
    /// # Errors
    ///
    /// Returns trace-validation and graph-consistency failures.
    pub fn build_graph(&self, trace: &ClusterTrace) -> Result<ExecutionGraph, CoreError> {
        build_graph(trace, &self.build)
    }

    /// Replays a profiled trace through simulation (§3.5), returning
    /// the graph, the schedule, and the simulated trace.
    ///
    /// # Errors
    ///
    /// Returns graph-construction or simulation failures.
    pub fn replay(&self, trace: &ClusterTrace) -> Result<Replayed, CoreError> {
        let graph = self.build_graph(trace)?;
        let result = simulate(&graph, &self.sim)?;
        let label = format!("replay of {}", trace.label);
        let simulated = result.to_trace(&graph, &label);
        Ok(Replayed {
            graph,
            result,
            trace: simulated,
        })
    }

    /// Replays a graph directly (used after manipulation).
    ///
    /// # Errors
    ///
    /// Returns simulation failures.
    pub fn replay_graph(&self, graph: ExecutionGraph, label: &str) -> Result<Replayed, CoreError> {
        let result = simulate(&graph, &self.sim)?;
        let simulated = result.to_trace(&graph, label);
        Ok(Replayed {
            graph,
            result,
            trace: simulated,
        })
    }
}

/// A completed replay.
#[derive(Debug, Clone)]
pub struct Replayed {
    /// The execution graph that was simulated.
    pub graph: ExecutionGraph,
    /// Per-task simulated times.
    pub result: SimResult,
    /// The simulated trace (same event vocabulary as the input).
    pub trace: ClusterTrace,
}

impl Replayed {
    /// Simulated end-to-end iteration time.
    pub fn makespan(&self) -> Dur {
        self.result.makespan()
    }

    /// Execution breakdown of the simulated trace (§4.2.2).
    pub fn breakdown(&self) -> Breakdown {
        self.trace.breakdown()
    }

    /// Relative replay error against a measured iteration time.
    pub fn error_vs(&self, actual: Dur) -> f64 {
        self.makespan().relative_error(actual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_trace::{CudaRuntimeKind, RankTrace, StreamId, ThreadId, TraceEvent, Ts};

    fn small_trace() -> ClusterTrace {
        let t1 = ThreadId(1);
        let mut r = RankTrace::new(0);
        r.push(TraceEvent::cpu_op("op", Ts(0), Dur(5_000), t1));
        r.push(
            TraceEvent::cuda_runtime(CudaRuntimeKind::LaunchKernel, Ts(5_000), Dur(2_000), t1)
                .with_correlation(1),
        );
        r.push(TraceEvent::kernel("k", Ts(9_000), Dur(50_000), StreamId(7)).with_correlation(1));
        let mut c = ClusterTrace::new("small");
        c.push_rank(r);
        c
    }

    #[test]
    fn replay_small_trace() {
        let lumos = Lumos::new();
        let replayed = lumos.replay(&small_trace()).unwrap();
        // op(5us) + launch(2us) + gap(2us) + kernel(50us) = 59us.
        assert_eq!(replayed.makespan(), Dur(59_000));
        assert_eq!(replayed.trace.total_events(), 3);
        assert!(replayed.trace.label.contains("small"));
    }

    #[test]
    fn error_vs_actual() {
        let lumos = Lumos::new();
        let replayed = lumos.replay(&small_trace()).unwrap();
        let err = replayed.error_vs(Dur(59_000));
        assert_eq!(err, 0.0);
        assert!((replayed.error_vs(Dur(118_000)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dpro_baseline_differs_in_build_options() {
        let d = Lumos::dpro_baseline();
        assert_ne!(d.build.interstream, crate::build::InterStreamMode::Full);
        assert_eq!(
            Lumos::new().build.interstream,
            crate::build::InterStreamMode::Full
        );
    }
}
