//! Tasks and processors: the node vocabulary of the execution graph.
//!
//! The paper's graph has exactly two task families (§3.3.1): CPU tasks
//! (framework operators and CUDA runtime events, placed on a host
//! thread) and GPU tasks (kernels, placed on a CUDA stream). Each task
//! records the metadata Lumos extracted from the trace: name, recorded
//! duration, original start time (used for deterministic scheduling
//! tie-breaks), correlation id, and the segment tag recovered from
//! user annotations.

use lumos_trace::{CudaRuntimeKind, Dur, KernelClass, RankId, StreamId, ThreadId, Ts};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Dense task index within an [`crate::ExecutionGraph`].
pub type TaskId = u32;

/// Dense processor index within an [`crate::ExecutionGraph`].
pub type ProcIdx = u32;

/// An execution resource: a host thread or a CUDA stream on a
/// specific rank (Algorithm 1's "task processors").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Processor {
    /// A host thread.
    Thread {
        /// Owning rank.
        rank: RankId,
        /// Thread id.
        tid: ThreadId,
    },
    /// A CUDA stream.
    Stream {
        /// Owning rank.
        rank: RankId,
        /// Stream id.
        stream: StreamId,
    },
}

impl Processor {
    /// The rank this processor belongs to.
    pub fn rank(&self) -> RankId {
        match *self {
            Processor::Thread { rank, .. } | Processor::Stream { rank, .. } => rank,
        }
    }

    /// Returns `true` for stream processors.
    pub fn is_stream(&self) -> bool {
        matches!(self, Processor::Stream { .. })
    }
}

impl fmt::Display for Processor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Processor::Thread { rank, tid } => write!(f, "{rank}/{tid}"),
            Processor::Stream { rank, stream } => write!(f, "{rank}/{stream}"),
        }
    }
}

/// What a task is (mirrors the trace event kinds, minus annotations,
/// which become tags rather than tasks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// A framework operator on a thread.
    CpuOp,
    /// A CUDA runtime call on a thread.
    Runtime(CudaRuntimeKind),
    /// A kernel on a stream.
    Kernel(KernelClass),
}

impl TaskKind {
    /// Returns `true` for GPU tasks.
    pub fn is_gpu(&self) -> bool {
        matches!(self, TaskKind::Kernel(_))
    }

    /// Returns `true` for host-blocking synchronization calls, whose
    /// dependencies Algorithm 1 resolves at runtime.
    pub fn is_blocking_sync(&self) -> bool {
        matches!(self, TaskKind::Runtime(k) if k.blocks_host())
    }

    /// The kernel class, for GPU tasks.
    pub fn kernel_class(&self) -> Option<&KernelClass> {
        match self {
            TaskKind::Kernel(c) => Some(c),
            _ => None,
        }
    }
}

/// The training phase a task belongs to, recovered from annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Forward pass.
    Forward,
    /// Backward pass.
    Backward,
    /// Data-parallel gradient reduction.
    DpGrads,
    /// Optimizer step.
    Optimizer,
    /// Anything else (transfers, untagged glue).
    Other,
}

/// Logical position of a task within the training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SegmentTag {
    /// Micro-batch index, when inside a micro-batch scope.
    pub mb: Option<u32>,
    /// Transformer layer index, when inside a layer scope.
    pub layer: Option<u32>,
    /// Embedding block marker.
    pub embed: bool,
    /// LM-head block marker.
    pub head: bool,
    /// Phase, when known.
    pub phase: Option<Phase>,
}

impl SegmentTag {
    /// Returns `true` when no information was recovered.
    pub fn is_empty(&self) -> bool {
        self.mb.is_none()
            && self.layer.is_none()
            && !self.embed
            && !self.head
            && self.phase.is_none()
    }
}

/// One node of the execution graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Task {
    /// Display name from the trace.
    pub name: Arc<str>,
    /// Task family and payload.
    pub kind: TaskKind,
    /// Processor index (into the graph's processor table).
    pub processor: ProcIdx,
    /// Recorded duration from the trace (replay durations; possibly
    /// re-costed by manipulation).
    pub duration: Dur,
    /// Recorded start time — used only for deterministic ordering,
    /// never copied into simulated output.
    pub orig_start: Ts,
    /// Correlation id linking launches and kernels (0 = none).
    pub correlation: u64,
    /// Segment tag from annotations.
    pub tag: SegmentTag,
}

impl Task {
    /// Recorded end time in the source trace.
    pub fn orig_end(&self) -> Ts {
        self.orig_start + self.duration
    }

    /// Returns `true` for communication kernels.
    pub fn is_comm_kernel(&self) -> bool {
        matches!(&self.kind, TaskKind::Kernel(c) if c.is_comm())
    }

    /// The collective metadata, for communication kernels.
    pub fn comm_meta(&self) -> Option<&lumos_trace::CommMeta> {
        self.kind.kernel_class().and_then(|c| c.comm_meta())
    }
}

/// The dependency classes of §3.3.2, used for graph statistics,
/// validation, and ablation (dPRO drops `InterStreamEvent`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// CPU→CPU within one thread (program order).
    IntraThread,
    /// CPU→CPU across threads (detected from execution gaps).
    InterThread,
    /// CPU→GPU launch (correlation id).
    KernelLaunch,
    /// GPU→GPU within one stream (FIFO order).
    IntraStream,
    /// GPU→GPU across streams (`cudaEventRecord` /
    /// `cudaStreamWaitEvent`).
    InterStreamEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_accessors() {
        let t = Processor::Thread {
            rank: RankId(2),
            tid: ThreadId(1),
        };
        let s = Processor::Stream {
            rank: RankId(2),
            stream: StreamId(7),
        };
        assert_eq!(t.rank(), RankId(2));
        assert!(!t.is_stream());
        assert!(s.is_stream());
        assert_eq!(t.to_string(), "rank2/tid1");
        assert_eq!(s.to_string(), "rank2/stream7");
    }

    #[test]
    fn task_kind_properties() {
        assert!(TaskKind::Kernel(KernelClass::Other).is_gpu());
        assert!(!TaskKind::CpuOp.is_gpu());
        assert!(TaskKind::Runtime(CudaRuntimeKind::DeviceSynchronize).is_blocking_sync());
        assert!(!TaskKind::Runtime(CudaRuntimeKind::LaunchKernel).is_blocking_sync());
    }

    #[test]
    fn empty_tag() {
        assert!(SegmentTag::default().is_empty());
        let tagged = SegmentTag {
            mb: Some(1),
            ..Default::default()
        };
        assert!(!tagged.is_empty());
    }
}
