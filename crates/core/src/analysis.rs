//! Post-replay analysis: critical paths, bottleneck kernels, and
//! overlap summaries — the "deeper analysis and downstream
//! optimization studies" the paper's fine-grained replay enables.

use crate::graph::ExecutionGraph;
use crate::sim::SimResult;
use crate::task::{TaskId, TaskKind};
use lumos_trace::{Dur, Ts};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;

/// One step of the critical path.
#[derive(Debug, Clone, Serialize)]
pub struct CriticalStep {
    /// Task id in the graph.
    pub task: TaskId,
    /// Task name.
    pub name: Arc<str>,
    /// Simulated duration.
    pub duration: Dur,
    /// Whether this step is a GPU kernel.
    pub is_gpu: bool,
    /// Whether this step is a communication kernel.
    pub is_comm: bool,
}

/// The longest start-to-finish dependency chain of a replay.
#[derive(Debug, Clone, Serialize)]
pub struct CriticalPath {
    /// Steps from the beginning of the iteration to its end.
    pub steps: Vec<CriticalStep>,
    /// Total time attributed to GPU compute kernels on the path.
    pub compute: Dur,
    /// Total time attributed to communication kernels on the path.
    pub comm: Dur,
    /// Total time attributed to host tasks on the path.
    pub host: Dur,
    /// Gaps on the path (waiting that no single task accounts for).
    pub idle: Dur,
}

impl CriticalPath {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` when the path is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Extracts the critical path of a simulated schedule: walk backwards
/// from the last-finishing task, at each step moving to the
/// predecessor (dependency or processor-order) that ends latest.
pub fn critical_path(graph: &ExecutionGraph, sim: &SimResult) -> CriticalPath {
    let n = graph.len();
    if n == 0 {
        return CriticalPath {
            steps: Vec::new(),
            compute: Dur::ZERO,
            comm: Dur::ZERO,
            host: Dur::ZERO,
            idle: Dur::ZERO,
        };
    }
    // Predecessor lists (dependency edges reversed), plus the runtime
    // dependencies the simulator resolved (sync -> kernel), so the
    // path can route through GPU work at blocking synchronizations.
    let mut preds: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for t in 0..n as u32 {
        for e in graph.successors(t) {
            preds[e.to as usize].push(t);
        }
    }
    for &(sync, kernel) in &sim.runtime_deps {
        preds[sync as usize].push(kernel);
    }
    // Processor-order predecessors: previous task (by simulated start)
    // on the same processor.
    let mut by_proc: HashMap<u32, Vec<TaskId>> = HashMap::new();
    for t in 0..n as u32 {
        by_proc.entry(graph.task(t).processor).or_default().push(t);
    }
    let mut proc_prev: Vec<Option<TaskId>> = vec![None; n];
    for list in by_proc.values_mut() {
        list.sort_by_key(|&t| (sim.starts[t as usize], t));
        for w in list.windows(2) {
            proc_prev[w[1] as usize] = Some(w[0]);
        }
    }

    let end_task = (0..n as u32)
        .max_by_key(|&t| (sim.ends[t as usize], t))
        .expect("non-empty graph");
    let mut rev = Vec::new();
    let mut cur = end_task;
    loop {
        rev.push(cur);
        let candidates = preds[cur as usize]
            .iter()
            .copied()
            .chain(proc_prev[cur as usize]);
        let best = candidates.max_by_key(|&p| (sim.ends[p as usize], p));
        match best {
            Some(p) => cur = p,
            None => break,
        }
    }
    rev.reverse();

    // Attribute wall time along the chain: each step owns the segment
    // between its predecessor's end and its own end (steps can overlap
    // their predecessor when a blocking sync spans the kernel it waits
    // on — only the non-overlapped tail is attributed), and positive
    // gaps between steps count as idle.
    let mut compute = Dur::ZERO;
    let mut comm = Dur::ZERO;
    let mut host = Dur::ZERO;
    let mut idle = Dur::ZERO;
    let origin = sim.starts.iter().copied().min().unwrap_or(Ts::ZERO);
    let mut prev_end = origin;
    let steps: Vec<CriticalStep> = rev
        .iter()
        .map(|&t| {
            let task = graph.task(t);
            let (start, end) = (sim.starts[t as usize], sim.ends[t as usize]);
            idle += start.saturating_since(prev_end);
            let seg_start = start.max(prev_end);
            let duration = end.saturating_since(seg_start);
            prev_end = prev_end.max(end);
            let (is_gpu, is_comm) = match &task.kind {
                TaskKind::Kernel(c) => (true, c.is_comm()),
                _ => (false, false),
            };
            if is_comm {
                comm += duration;
            } else if is_gpu {
                compute += duration;
            } else {
                host += duration;
            }
            CriticalStep {
                task: t,
                name: task.name.clone(),
                duration,
                is_gpu,
                is_comm,
            }
        })
        .collect();
    CriticalPath {
        steps,
        compute,
        comm,
        host,
        idle,
    }
}

/// Aggregate time per kernel name in a simulated schedule, descending
/// — "identifying which optimization would yield the greatest
/// performance improvement" (§5).
pub fn bottleneck_kernels(
    graph: &ExecutionGraph,
    sim: &SimResult,
    top: usize,
) -> Vec<(Arc<str>, Dur, u64)> {
    let mut acc: HashMap<Arc<str>, (Dur, u64)> = HashMap::new();
    for (i, task) in graph.tasks().iter().enumerate() {
        if !matches!(task.kind, TaskKind::Kernel(_)) {
            continue;
        }
        let d = sim.ends[i] - sim.starts[i];
        let e = acc.entry(task.name.clone()).or_insert((Dur::ZERO, 0));
        e.0 += d;
        e.1 += 1;
    }
    let mut v: Vec<(Arc<str>, Dur, u64)> = acc.into_iter().map(|(n, (d, c))| (n, d, c)).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(top);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, SimOptions};
    use crate::task::{DepKind, Processor, SegmentTag, Task};
    use lumos_trace::{KernelClass, RankId, StreamId, ThreadId, Ts};

    fn diamond_graph() -> ExecutionGraph {
        // a -> b (slow), a -> c (fast), b -> d, c -> d
        let mut g = ExecutionGraph::new();
        let th = g.processor_idx(Processor::Thread {
            rank: RankId(0),
            tid: ThreadId(1),
        });
        let s1 = g.processor_idx(Processor::Stream {
            rank: RankId(0),
            stream: StreamId(7),
        });
        let s2 = g.processor_idx(Processor::Stream {
            rank: RankId(0),
            stream: StreamId(13),
        });
        let mk = |g: &mut ExecutionGraph, name: &str, p, dur, kind| {
            g.add_task(Task {
                name: name.into(),
                kind,
                processor: p,
                duration: Dur(dur),
                orig_start: Ts(0),
                correlation: 0,
                tag: SegmentTag::default(),
            })
        };
        let a = mk(&mut g, "a", th, 10, TaskKind::CpuOp);
        let b = mk(&mut g, "b", s1, 100, TaskKind::Kernel(KernelClass::Other));
        let c = mk(&mut g, "c", s2, 20, TaskKind::Kernel(KernelClass::Other));
        let d = mk(&mut g, "d", th, 5, TaskKind::CpuOp);
        g.add_edge(a, b, DepKind::KernelLaunch);
        g.add_edge(a, c, DepKind::KernelLaunch);
        g.add_edge(b, d, DepKind::InterThread);
        g.add_edge(c, d, DepKind::InterThread);
        g
    }

    #[test]
    fn critical_path_takes_slow_branch() {
        let g = diamond_graph();
        let sim = simulate(
            &g,
            &SimOptions {
                launch_gap: Dur::ZERO,
                ..SimOptions::default()
            },
        )
        .unwrap();
        let cp = critical_path(&g, &sim);
        let names: Vec<&str> = cp.steps.iter().map(|s| &*s.name).collect();
        assert_eq!(names, vec!["a", "b", "d"]);
        assert_eq!(cp.compute, Dur(100));
        assert_eq!(cp.host, Dur(15));
        assert_eq!(cp.idle, Dur::ZERO);
        assert_eq!(cp.comm, Dur::ZERO);
    }

    #[test]
    fn bottlenecks_ranked_by_total_time() {
        let g = diamond_graph();
        let sim = simulate(&g, &SimOptions::default()).unwrap();
        let top = bottleneck_kernels(&g, &sim, 10);
        assert_eq!(top.len(), 2);
        assert_eq!(&*top[0].0, "b");
        assert_eq!(top[0].1, Dur(100));
        assert_eq!(top[0].2, 1);
        // Truncation works.
        assert_eq!(bottleneck_kernels(&g, &sim, 1).len(), 1);
    }

    #[test]
    fn empty_graph_empty_path() {
        let g = ExecutionGraph::new();
        let sim = simulate(&g, &SimOptions::default()).unwrap();
        let cp = critical_path(&g, &sim);
        assert!(cp.is_empty());
    }
}
