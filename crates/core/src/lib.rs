//! Lumos core: trace-driven performance modeling and estimation for
//! large-scale LLM training (MLSys 2025 reproduction).
//!
//! The pipeline mirrors the paper's workflow (Figure 2):
//!
//! 1. **Graph construction** ([`build_graph`]) — parse a Kineto-style
//!    [`lumos_trace::ClusterTrace`] into a task-level
//!    [`ExecutionGraph`] with the four dependency classes of §3.3.2
//!    (intra/inter-thread, kernel launch, intra-stream, event-based
//!    inter-stream) plus cross-rank collective instances;
//! 2. **Simulation** ([`simulate`], Algorithm 1) — replay the graph
//!    deterministically, resolving blocking synchronizations through
//!    *runtime* dependencies and coupling ranks through collective
//!    rendezvous;
//! 3. **Graph manipulation** ([`manipulate`]) — generate new graphs
//!    for what-if configurations: data-parallel scaling, pipeline
//!    re-staging, layer-count and hidden-size changes, and
//!    kernel-speedup studies (§3.4);
//! 4. **Analysis** ([`analysis`]) — critical paths, bottleneck
//!    kernels, and overlap reports on replayed schedules.
//!
//! The [`Lumos`] façade ties these together.
//!
//! # Example
//!
//! ```
//! use lumos_core::Lumos;
//! use lumos_trace::{ClusterTrace, RankTrace, TraceEvent, Ts, Dur, ThreadId, StreamId, CudaRuntimeKind};
//!
//! // A profiled trace (normally produced by PyTorch Kineto or the
//! // lumos-cluster ground-truth engine).
//! let mut rank0 = RankTrace::new(0);
//! rank0.push(TraceEvent::cpu_op("aten::mm", Ts(0), Dur(5_000), ThreadId(1)));
//! rank0.push(TraceEvent::cuda_runtime(CudaRuntimeKind::LaunchKernel, Ts(5_000), Dur(2_000), ThreadId(1)).with_correlation(1));
//! rank0.push(TraceEvent::kernel("gemm", Ts(9_000), Dur(100_000), StreamId(7)).with_correlation(1));
//! let mut trace = ClusterTrace::new("example");
//! trace.push_rank(rank0);
//!
//! let replayed = Lumos::new().replay(&trace)?;
//! assert!(replayed.makespan() > Dur(100_000));
//! # Ok::<(), lumos_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod build;
mod error;
mod graph;
pub mod manipulate;
mod replay;
mod segment;
mod sim;
mod task;

pub use build::{build_graph, BuildOptions, InterStreamMode};
pub use error::CoreError;
pub use graph::{Edge, ExecutionGraph, GraphStats};
pub use replay::{Lumos, Replayed};
pub use segment::{merge, parse_annotation, tag_host_events};
pub use sim::{simulate, RendezvousMode, SimOptions, SimResult};
pub use task::{DepKind, Phase, ProcIdx, Processor, SegmentTag, Task, TaskId, TaskKind};
