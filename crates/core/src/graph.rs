//! The execution graph: compact storage for tasks, typed dependency
//! edges, processors, and collective-instance membership.

use crate::error::CoreError;
use crate::task::{DepKind, ProcIdx, Processor, Task, TaskId};
use lumos_trace::{Dur, RankId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An edge with its dependency class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Destination task.
    pub to: TaskId,
    /// Dependency class.
    pub kind: DepKind,
}

/// Per-class edge counts, reported by [`ExecutionGraph::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Total tasks.
    pub tasks: usize,
    /// CPU→CPU same-thread edges.
    pub intra_thread: usize,
    /// CPU→CPU cross-thread edges.
    pub inter_thread: usize,
    /// CPU→GPU launch edges.
    pub kernel_launch: usize,
    /// GPU→GPU same-stream edges.
    pub intra_stream: usize,
    /// GPU→GPU cross-stream (event) edges.
    pub inter_stream: usize,
    /// Collective instances spanning ranks.
    pub collective_instances: usize,
}

impl GraphStats {
    /// Total edge count.
    pub fn total_edges(&self) -> usize {
        self.intra_thread
            + self.inter_thread
            + self.kernel_launch
            + self.intra_stream
            + self.inter_stream
    }
}

/// The task-level execution graph of §3.3.
///
/// Nodes are [`Task`]s placed on [`Processor`]s; fixed edges carry a
/// [`DepKind`]; blocking synchronization tasks additionally acquire
/// *runtime* dependencies during simulation (Algorithm 1). Collective
/// kernel instances are registered by `(group, seq)` so the simulator
/// can rendezvous them across ranks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExecutionGraph {
    tasks: Vec<Task>,
    processors: Vec<Processor>,
    #[serde(skip)]
    proc_index: HashMap<Processor, ProcIdx>,
    succ: Vec<Vec<Edge>>,
    pred_count: Vec<u32>,
    /// (group, seq) → member kernel tasks across ranks.
    collectives: HashMap<(u64, u32), Vec<TaskId>>,
    /// group → ranks observed issuing it (derived from the trace).
    groups: HashMap<u64, Vec<RankId>>,
    /// Kernels per stream processor, in enqueue (launch) order.
    stream_kernels: HashMap<ProcIdx, Vec<TaskId>>,
    /// Kernel → position within its stream's enqueue order.
    enqueue_seq: HashMap<TaskId, u32>,
    /// Kernel → launching runtime task.
    launch_of: HashMap<TaskId, TaskId>,
}

impl ExecutionGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        ExecutionGraph::default()
    }

    /// Interns a processor, returning its dense index.
    pub fn processor_idx(&mut self, p: Processor) -> ProcIdx {
        if let Some(&i) = self.proc_index.get(&p) {
            return i;
        }
        let i = self.processors.len() as ProcIdx;
        self.processors.push(p);
        self.proc_index.insert(p, i);
        i
    }

    /// Adds a task, returning its id.
    pub fn add_task(&mut self, task: Task) -> TaskId {
        let id = self.tasks.len() as TaskId;
        self.tasks.push(task);
        self.succ.push(Vec::new());
        self.pred_count.push(0);
        id
    }

    /// Adds a fixed dependency edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or the edge is a
    /// self-loop.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId, kind: DepKind) {
        assert!(
            (from as usize) < self.tasks.len() && (to as usize) < self.tasks.len(),
            "edge endpoint out of range"
        );
        assert_ne!(from, to, "self-loop on task {from}");
        self.succ[from as usize].push(Edge { to, kind });
        self.pred_count[to as usize] += 1;
    }

    /// Registers a kernel's stream-enqueue position and launching
    /// task.
    pub fn register_kernel(&mut self, kernel: TaskId, launch: TaskId) {
        let proc = self.tasks[kernel as usize].processor;
        let list = self.stream_kernels.entry(proc).or_default();
        self.enqueue_seq.insert(kernel, list.len() as u32);
        list.push(kernel);
        self.launch_of.insert(kernel, launch);
    }

    /// Registers a collective member kernel.
    pub fn register_collective(&mut self, group: u64, seq: u32, member: TaskId, rank: RankId) {
        self.collectives
            .entry((group, seq))
            .or_default()
            .push(member);
        let ranks = self.groups.entry(group).or_default();
        if !ranks.contains(&rank) {
            ranks.push(rank);
        }
    }

    /// All tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Mutable access to tasks (what-if transforms re-cost durations).
    pub fn tasks_mut(&mut self) -> &mut [Task] {
        &mut self.tasks
    }

    /// A task by id.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id as usize]
    }

    /// All processors.
    pub fn processors(&self) -> &[Processor] {
        &self.processors
    }

    /// A processor by index.
    pub fn processor(&self, idx: ProcIdx) -> Processor {
        self.processors[idx as usize]
    }

    /// Successor edges of a task.
    pub fn successors(&self, id: TaskId) -> &[Edge] {
        &self.succ[id as usize]
    }

    /// Fixed-predecessor count of a task.
    pub fn pred_count(&self, id: TaskId) -> u32 {
        self.pred_count[id as usize]
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Collective instance map.
    pub fn collectives(&self) -> &HashMap<(u64, u32), Vec<TaskId>> {
        &self.collectives
    }

    /// Member ranks of a communicator, as observed in the trace.
    pub fn group_ranks(&self, group: u64) -> Option<&[RankId]> {
        self.groups.get(&group).map(Vec::as_slice)
    }

    /// Communicator ids observed in the trace.
    pub fn groups(&self) -> impl Iterator<Item = (u64, &[RankId])> {
        self.groups.iter().map(|(g, r)| (*g, r.as_slice()))
    }

    /// Kernels of a stream processor in enqueue order.
    pub fn stream_kernels(&self, proc: ProcIdx) -> &[TaskId] {
        self.stream_kernels
            .get(&proc)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// A kernel's position in its stream's enqueue order.
    pub fn enqueue_seq(&self, kernel: TaskId) -> Option<u32> {
        self.enqueue_seq.get(&kernel).copied()
    }

    /// The runtime task that launched a kernel.
    pub fn launch_of(&self, kernel: TaskId) -> Option<TaskId> {
        self.launch_of.get(&kernel).copied()
    }

    /// Total recorded duration of all tasks (work, not makespan).
    pub fn total_work(&self) -> Dur {
        self.tasks.iter().map(|t| t.duration).sum()
    }

    /// Edge and node statistics.
    pub fn stats(&self) -> GraphStats {
        let mut s = GraphStats {
            tasks: self.tasks.len(),
            collective_instances: self.collectives.len(),
            ..GraphStats::default()
        };
        for edges in &self.succ {
            for e in edges {
                match e.kind {
                    DepKind::IntraThread => s.intra_thread += 1,
                    DepKind::InterThread => s.inter_thread += 1,
                    DepKind::KernelLaunch => s.kernel_launch += 1,
                    DepKind::IntraStream => s.intra_stream += 1,
                    DepKind::InterStreamEvent => s.inter_stream += 1,
                }
            }
        }
        s
    }

    /// Validates that the fixed-dependency graph is acyclic (Kahn's
    /// algorithm) and that collective instances have consistent
    /// member counts per group.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CyclicGraph`] or
    /// [`CoreError::InconsistentCollective`].
    pub fn validate(&self) -> Result<(), CoreError> {
        let mut remaining: Vec<u32> = self.pred_count.clone();
        let mut queue: Vec<TaskId> = remaining
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(i, _)| i as TaskId)
            .collect();
        let mut visited = 0usize;
        while let Some(t) = queue.pop() {
            visited += 1;
            for e in &self.succ[t as usize] {
                let c = &mut remaining[e.to as usize];
                *c -= 1;
                if *c == 0 {
                    queue.push(e.to);
                }
            }
        }
        if visited != self.tasks.len() {
            return Err(CoreError::CyclicGraph {
                stuck: self.tasks.len() - visited,
            });
        }
        for ((group, seq), members) in &self.collectives {
            let expected = self.groups.get(group).map_or(0, Vec::len);
            if members.len() != expected {
                return Err(CoreError::InconsistentCollective {
                    group: *group,
                    seq: *seq,
                    members: members.len(),
                    expected,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{SegmentTag, TaskKind};
    use lumos_trace::{KernelClass, StreamId, ThreadId, Ts};

    fn mk_task(g: &mut ExecutionGraph, proc: Processor, kind: TaskKind) -> TaskId {
        let p = g.processor_idx(proc);
        g.add_task(Task {
            name: "t".into(),
            kind,
            processor: p,
            duration: Dur(10),
            orig_start: Ts(0),
            correlation: 0,
            tag: SegmentTag::default(),
        })
    }

    fn thread_proc() -> Processor {
        Processor::Thread {
            rank: RankId(0),
            tid: ThreadId(1),
        }
    }

    fn stream_proc() -> Processor {
        Processor::Stream {
            rank: RankId(0),
            stream: StreamId(7),
        }
    }

    #[test]
    fn processor_interning_dedups() {
        let mut g = ExecutionGraph::new();
        let a = g.processor_idx(thread_proc());
        let b = g.processor_idx(thread_proc());
        let c = g.processor_idx(stream_proc());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(g.processors().len(), 2);
    }

    #[test]
    fn edges_update_pred_counts() {
        let mut g = ExecutionGraph::new();
        let a = mk_task(&mut g, thread_proc(), TaskKind::CpuOp);
        let b = mk_task(&mut g, thread_proc(), TaskKind::CpuOp);
        g.add_edge(a, b, DepKind::IntraThread);
        assert_eq!(g.pred_count(b), 1);
        assert_eq!(g.pred_count(a), 0);
        assert_eq!(
            g.successors(a),
            &[Edge {
                to: b,
                kind: DepKind::IntraThread
            }]
        );
        assert_eq!(g.stats().intra_thread, 1);
        g.validate().unwrap();
    }

    #[test]
    fn cycle_detected() {
        let mut g = ExecutionGraph::new();
        let a = mk_task(&mut g, thread_proc(), TaskKind::CpuOp);
        let b = mk_task(&mut g, thread_proc(), TaskKind::CpuOp);
        g.add_edge(a, b, DepKind::IntraThread);
        g.add_edge(b, a, DepKind::InterThread);
        assert!(matches!(
            g.validate(),
            Err(CoreError::CyclicGraph { stuck: 2 })
        ));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = ExecutionGraph::new();
        let a = mk_task(&mut g, thread_proc(), TaskKind::CpuOp);
        g.add_edge(a, a, DepKind::IntraThread);
    }

    #[test]
    fn stream_enqueue_registration() {
        let mut g = ExecutionGraph::new();
        let l1 = mk_task(
            &mut g,
            thread_proc(),
            TaskKind::Runtime(lumos_trace::CudaRuntimeKind::LaunchKernel),
        );
        let k1 = mk_task(&mut g, stream_proc(), TaskKind::Kernel(KernelClass::Other));
        let k2 = mk_task(&mut g, stream_proc(), TaskKind::Kernel(KernelClass::Other));
        g.register_kernel(k1, l1);
        g.register_kernel(k2, l1);
        let proc = g.task(k1).processor;
        assert_eq!(g.stream_kernels(proc), &[k1, k2]);
        assert_eq!(g.enqueue_seq(k2), Some(1));
        assert_eq!(g.launch_of(k1), Some(l1));
    }

    #[test]
    fn inconsistent_collective_detected() {
        let mut g = ExecutionGraph::new();
        let k = mk_task(&mut g, stream_proc(), TaskKind::Kernel(KernelClass::Other));
        g.register_collective(5, 0, k, RankId(0));
        // Another rank issues seq 1 on the same group but nobody
        // matches seq 0 there… simulate by registering group member
        // rank without the matching instance member.
        let k2 = mk_task(&mut g, stream_proc(), TaskKind::Kernel(KernelClass::Other));
        g.register_collective(5, 1, k2, RankId(1));
        let err = g.validate().unwrap_err();
        assert!(matches!(err, CoreError::InconsistentCollective { .. }));
    }

    #[test]
    fn total_work_sums_durations() {
        let mut g = ExecutionGraph::new();
        mk_task(&mut g, thread_proc(), TaskKind::CpuOp);
        mk_task(&mut g, thread_proc(), TaskKind::CpuOp);
        assert_eq!(g.total_work(), Dur(20));
    }
}
