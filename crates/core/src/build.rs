//! Execution-graph construction from profiled traces (§3.3).
//!
//! Implements the paper's four dependency classes:
//!
//! * **CPU→CPU**: consecutive host tasks on one thread chain
//!   sequentially; cross-thread dependencies are detected from
//!   *significant execution gaps* — a host task that starts after an
//!   idle gap on its own thread is linked to the latest-finishing task
//!   on a sibling thread (the fwd→bwd handoff pattern);
//! * **CPU→GPU**: `cudaLaunchKernel`-style calls link to their kernel
//!   through the shared correlation id;
//! * **GPU→CPU**: blocking synchronization calls get *runtime*
//!   dependencies — the builder marks them, the simulator resolves
//!   them against the live last-enqueued kernel (Algorithm 1);
//! * **GPU→GPU**: kernels on one stream chain in enqueue (launch)
//!   order; `cudaEventRecord`/`cudaStreamWaitEvent` pairs become
//!   cross-stream edges from the last kernel enqueued before the
//!   record to the first kernel enqueued after the wait.
//!
//! Collective kernels are additionally registered by
//! `(communicator, sequence)` so the simulator can rendezvous the
//! instance across ranks — membership is derived purely from the
//! trace.

use crate::error::CoreError;
use crate::graph::ExecutionGraph;
use crate::segment::tag_host_events;
use crate::task::{DepKind, Processor, SegmentTag, Task, TaskId, TaskKind};
use lumos_trace::{
    ClusterTrace, CudaRuntimeKind, Dur, EventKind, RankTrace, StreamId, ThreadId, Ts,
};
use std::collections::HashMap;

/// How much of the event-based inter-stream dependency structure the
/// builder models — the axis separating Lumos from the dPRO baseline
/// (§4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterStreamMode {
    /// All `cudaEventRecord`/`cudaStreamWaitEvent` edges (Lumos).
    Full,
    /// Keep fences whose *source* is a communication kernel
    /// (collective → compute consumer edges — recoverable from tensor
    /// dataflow) but drop fences *into* communication streams.
    /// A dataflow-level tool like dPRO sees that computation consumes
    /// a collective's output, but not that the collective itself
    /// queues behind stream fences.
    ConsumerOnly,
    /// Keep fences *into* communication streams (producers gate
    /// collectives correctly) but drop collective → compute consumer
    /// fences: downstream computation no longer waits for collectives,
    /// so communication appears free to overlap.
    ProducerOnly,
    /// Drop producer fences into collectives that were launched from
    /// the autograd (backward) thread. Megatron issues backward
    /// tensor-parallel all-reduces and DDP gradient buckets from
    /// autograd *hooks*; an operator-level dataflow reconstruction
    /// (dPRO's method) sees the hooks' outputs being consumed but not
    /// what produced their inputs, so those collectives float free of
    /// their producers and overlap optimistically.
    DataflowOnly,
    /// Drop every event-based inter-stream edge.
    None,
}

impl InterStreamMode {
    fn keeps(
        self,
        source_is_comm: bool,
        target_is_comm: bool,
        target_launched_by_hook: bool,
    ) -> bool {
        match self {
            InterStreamMode::Full => true,
            // Keep collective→compute consumer fences and neutral
            // compute→compute edges; drop fences into collectives.
            InterStreamMode::ConsumerOnly => source_is_comm || !target_is_comm,
            // Keep compute→collective producer fences and neutral
            // edges; drop consumer fences out of collectives.
            InterStreamMode::ProducerOnly => target_is_comm || !source_is_comm,
            // Drop producer fences into hook-launched collectives.
            InterStreamMode::DataflowOnly => !(target_is_comm && target_launched_by_hook),
            InterStreamMode::None => false,
        }
    }
}

/// Options controlling graph construction.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Minimum idle gap on a thread that triggers cross-thread
    /// dependency detection.
    pub interthread_gap: Dur,
    /// Event-based inter-stream dependency coverage.
    pub interstream: InterStreamMode,
    /// Validate the input trace before building (correlation
    /// integrity, per-stream FIFO).
    pub validate_input: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            interthread_gap: Dur::from_us(20),
            interstream: InterStreamMode::Full,
            validate_input: true,
        }
    }
}

impl BuildOptions {
    /// The dPRO baseline configuration: dataflow-recoverable consumer
    /// edges only.
    pub fn dpro_baseline() -> Self {
        BuildOptions {
            interstream: InterStreamMode::DataflowOnly,
            ..BuildOptions::default()
        }
    }
}

/// Builds the execution graph of a cluster trace.
///
/// # Errors
///
/// Returns trace-validation failures, cycle detection failures, and
/// inconsistent collective instances.
pub fn build_graph(trace: &ClusterTrace, opts: &BuildOptions) -> Result<ExecutionGraph, CoreError> {
    if opts.validate_input {
        trace.validate()?;
    }
    let mut graph = ExecutionGraph::new();
    for rank_trace in trace.ranks() {
        build_rank(&mut graph, rank_trace, opts);
    }
    graph.validate()?;
    Ok(graph)
}

fn build_rank(graph: &mut ExecutionGraph, trace: &RankTrace, opts: &BuildOptions) {
    let rank = trace.rank();
    let tags = tag_host_events(trace);

    // --- Create host tasks (per thread, in time order). ---
    let mut host_by_thread: HashMap<ThreadId, Vec<(usize, TaskId)>> = HashMap::new();
    // Correlation -> launch task (for this rank).
    let mut launch_by_corr: HashMap<u64, TaskId> = HashMap::new();
    // Correlation -> launch timestamp (enqueue order key).
    let mut launch_ts_by_corr: HashMap<u64, Ts> = HashMap::new();
    let mut host_indices: Vec<usize> = trace
        .events()
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            matches!(
                e.kind,
                EventKind::CpuOp { .. } | EventKind::CudaRuntime { .. }
            )
        })
        .map(|(i, _)| i)
        .collect();
    host_indices.sort_by_key(|&i| trace.events()[i].ts);

    for &i in &host_indices {
        let e = &trace.events()[i];
        let (tid, kind, corr) = match e.kind {
            EventKind::CpuOp { tid } => (tid, TaskKind::CpuOp, 0),
            EventKind::CudaRuntime {
                tid,
                kind,
                correlation,
            } => (tid, TaskKind::Runtime(kind), correlation),
            _ => unreachable!("host_indices holds host events only"),
        };
        let proc = graph.processor_idx(Processor::Thread { rank, tid });
        let id = graph.add_task(Task {
            name: e.name.clone(),
            kind,
            processor: proc,
            duration: e.dur,
            orig_start: e.ts,
            correlation: corr,
            tag: tags.get(&i).copied().unwrap_or_default(),
        });
        host_by_thread.entry(tid).or_default().push((i, id));
        if let TaskKind::Runtime(k) = kind {
            if k.launches_work() && corr != 0 {
                launch_by_corr.insert(corr, id);
                launch_ts_by_corr.insert(corr, e.ts);
            }
        }
    }

    // --- Intra-thread chains. ---
    for tasks in host_by_thread.values() {
        for w in tasks.windows(2) {
            graph.add_edge(w[0].1, w[1].1, DepKind::IntraThread);
        }
    }

    // --- Inter-thread dependencies from significant gaps. ---
    // Per-thread (end, task) lists sorted by end for binary search.
    let mut ends_by_thread: HashMap<ThreadId, Vec<(Ts, TaskId)>> = HashMap::new();
    for (&tid, tasks) in &host_by_thread {
        let mut v: Vec<(Ts, TaskId)> = tasks
            .iter()
            .map(|&(i, id)| (trace.events()[i].end(), id))
            .collect();
        v.sort();
        ends_by_thread.insert(tid, v);
    }
    for (&tid, tasks) in &host_by_thread {
        let mut prev_end: Option<Ts> = None;
        for &(i, id) in tasks {
            let e = &trace.events()[i];
            let gap_start = prev_end.unwrap_or(Ts::ZERO);
            let significant = match prev_end {
                Some(pe) => e.ts.saturating_since(pe) >= opts.interthread_gap,
                // First task on a thread that starts late: the thread
                // was waiting on someone.
                None => e.ts.saturating_since(Ts::ZERO) >= opts.interthread_gap,
            };
            prev_end = Some(e.end());
            if !significant {
                continue;
            }
            // Latest-finishing task on any *other* thread with
            // end <= start; it must end inside the gap to explain it.
            let mut best: Option<(Ts, TaskId)> = None;
            for (&other_tid, ends) in &ends_by_thread {
                if other_tid == tid {
                    continue;
                }
                let pos = ends.partition_point(|&(end, _)| end <= e.ts);
                if pos > 0 {
                    let cand = ends[pos - 1];
                    if cand.0 > gap_start && best.is_none_or(|b| cand > b) {
                        best = Some(cand);
                    }
                }
            }
            if let Some((_, src)) = best {
                graph.add_edge(src, id, DepKind::InterThread);
            }
        }
    }

    // --- Kernel tasks, launch edges, intra-stream chains. ---
    // Kernels per stream in enqueue (launch-timestamp) order.
    let mut kernels_by_stream: HashMap<StreamId, Vec<(Ts, usize)>> = HashMap::new();
    for (i, e) in trace.events().iter().enumerate() {
        if let EventKind::Kernel {
            stream,
            correlation,
            ..
        } = e.kind
        {
            let launch_ts = launch_ts_by_corr.get(&correlation).copied().unwrap_or(e.ts);
            kernels_by_stream
                .entry(stream)
                .or_default()
                .push((launch_ts, i));
        }
    }
    // (stream -> (launch_ts, kernel task)) for event-edge lookups.
    let mut stream_kernel_tasks: HashMap<StreamId, Vec<(Ts, TaskId)>> = HashMap::new();
    for (stream, list) in &mut kernels_by_stream {
        list.sort();
        let proc = graph.processor_idx(Processor::Stream {
            rank,
            stream: *stream,
        });
        let mut prev: Option<TaskId> = None;
        let mut with_tasks = Vec::with_capacity(list.len());
        for &(launch_ts, i) in list.iter() {
            let e = &trace.events()[i];
            let EventKind::Kernel {
                correlation, class, ..
            } = e.kind
            else {
                unreachable!()
            };
            let launch = launch_by_corr.get(&correlation).copied();
            let tag = launch
                .map(|l| graph.task(l).tag)
                .unwrap_or_else(SegmentTag::default);
            let id = graph.add_task(Task {
                name: e.name.clone(),
                kind: TaskKind::Kernel(class),
                processor: proc,
                duration: e.dur,
                orig_start: e.ts,
                correlation,
                tag,
            });
            if let Some(l) = launch {
                graph.add_edge(l, id, DepKind::KernelLaunch);
                graph.register_kernel(id, l);
            }
            if let Some(p) = prev {
                graph.add_edge(p, id, DepKind::IntraStream);
            }
            prev = Some(id);
            if let lumos_trace::KernelClass::Collective(meta) = class {
                graph.register_collective(meta.group, meta.seq, id, rank);
            }
            with_tasks.push((launch_ts, id));
        }
        stream_kernel_tasks.insert(*stream, with_tasks);
    }

    // --- Inter-stream event edges. ---
    // The rank's main thread is the one dispatching the earliest host
    // event; other threads are autograd/hook threads.
    let main_thread: Option<ThreadId> = host_indices
        .first()
        .and_then(|&i| trace.events()[i].kind.tid());
    if opts.interstream != InterStreamMode::None {
        // event id -> (record host ts, recorded stream)
        let mut records: HashMap<u64, (Ts, StreamId)> = HashMap::new();
        for &i in &host_indices {
            let e = &trace.events()[i];
            if let EventKind::CudaRuntime {
                kind: CudaRuntimeKind::EventRecord { event, stream },
                ..
            } = e.kind
            {
                records.insert(event, (e.ts, stream));
            }
        }
        for &i in &host_indices {
            let e = &trace.events()[i];
            let EventKind::CudaRuntime {
                kind: CudaRuntimeKind::StreamWaitEvent { stream, event },
                ..
            } = e.kind
            else {
                continue;
            };
            let Some(&(record_ts, record_stream)) = records.get(&event) else {
                continue;
            };
            // Source: last kernel enqueued on the recorded stream
            // before the record call.
            let source = stream_kernel_tasks.get(&record_stream).and_then(|ks| {
                let pos = ks.partition_point(|&(lts, _)| lts <= record_ts);
                (pos > 0).then(|| ks[pos - 1].1)
            });
            // Target: first kernel enqueued on the waiting stream
            // after the wait call.
            let target = stream_kernel_tasks.get(&stream).and_then(|ks| {
                let pos = ks.partition_point(|&(lts, _)| lts < e.ts);
                ks.get(pos).map(|&(_, id)| id)
            });
            if let (Some(s), Some(t)) = (source, target) {
                let source_is_comm = graph.task(s).is_comm_kernel();
                let target_is_comm = graph.task(t).is_comm_kernel();
                // "Hook-launched": enqueued from a thread other than
                // the rank's main thread (the autograd thread).
                let target_hooked = graph
                    .launch_of(t)
                    .map(|l| {
                        !matches!(
                            graph.processor(graph.task(l).processor),
                            Processor::Thread { tid, .. } if Some(tid) == main_thread
                        )
                    })
                    .unwrap_or(false);
                if s != t
                    && opts
                        .interstream
                        .keeps(source_is_comm, target_is_comm, target_hooked)
                {
                    graph.add_edge(s, t, DepKind::InterStreamEvent);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_trace::{KernelClass, TraceEvent};

    /// Builds a minimal single-rank trace exercising every dependency
    /// class:
    ///
    /// * thread 1: op A, launch k1 (compute), record e1 on compute,
    ///   wait e1 on comm, launch k2 (comm), streamSync(comm)
    /// * thread 2: op B starting after a long gap (handoff from
    ///   thread 1)
    fn sample_trace() -> ClusterTrace {
        let t1 = ThreadId(1);
        let t2 = ThreadId(2);
        let comp = StreamId(7);
        let comm = StreamId(13);
        let mut r = RankTrace::new(0);
        let us = |x: u64| Ts::from_us(x);
        r.push(TraceEvent::cpu_op("opA", us(0), Dur::from_us(5), t1));
        r.push(
            TraceEvent::cuda_runtime(CudaRuntimeKind::LaunchKernel, us(5), Dur::from_us(2), t1)
                .with_correlation(1),
        );
        r.push(TraceEvent::cuda_runtime(
            CudaRuntimeKind::EventRecord {
                event: 11,
                stream: comp,
            },
            us(7),
            Dur::from_us(1),
            t1,
        ));
        r.push(TraceEvent::cuda_runtime(
            CudaRuntimeKind::StreamWaitEvent {
                stream: comm,
                event: 11,
            },
            us(8),
            Dur::from_us(1),
            t1,
        ));
        r.push(
            TraceEvent::cuda_runtime(CudaRuntimeKind::LaunchKernel, us(9), Dur::from_us(2), t1)
                .with_correlation(2),
        );
        r.push(TraceEvent::cuda_runtime(
            CudaRuntimeKind::StreamSynchronize { stream: comm },
            us(11),
            Dur::from_us(120),
            t1,
        ));
        // GPU side.
        r.push(TraceEvent::kernel("k1", us(20), Dur::from_us(50), comp).with_correlation(1));
        r.push(TraceEvent::kernel("k2", us(75), Dur::from_us(40), comm).with_correlation(2));
        // Thread 2 wakes up long after thread 1 finished its ops.
        r.push(TraceEvent::cpu_op("opB", us(131), Dur::from_us(5), t2));
        let mut c = ClusterTrace::new("sample");
        c.push_rank(r);
        c
    }

    #[test]
    fn builds_all_dependency_classes() {
        let g = build_graph(&sample_trace(), &BuildOptions::default()).unwrap();
        let s = g.stats();
        assert_eq!(s.tasks, 9);
        assert_eq!(s.intra_thread, 5); // 6 host tasks on t1 chained
        assert_eq!(s.kernel_launch, 2);
        assert_eq!(s.inter_stream, 1); // k1 -> k2 via e11
        assert_eq!(s.inter_thread, 1); // t1 tail -> opB
        assert_eq!(s.intra_stream, 0); // one kernel per stream
    }

    #[test]
    fn interstream_edge_links_kernels() {
        let g = build_graph(&sample_trace(), &BuildOptions::default()).unwrap();
        // Find the edge k1 -> k2.
        let k1 = g.tasks().iter().position(|t| &*t.name == "k1").unwrap() as TaskId;
        let k2 = g.tasks().iter().position(|t| &*t.name == "k2").unwrap() as TaskId;
        assert!(g
            .successors(k1)
            .iter()
            .any(|e| e.to == k2 && e.kind == DepKind::InterStreamEvent));
    }

    #[test]
    fn interstream_none_drops_all_event_edges() {
        let opts = BuildOptions {
            interstream: InterStreamMode::None,
            ..BuildOptions::default()
        };
        let g = build_graph(&sample_trace(), &opts).unwrap();
        assert_eq!(g.stats().inter_stream, 0);
        // Everything else is intact.
        assert_eq!(g.stats().kernel_launch, 2);
        assert_eq!(g.stats().inter_thread, 1);
    }

    #[test]
    fn dpro_mode_drops_hook_launched_producer_fences() {
        // Rebuild the sample with k2 classed as a collective and its
        // launch moved to the autograd thread (a hook launch): the
        // compute→collective producer fence must vanish in dPRO mode.
        let mut trace = sample_trace();
        for r in trace.ranks_mut() {
            for e in r.events_mut() {
                if &*e.name == "k2" {
                    *e = e
                        .clone()
                        .with_class(KernelClass::Collective(lumos_trace::CommMeta {
                            kind: lumos_trace::CollectiveKind::AllReduce,
                            group: 7,
                            seq: 0,
                            bytes: 64,
                        }));
                }
                // Retarget k2's launch (correlation 2) to thread 2.
                if let EventKind::CudaRuntime {
                    kind: k,
                    correlation: 2,
                    ..
                } = e.kind
                {
                    e.kind = EventKind::CudaRuntime {
                        tid: ThreadId(2),
                        kind: k,
                        correlation: 2,
                    };
                }
            }
        }
        let lumos = build_graph(&trace, &BuildOptions::default()).unwrap();
        assert_eq!(lumos.stats().inter_stream, 1);
        let dpro = build_graph(&trace, &BuildOptions::dpro_baseline()).unwrap();
        assert_eq!(dpro.stats().inter_stream, 0);
        // Main-thread-launched collectives keep their producer fence
        // even in dPRO mode (visible in the op-level dataflow).
        let mut main_launched = sample_trace();
        for r in main_launched.ranks_mut() {
            for e in r.events_mut() {
                if &*e.name == "k2" {
                    *e = e
                        .clone()
                        .with_class(KernelClass::Collective(lumos_trace::CommMeta {
                            kind: lumos_trace::CollectiveKind::AllReduce,
                            group: 7,
                            seq: 0,
                            bytes: 64,
                        }));
                }
            }
        }
        let dpro_main = build_graph(&main_launched, &BuildOptions::dpro_baseline()).unwrap();
        assert_eq!(dpro_main.stats().inter_stream, 1);
    }

    #[test]
    fn interthread_edge_targets_latest_source() {
        let g = build_graph(&sample_trace(), &BuildOptions::default()).unwrap();
        let op_b = g.tasks().iter().position(|t| &*t.name == "opB").unwrap() as TaskId;
        // Its inter-thread predecessor is the streamSync (latest t1
        // task ending at 131us).
        let pred = g
            .tasks()
            .iter()
            .enumerate()
            .find(|(_, t)| &*t.name == "cudaStreamSynchronize")
            .map(|(i, _)| i as TaskId)
            .unwrap();
        assert!(g
            .successors(pred)
            .iter()
            .any(|e| e.to == op_b && e.kind == DepKind::InterThread));
    }

    #[test]
    fn small_gaps_do_not_create_interthread_edges() {
        let opts = BuildOptions {
            interthread_gap: Dur::from_ms(10), // larger than any gap
            ..BuildOptions::default()
        };
        let g = build_graph(&sample_trace(), &opts).unwrap();
        assert_eq!(g.stats().inter_thread, 0);
    }

    #[test]
    fn collective_registration_from_trace() {
        let mut c = ClusterTrace::new("coll");
        for rank in 0..2u32 {
            let mut r = RankTrace::new(rank);
            r.push(
                TraceEvent::cuda_runtime(
                    CudaRuntimeKind::LaunchKernel,
                    Ts::from_us(0),
                    Dur::from_us(2),
                    ThreadId(1),
                )
                .with_correlation(1),
            );
            r.push(
                TraceEvent::kernel("ar", Ts::from_us(10), Dur::from_us(30), StreamId(13))
                    .with_correlation(1)
                    .with_class(KernelClass::Collective(lumos_trace::CommMeta {
                        kind: lumos_trace::CollectiveKind::AllReduce,
                        group: 42,
                        seq: 0,
                        bytes: 1024,
                    })),
            );
            c.push_rank(r);
        }
        let g = build_graph(&c, &BuildOptions::default()).unwrap();
        assert_eq!(g.stats().collective_instances, 1);
        assert_eq!(g.collectives()[&(42, 0)].len(), 2);
        assert_eq!(g.group_ranks(42).unwrap().len(), 2);
    }

    #[test]
    fn kernels_inherit_launch_tags() {
        let mut r = RankTrace::new(0);
        let tid = ThreadId(1);
        r.push(TraceEvent::annotation(
            "layer=3 fwd mb=1",
            Ts::from_us(0),
            Dur::from_us(100),
            tid,
        ));
        r.push(
            TraceEvent::cuda_runtime(
                CudaRuntimeKind::LaunchKernel,
                Ts::from_us(10),
                Dur::from_us(2),
                tid,
            )
            .with_correlation(1),
        );
        r.push(
            TraceEvent::kernel("k", Ts::from_us(200), Dur::from_us(10), StreamId(7))
                .with_correlation(1),
        );
        let mut c = ClusterTrace::new("tags");
        c.push_rank(r);
        let g = build_graph(&c, &BuildOptions::default()).unwrap();
        let kernel = g.tasks().iter().find(|t| &*t.name == "k").unwrap();
        assert_eq!(kernel.tag.layer, Some(3));
        assert_eq!(kernel.tag.mb, Some(1));
    }

    #[test]
    fn invalid_trace_rejected() {
        let mut r = RankTrace::new(0);
        // Orphan kernel (no launch).
        r.push(TraceEvent::kernel("k", Ts(0), Dur(1), StreamId(7)).with_correlation(5));
        let mut c = ClusterTrace::new("bad");
        c.push_rank(r);
        assert!(matches!(
            build_graph(&c, &BuildOptions::default()),
            Err(CoreError::Trace(_))
        ));
    }

    #[test]
    fn empty_trace_builds_empty_graph() {
        let c = ClusterTrace::new("empty");
        let g = build_graph(&c, &BuildOptions::default()).unwrap();
        assert!(g.is_empty());
    }
}
