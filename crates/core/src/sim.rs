//! The replay simulator — the paper's Algorithm 1.
//!
//! Tasks wait for their *fixed* dependencies (thread/stream chains,
//! launch edges, event-based inter-stream edges), then execute on
//! their processor, advancing its availability. Two behaviors go
//! beyond plain list scheduling:
//!
//! * **Runtime dependencies**: a blocking synchronization call must
//!   wait for "the last kernel on a specific stream, but which kernel
//!   will be last cannot be known prior to execution" (§3.5). When a
//!   sync task is picked, the simulator snapshots the live
//!   last-enqueued kernel of each target stream and defers the sync
//!   until those kernels complete.
//! * **Collective rendezvous**: kernels of one collective instance
//!   (same communicator and sequence) start simultaneously once every
//!   member rank has reached them — this cross-rank coupling is what
//!   produces exposed communication time.
//!
//! Ready tasks are ordered by original trace timestamp (ties by task
//! id), making replays bit-deterministic.

use crate::error::CoreError;
use crate::graph::ExecutionGraph;
use crate::task::{DepKind, ProcIdx, Processor, TaskId, TaskKind};
use lumos_trace::{
    ClusterTrace, CudaRuntimeKind, Dur, RankId, RankTrace, StreamId, TraceEvent, Ts,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Which collective instances rendezvous across ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RendezvousMode {
    /// Every collective synchronizes all members (NCCL reality;
    /// Lumos).
    All,
    /// Only point-to-point send/recv pairs couple ranks; all-reduce
    /// style collectives run locally with their recorded durations.
    /// This is the dPRO baseline's blind spot: its global dataflow
    /// graph carries explicit cross-worker transfer edges, but it does
    /// not model NCCL's synchronized execution of collectives, so
    /// straggler-induced waits vanish.
    SendRecvOnly,
}

/// Timing constants of the replay model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOptions {
    /// Delay between a launch call completing and the kernel becoming
    /// runnable on an idle stream.
    pub launch_gap: Dur,
    /// Host-side cost of a synchronization call.
    pub sync_call: Dur,
    /// Latency between a GPU completion and the blocked host thread
    /// observing it.
    pub sync_poll: Dur,
    /// Cross-rank collective coupling.
    pub rendezvous: RendezvousMode,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            launch_gap: Dur::from_us(2),
            sync_call: Dur::from_us(2),
            sync_poll: Dur(500),
            rendezvous: RendezvousMode::All,
        }
    }
}

/// Simulated schedule: a start and end time for every task.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Simulated start per task (indexed by task id).
    pub starts: Vec<Ts>,
    /// Simulated end per task.
    pub ends: Vec<Ts>,
    /// Runtime dependencies resolved during simulation:
    /// `(blocking sync task, kernel it waited on)`. Analysis uses
    /// these as extra graph edges (they are not fixed edges).
    pub runtime_deps: Vec<(TaskId, TaskId)>,
}

impl SimResult {
    /// End-to-end simulated time (max end − min start).
    pub fn makespan(&self) -> Dur {
        let min = self.starts.iter().copied().min().unwrap_or(Ts::ZERO);
        let max = self.ends.iter().copied().max().unwrap_or(Ts::ZERO);
        max - min
    }

    /// Materializes the simulated schedule as a trace (the paper:
    /// "the simulation generates a trace similar to the input trace"),
    /// enabling breakdown / SM-utilization analysis of the replay.
    ///
    /// This is the replay simulator's full-trace product; call it only
    /// when the trace itself is consumed. Estimation paths that need
    /// just the makespan should stop at [`SimResult::makespan`] —
    /// the ground-truth engine's metrics-only mode
    /// (`lumos_cluster::PreparedJob::execute_metrics`) is the
    /// equivalent trace-free fast path on the cluster side.
    pub fn to_trace(&self, graph: &ExecutionGraph, label: &str) -> ClusterTrace {
        let mut per_rank: HashMap<RankId, RankTrace> = HashMap::new();
        for (i, task) in graph.tasks().iter().enumerate() {
            let proc = graph.processor(task.processor);
            let rank = proc.rank();
            let (ts, dur) = (self.starts[i], self.ends[i] - self.starts[i]);
            let event = match (&task.kind, proc) {
                (TaskKind::CpuOp, Processor::Thread { tid, .. }) => {
                    TraceEvent::cpu_op(task.name.clone(), ts, dur, tid)
                }
                (TaskKind::Runtime(kind), Processor::Thread { tid, .. }) => {
                    let mut e = TraceEvent::cuda_runtime(*kind, ts, dur, tid);
                    e.name = task.name.clone();
                    if task.correlation != 0 {
                        e = e.with_correlation(task.correlation);
                    }
                    e
                }
                (TaskKind::Kernel(class), Processor::Stream { stream, .. }) => {
                    TraceEvent::kernel(task.name.clone(), ts, dur, stream)
                        .with_correlation(task.correlation)
                        .with_class(*class)
                }
                (kind, proc) => unreachable!("task kind {kind:?} on processor {proc}"),
            };
            per_rank
                .entry(rank)
                .or_insert_with(|| RankTrace::new(rank))
                .push(event);
        }
        let mut ranks: Vec<(RankId, RankTrace)> = per_rank.into_iter().collect();
        ranks.sort_unstable_by_key(|&(r, _)| r);
        let mut cluster = ClusterTrace::new(label);
        for (_, mut t) in ranks {
            t.sort();
            cluster.push_rank(t);
        }
        cluster
    }
}

struct CollSim {
    arrived: usize,
    ready_max: Ts,
}

/// Replays an execution graph, producing per-task simulated times.
///
/// # Errors
///
/// Returns [`CoreError::SimulationStuck`] when tasks remain
/// unexecutable (mismatched collectives or a dependency bug).
pub fn simulate(graph: &ExecutionGraph, opts: &SimOptions) -> Result<SimResult, CoreError> {
    let n = graph.len();
    let mut remaining: Vec<u32> = (0..n as u32).map(|t| graph.pred_count(t)).collect();
    let mut start_lb: Vec<Ts> = vec![Ts::ZERO; n];
    let mut starts: Vec<Ts> = vec![Ts::ZERO; n];
    let mut ends: Vec<Ts> = vec![Ts::ZERO; n];
    let mut done: Vec<bool> = vec![false; n];
    let mut proc_avail: Vec<Ts> = vec![Ts::ZERO; graph.processors().len()];
    let mut ready: BinaryHeap<Reverse<(Ts, TaskId)>> = BinaryHeap::new();
    // Per stream processor: the last-enqueued kernel (greatest enqueue
    // seq whose launch has completed).
    let mut last_enqueued: HashMap<ProcIdx, (u32, TaskId)> = HashMap::new();
    // Deferred syncs: kernel -> syncs waiting on it.
    let mut sync_waiters: HashMap<TaskId, Vec<TaskId>> = HashMap::new();
    // sync -> (unresolved deps, latest dep end).
    let mut sync_state: HashMap<TaskId, (u32, Ts)> = HashMap::new();
    // Collective rendezvous state.
    let mut coll_state: HashMap<(u64, u32), CollSim> = HashMap::new();
    // (rank, stream) -> proc and per-rank stream processors.
    let mut stream_proc: HashMap<(RankId, StreamId), ProcIdx> = HashMap::new();
    let mut rank_streams: HashMap<RankId, Vec<ProcIdx>> = HashMap::new();
    for (i, p) in graph.processors().iter().enumerate() {
        if let Processor::Stream { rank, stream } = *p {
            stream_proc.insert((rank, stream), i as ProcIdx);
            rank_streams.entry(rank).or_default().push(i as ProcIdx);
        }
    }
    // Task -> collective key, for rendezvous lookup. The expected
    // arrival count is the communicator's rank count (a mismatched
    // instance hangs, as it would on real NCCL).
    let mut coll_of: HashMap<TaskId, (u64, u32)> = HashMap::new();
    let mut coll_expected: HashMap<(u64, u32), usize> = HashMap::new();
    for (&key, members) in graph.collectives() {
        let expected = graph.group_ranks(key.0).map_or(members.len(), <[_]>::len);
        if expected <= 1 {
            continue;
        }
        if opts.rendezvous == RendezvousMode::SendRecvOnly {
            let is_sendrecv = members.iter().any(|&m| {
                matches!(
                    graph.task(m).comm_meta(),
                    Some(meta) if meta.kind == lumos_trace::CollectiveKind::SendRecv
                )
            });
            if !is_sendrecv {
                continue;
            }
        }
        for &m in members {
            coll_of.insert(m, key);
        }
        coll_expected.insert(key, expected);
    }

    for t in 0..n as u32 {
        if remaining[t as usize] == 0 {
            ready.push(Reverse((graph.task(t).orig_start, t)));
        }
    }

    let mut completions: VecDeque<(TaskId, Ts, Ts)> = VecDeque::new();
    let mut completed_count = 0usize;
    let mut runtime_deps: Vec<(TaskId, TaskId)> = Vec::new();

    while let Some(Reverse((_, t))) = ready.pop() {
        let task = graph.task(t);
        let p = task.processor as usize;
        let ready_time = start_lb[t as usize].max(proc_avail[p]);

        if let Some(&key) = coll_of.get(&t) {
            // Collective rendezvous: defer until all members arrive.
            let members = &graph.collectives()[&key];
            let expected = coll_expected[&key];
            let state = coll_state.entry(key).or_insert(CollSim {
                arrived: 0,
                ready_max: Ts::ZERO,
            });
            state.arrived += 1;
            state.ready_max = state.ready_max.max(ready_time);
            if state.arrived == expected {
                let start = state.ready_max;
                for &m in members {
                    completions.push_back((m, start, start + graph.task(m).duration));
                }
            }
        } else if task.kind.is_blocking_sync() {
            // Runtime dependencies: snapshot the live last-enqueued
            // kernels of the target stream(s).
            let rank = graph.processor(task.processor).rank();
            let targets: Vec<ProcIdx> = match task.kind {
                TaskKind::Runtime(CudaRuntimeKind::StreamSynchronize { stream }) => stream_proc
                    .get(&(rank, stream))
                    .copied()
                    .into_iter()
                    .collect(),
                TaskKind::Runtime(CudaRuntimeKind::DeviceSynchronize) => {
                    rank_streams.get(&rank).cloned().unwrap_or_default()
                }
                _ => Vec::new(),
            };
            let mut unmet = 0u32;
            let mut latest = Ts::ZERO;
            for sp in targets {
                if let Some(&(_, k)) = last_enqueued.get(&sp) {
                    runtime_deps.push((t, k));
                    if done[k as usize] {
                        latest = latest.max(ends[k as usize]);
                    } else {
                        sync_waiters.entry(k).or_default().push(t);
                        unmet += 1;
                    }
                }
            }
            if unmet == 0 {
                let start = ready_time;
                let end = (start + opts.sync_call).max(latest + opts.sync_poll);
                completions.push_back((t, start, end));
            } else {
                sync_state.insert(t, (unmet, latest));
                starts[t as usize] = ready_time; // provisional start
            }
        } else {
            let start = ready_time;
            completions.push_back((t, start, start + task.duration));
        }

        // Drain the completion queue: record times, advance
        // processors, propagate to successors, resolve deferred syncs.
        while let Some((c, start, end)) = completions.pop_front() {
            debug_assert!(!done[c as usize], "task {c} completed twice");
            starts[c as usize] = start;
            ends[c as usize] = end;
            done[c as usize] = true;
            completed_count += 1;
            let cp = graph.task(c).processor as usize;
            proc_avail[cp] = proc_avail[cp].max(end);

            for edge in graph.successors(c) {
                let latency = match edge.kind {
                    DepKind::KernelLaunch => opts.launch_gap,
                    _ => Dur::ZERO,
                };
                let to = edge.to as usize;
                start_lb[to] = start_lb[to].max(end + latency);
                remaining[to] -= 1;
                if remaining[to] == 0 {
                    ready.push(Reverse((graph.task(edge.to).orig_start, edge.to)));
                }
            }

            // A completed launch makes its kernel "enqueued".
            if matches!(graph.task(c).kind, TaskKind::Runtime(k) if k.launches_work()) {
                for edge in graph.successors(c) {
                    if edge.kind == DepKind::KernelLaunch {
                        let k = edge.to;
                        let kp = graph.task(k).processor;
                        if let Some(seq) = graph.enqueue_seq(k) {
                            let entry = last_enqueued.entry(kp).or_insert((seq, k));
                            if seq >= entry.0 {
                                *entry = (seq, k);
                            }
                        }
                    }
                }
            }

            // A completed kernel may release deferred syncs.
            if let Some(waiters) = sync_waiters.remove(&c) {
                for s in waiters {
                    let (unmet, latest) = sync_state.get_mut(&s).expect("waiting sync has state");
                    *unmet -= 1;
                    *latest = (*latest).max(end);
                    if *unmet == 0 {
                        let (_, latest) = sync_state.remove(&s).expect("state exists");
                        let start = starts[s as usize];
                        let send = (start + opts.sync_call).max(latest + opts.sync_poll);
                        completions.push_back((s, start, send));
                    }
                }
            }
        }
    }

    if completed_count != n {
        return Err(CoreError::SimulationStuck {
            completed: completed_count,
            total: n,
        });
    }
    Ok(SimResult {
        starts,
        ends,
        runtime_deps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_graph, BuildOptions};
    use crate::task::{SegmentTag, Task};
    use lumos_trace::KernelClass;

    fn mk_graph() -> ExecutionGraph {
        ExecutionGraph::new()
    }

    fn add(g: &mut ExecutionGraph, proc: Processor, kind: TaskKind, dur: u64, orig: u64) -> TaskId {
        let p = g.processor_idx(proc);
        g.add_task(Task {
            name: "t".into(),
            kind,
            processor: p,
            duration: Dur(dur),
            orig_start: Ts(orig),
            correlation: 0,
            tag: SegmentTag::default(),
        })
    }

    fn thread0() -> Processor {
        Processor::Thread {
            rank: RankId(0),
            tid: lumos_trace::ThreadId(1),
        }
    }

    #[test]
    fn chain_executes_sequentially() {
        let mut g = mk_graph();
        let a = add(&mut g, thread0(), TaskKind::CpuOp, 10, 0);
        let b = add(&mut g, thread0(), TaskKind::CpuOp, 20, 10);
        g.add_edge(a, b, DepKind::IntraThread);
        let r = simulate(&g, &SimOptions::default()).unwrap();
        assert_eq!(r.starts[a as usize], Ts(0));
        assert_eq!(r.ends[a as usize], Ts(10));
        assert_eq!(r.starts[b as usize], Ts(10));
        assert_eq!(r.makespan(), Dur(30));
    }

    #[test]
    fn processor_serializes_independent_tasks() {
        // Two tasks on one processor with no edge between them: the
        // processor still runs them one at a time, in orig_start
        // order.
        let mut g = mk_graph();
        let a = add(&mut g, thread0(), TaskKind::CpuOp, 10, 5);
        let b = add(&mut g, thread0(), TaskKind::CpuOp, 10, 0);
        let r = simulate(&g, &SimOptions::default()).unwrap();
        // b picked first (earlier orig_start).
        assert_eq!(r.starts[b as usize], Ts(0));
        assert_eq!(r.starts[a as usize], Ts(10));
    }

    #[test]
    fn launch_gap_applied() {
        let mut g = mk_graph();
        let l = add(
            &mut g,
            thread0(),
            TaskKind::Runtime(CudaRuntimeKind::LaunchKernel),
            4,
            0,
        );
        let k = add(
            &mut g,
            Processor::Stream {
                rank: RankId(0),
                stream: StreamId(7),
            },
            TaskKind::Kernel(KernelClass::Other),
            100,
            10,
        );
        g.add_edge(l, k, DepKind::KernelLaunch);
        g.register_kernel(k, l);
        let opts = SimOptions::default();
        let r = simulate(&g, &opts).unwrap();
        assert_eq!(r.starts[k as usize], Ts(4) + opts.launch_gap);
    }

    #[test]
    fn collective_rendezvous_synchronizes_members() {
        let mut g = mk_graph();
        // Two ranks: rank 1's kernel becomes ready later.
        let k0 = add(
            &mut g,
            Processor::Stream {
                rank: RankId(0),
                stream: StreamId(13),
            },
            TaskKind::Kernel(KernelClass::Other),
            50,
            0,
        );
        let blocker = add(
            &mut g,
            Processor::Stream {
                rank: RankId(1),
                stream: StreamId(13),
            },
            TaskKind::Kernel(KernelClass::Other),
            300,
            0,
        );
        let k1 = add(
            &mut g,
            Processor::Stream {
                rank: RankId(1),
                stream: StreamId(13),
            },
            TaskKind::Kernel(KernelClass::Other),
            50,
            1,
        );
        g.add_edge(blocker, k1, DepKind::IntraStream);
        g.register_collective(9, 0, k0, RankId(0));
        g.register_collective(9, 0, k1, RankId(1));
        let r = simulate(&g, &SimOptions::default()).unwrap();
        // k0 waits for k1's readiness (after the 300ns blocker).
        assert_eq!(r.starts[k0 as usize], Ts(300));
        assert_eq!(r.starts[k1 as usize], Ts(300));
        assert_eq!(r.ends[k0 as usize], Ts(350));
    }

    #[test]
    fn stream_sync_waits_for_last_enqueued_kernel() {
        let stream = StreamId(7);
        let mut g = mk_graph();
        let l = add(
            &mut g,
            thread0(),
            TaskKind::Runtime(CudaRuntimeKind::LaunchKernel),
            4,
            0,
        );
        let sync = add(
            &mut g,
            thread0(),
            TaskKind::Runtime(CudaRuntimeKind::StreamSynchronize { stream }),
            2,
            4,
        );
        let k = add(
            &mut g,
            Processor::Stream {
                rank: RankId(0),
                stream,
            },
            TaskKind::Kernel(KernelClass::Other),
            1000,
            10,
        );
        g.add_edge(l, sync, DepKind::IntraThread);
        g.add_edge(l, k, DepKind::KernelLaunch);
        g.register_kernel(k, l);
        let opts = SimOptions::default();
        let r = simulate(&g, &opts).unwrap();
        // Kernel runs 4+2000(gap) .. 3004; sync must end after it.
        let k_end = r.ends[k as usize];
        assert_eq!(r.ends[sync as usize], k_end + opts.sync_poll);
        assert_eq!(r.starts[sync as usize], Ts(4));
    }

    #[test]
    fn sync_without_enqueued_work_is_fast() {
        let stream = StreamId(7);
        let mut g = mk_graph();
        let sync = add(
            &mut g,
            thread0(),
            TaskKind::Runtime(CudaRuntimeKind::StreamSynchronize { stream }),
            2,
            0,
        );
        let opts = SimOptions::default();
        let r = simulate(&g, &opts).unwrap();
        assert_eq!(r.ends[sync as usize], Ts::ZERO + opts.sync_call);
    }

    #[test]
    fn mismatched_collective_reports_stuck() {
        let mut g = mk_graph();
        let k0 = add(
            &mut g,
            Processor::Stream {
                rank: RankId(0),
                stream: StreamId(13),
            },
            TaskKind::Kernel(KernelClass::Other),
            50,
            0,
        );
        g.register_collective(9, 0, k0, RankId(0));
        // Pretend the group has another rank that never issues seq 0.
        let k1 = add(
            &mut g,
            Processor::Stream {
                rank: RankId(1),
                stream: StreamId(13),
            },
            TaskKind::Kernel(KernelClass::Other),
            50,
            0,
        );
        g.register_collective(9, 1, k1, RankId(1));
        // Graph validation would reject this; simulate directly to
        // exercise the stuck path.
        let err = simulate(&g, &SimOptions::default()).unwrap_err();
        assert!(matches!(err, CoreError::SimulationStuck { .. }));
    }

    #[test]
    fn simulation_is_deterministic() {
        let mut g = mk_graph();
        let mut prev = None;
        for i in 0..50 {
            let t = add(&mut g, thread0(), TaskKind::CpuOp, 7, i);
            if let Some(p) = prev {
                g.add_edge(p, t, DepKind::IntraThread);
            }
            prev = Some(t);
        }
        let a = simulate(&g, &SimOptions::default()).unwrap();
        let b = simulate(&g, &SimOptions::default()).unwrap();
        assert_eq!(a.starts, b.starts);
        assert_eq!(a.ends, b.ends);
    }

    #[test]
    fn to_trace_round_trips_through_builder() {
        // A simulated trace must itself be a valid trace.
        let t1 = lumos_trace::ThreadId(1);
        let mut r = RankTrace::new(0);
        r.push(TraceEvent::cpu_op("op", Ts(0), Dur(5_000), t1));
        r.push(
            TraceEvent::cuda_runtime(CudaRuntimeKind::LaunchKernel, Ts(5_000), Dur(2_000), t1)
                .with_correlation(1),
        );
        r.push(TraceEvent::kernel("k", Ts(10_000), Dur(50_000), StreamId(7)).with_correlation(1));
        let mut c = ClusterTrace::new("t");
        c.push_rank(r);
        let g = build_graph(&c, &BuildOptions::default()).unwrap();
        let sim = simulate(&g, &SimOptions::default()).unwrap();
        let out = sim.to_trace(&g, "replay");
        out.validate().unwrap();
        assert_eq!(out.total_events(), 3);
        assert_eq!(out.label, "replay");
    }
}
