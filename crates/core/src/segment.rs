//! Segmentation: recovering micro-batch / layer / phase structure from
//! user annotations.
//!
//! Frameworks like Megatron mark logical ranges (NVTX / profiler
//! ranges) on the host timeline; Kineto records them as user
//! annotations. Lumos parses these to tag every task with its position
//! in the iteration — the information graph manipulation needs to
//! "group the tasks by layers" (§3.4).

use crate::task::{Phase, SegmentTag};
use lumos_trace::{EventKind, RankTrace, ThreadId, TraceEvent, Ts};
use std::collections::HashMap;

/// Parses one annotation label into a tag.
///
/// Recognized vocabulary (space-separated tokens):
/// `layer=N`, `mb=N`, `fwd`, `bwd`, `embed`, `head`, `dp_grads`,
/// `optimizer`, `iteration`. Unknown tokens are ignored.
pub fn parse_annotation(name: &str) -> SegmentTag {
    let mut tag = SegmentTag::default();
    for token in name.split_whitespace() {
        if let Some(v) = token.strip_prefix("layer=") {
            tag.layer = v.parse().ok();
        } else if let Some(v) = token.strip_prefix("mb=") {
            tag.mb = v.parse().ok();
        } else {
            match token {
                "fwd" => tag.phase = Some(Phase::Forward),
                "bwd" => tag.phase = Some(Phase::Backward),
                "dp_grads" => tag.phase = Some(Phase::DpGrads),
                "optimizer" => tag.phase = Some(Phase::Optimizer),
                "embed" => tag.embed = true,
                "head" => tag.head = true,
                _ => {}
            }
        }
    }
    tag
}

/// Merges an outer tag with an inner (more specific) one: inner fields
/// win where present.
pub fn merge(outer: SegmentTag, inner: SegmentTag) -> SegmentTag {
    SegmentTag {
        mb: inner.mb.or(outer.mb),
        layer: inner.layer.or(outer.layer),
        embed: inner.embed || outer.embed,
        head: inner.head || outer.head,
        phase: inner.phase.or(outer.phase),
    }
}

/// Computes the tag of every host event in a rank trace by annotation
/// containment (annotations are properly nested per thread).
///
/// Returns a map from event index (position in `trace.events()`) to
/// tag; untagged events are absent.
pub fn tag_host_events(trace: &RankTrace) -> HashMap<usize, SegmentTag> {
    // Annotations per thread, sorted by (start, widest first).
    let mut anns: HashMap<ThreadId, Vec<(Ts, Ts, SegmentTag)>> = HashMap::new();
    for e in trace.events() {
        if let EventKind::UserAnnotation { tid } = e.kind {
            anns.entry(tid)
                .or_default()
                .push((e.ts, e.end(), parse_annotation(&e.name)));
        }
    }
    for list in anns.values_mut() {
        list.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
    }

    // Host events per thread, in trace order, tagged via a nesting
    // stack sweep.
    let mut tags = HashMap::new();
    let mut events_by_thread: HashMap<ThreadId, Vec<(usize, &TraceEvent)>> = HashMap::new();
    for (i, e) in trace.events().iter().enumerate() {
        if matches!(e.kind, EventKind::UserAnnotation { .. }) {
            continue;
        }
        if let Some(tid) = e.kind.tid() {
            events_by_thread.entry(tid).or_default().push((i, e));
        }
    }
    for (tid, mut events) in events_by_thread {
        events.sort_by_key(|(_, e)| e.ts);
        let Some(thread_anns) = anns.get(&tid) else {
            continue;
        };
        let mut stack: Vec<(Ts, Ts, SegmentTag)> = Vec::new();
        let mut next_ann = 0usize;
        for (idx, e) in events {
            // Open annotations that start at or before this event.
            while next_ann < thread_anns.len() && thread_anns[next_ann].0 <= e.ts {
                stack.push(thread_anns[next_ann]);
                next_ann += 1;
            }
            // Close annotations that ended before or at this event's
            // start (half-open ranges).
            stack.retain(|&(_, end, _)| end > e.ts);
            if stack.is_empty() {
                continue;
            }
            let tag = stack
                .iter()
                .fold(SegmentTag::default(), |acc, &(_, _, t)| merge(acc, t));
            if !tag.is_empty() {
                tags.insert(idx, tag);
            }
        }
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_trace::{Dur, TraceEvent};

    #[test]
    fn parse_vocabulary() {
        let t = parse_annotation("layer=12 fwd mb=3");
        assert_eq!(t.layer, Some(12));
        assert_eq!(t.mb, Some(3));
        assert_eq!(t.phase, Some(Phase::Forward));
        assert!(!t.embed && !t.head);

        let t = parse_annotation("dp_grads embed mb=7");
        assert_eq!(t.phase, Some(Phase::DpGrads));
        assert!(t.embed);
        assert_eq!(t.mb, Some(7));

        assert!(parse_annotation("iteration").is_empty());
        assert_eq!(parse_annotation("optimizer").phase, Some(Phase::Optimizer));
        // Garbage tolerated.
        assert!(parse_annotation("layer=x unknown").is_empty());
    }

    #[test]
    fn merge_inner_wins() {
        let outer = parse_annotation("fwd mb=3");
        let inner = parse_annotation("layer=5 bwd");
        let m = merge(outer, inner);
        assert_eq!(m.layer, Some(5));
        assert_eq!(m.mb, Some(3));
        assert_eq!(m.phase, Some(Phase::Backward));
    }

    #[test]
    fn containment_tagging() {
        let mut trace = RankTrace::new(0);
        let tid = ThreadId(1);
        trace.push(TraceEvent::annotation("fwd mb=0", Ts(0), Dur(100), tid));
        trace.push(TraceEvent::annotation(
            "layer=2 fwd mb=0",
            Ts(10),
            Dur(50),
            tid,
        ));
        trace.push(TraceEvent::cpu_op("inside_layer", Ts(20), Dur(5), tid)); // idx 2
        trace.push(TraceEvent::cpu_op("inside_fwd_only", Ts(70), Dur(5), tid)); // idx 3
        trace.push(TraceEvent::cpu_op("outside", Ts(200), Dur(5), tid)); // idx 4
        let tags = tag_host_events(&trace);
        assert_eq!(tags[&2].layer, Some(2));
        assert_eq!(tags[&2].mb, Some(0));
        assert_eq!(tags[&3].layer, None);
        assert_eq!(tags[&3].mb, Some(0));
        assert!(!tags.contains_key(&4));
    }

    #[test]
    fn threads_do_not_cross_tag() {
        let mut trace = RankTrace::new(0);
        trace.push(TraceEvent::annotation(
            "fwd mb=1",
            Ts(0),
            Dur(100),
            ThreadId(1),
        ));
        trace.push(TraceEvent::cpu_op(
            "other_thread",
            Ts(50),
            Dur(5),
            ThreadId(2),
        ));
        let tags = tag_host_events(&trace);
        assert!(tags.is_empty());
    }

    #[test]
    fn half_open_boundary() {
        let mut trace = RankTrace::new(0);
        let tid = ThreadId(1);
        trace.push(TraceEvent::annotation("fwd mb=0", Ts(0), Dur(10), tid));
        // Starts exactly at the annotation end: not contained.
        trace.push(TraceEvent::cpu_op("at_end", Ts(10), Dur(1), tid));
        let tags = tag_host_events(&trace);
        assert!(tags.is_empty());
    }
}
