//! Operator-level what-if studies (paper §5).
//!
//! "More importantly, it can offer invaluable insights for
//! optimization even before implementation by answering what-if
//! questions, such as how much the overall runtime would be reduced
//! if a kernel ran twice as fast, and identifying which optimization
//! would yield the greatest performance improvement."
//!
//! These transforms edit task durations on an already-built
//! [`ExecutionGraph`]; re-simulating the edited graph answers the
//! question.

use crate::error::CoreError;
use crate::graph::ExecutionGraph;
use crate::task::{Task, TaskKind};
use lumos_trace::{KernelClass, ScaleError};

/// Scales the duration of every task matched by `predicate` by
/// `factor` (0.5 = twice as fast). Returns the number of tasks
/// affected.
///
/// # Panics
///
/// Panics if `factor` is negative or not finite. Callers handling
/// user-supplied factors should use [`try_scale_tasks`].
pub fn scale_tasks(
    graph: &mut ExecutionGraph,
    factor: f64,
    predicate: impl Fn(&Task) -> bool,
) -> usize {
    match try_scale_tasks(graph, factor, predicate) {
        Ok(n) => n,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`scale_tasks`]: rejects negative, NaN, and infinite
/// factors with a typed error instead of panicking. The graph is left
/// untouched on error.
///
/// # Errors
///
/// Returns [`CoreError::InvalidScale`] when `factor` is negative or
/// not finite.
pub fn try_scale_tasks(
    graph: &mut ExecutionGraph,
    factor: f64,
    predicate: impl Fn(&Task) -> bool,
) -> Result<usize, CoreError> {
    if !(factor >= 0.0 && factor.is_finite()) {
        return Err(CoreError::InvalidScale(ScaleError { factor }));
    }
    let mut affected = 0;
    for task in graph.tasks_mut() {
        if predicate(task) {
            task.duration = task.duration.scale(factor);
            affected += 1;
        }
    }
    Ok(affected)
}

/// Scales every GPU kernel whose class matches `matcher`.
///
/// # Panics
///
/// Panics on invalid factors; see [`try_scale_kernel_class`].
pub fn scale_kernel_class(
    graph: &mut ExecutionGraph,
    factor: f64,
    matcher: impl Fn(&KernelClass) -> bool,
) -> usize {
    scale_tasks(
        graph,
        factor,
        |t| matches!(&t.kind, TaskKind::Kernel(c) if matcher(c)),
    )
}

/// Fallible [`scale_kernel_class`].
///
/// # Errors
///
/// Returns [`CoreError::InvalidScale`] on invalid factors.
pub fn try_scale_kernel_class(
    graph: &mut ExecutionGraph,
    factor: f64,
    matcher: impl Fn(&KernelClass) -> bool,
) -> Result<usize, CoreError> {
    try_scale_tasks(
        graph,
        factor,
        |t| matches!(&t.kind, TaskKind::Kernel(c) if matcher(c)),
    )
}

/// Scales every GEMM kernel ("what if matmuls were 2× faster?").
///
/// # Panics
///
/// Panics on invalid factors; see [`try_scale_gemms`].
pub fn scale_gemms(graph: &mut ExecutionGraph, factor: f64) -> usize {
    scale_kernel_class(graph, factor, |c| matches!(c, KernelClass::Gemm { .. }))
}

/// Fallible [`scale_gemms`].
///
/// # Errors
///
/// Returns [`CoreError::InvalidScale`] on invalid factors.
pub fn try_scale_gemms(graph: &mut ExecutionGraph, factor: f64) -> Result<usize, CoreError> {
    try_scale_kernel_class(graph, factor, |c| matches!(c, KernelClass::Gemm { .. }))
}

/// Scales every communication kernel ("what if the network were 2×
/// faster?").
///
/// # Panics
///
/// Panics on invalid factors; see [`try_scale_comms`].
pub fn scale_comms(graph: &mut ExecutionGraph, factor: f64) -> usize {
    scale_kernel_class(graph, factor, KernelClass::is_comm)
}

/// Fallible [`scale_comms`].
///
/// # Errors
///
/// Returns [`CoreError::InvalidScale`] on invalid factors.
pub fn try_scale_comms(graph: &mut ExecutionGraph, factor: f64) -> Result<usize, CoreError> {
    try_scale_kernel_class(graph, factor, KernelClass::is_comm)
}

/// Scales every host-side task ("what if dispatch overhead halved?").
///
/// # Panics
///
/// Panics on invalid factors; see [`try_scale_host`].
pub fn scale_host(graph: &mut ExecutionGraph, factor: f64) -> usize {
    scale_tasks(graph, factor, |t| {
        matches!(t.kind, TaskKind::CpuOp | TaskKind::Runtime(_))
    })
}

/// Fallible [`scale_host`].
///
/// # Errors
///
/// Returns [`CoreError::InvalidScale`] on invalid factors.
pub fn try_scale_host(graph: &mut ExecutionGraph, factor: f64) -> Result<usize, CoreError> {
    try_scale_tasks(graph, factor, |t| {
        matches!(t.kind, TaskKind::CpuOp | TaskKind::Runtime(_))
    })
}

/// Returns `true` for kernel classes a pointwise fuser can absorb
/// (elementwise chains and the normalizations between them).
pub fn is_fusible(class: &KernelClass) -> bool {
    matches!(
        class,
        KernelClass::Elementwise { .. } | KernelClass::Norm { .. }
    )
}

/// Re-prices every classified kernel under a different hardware cost
/// model — the cross-hardware what-if ("how would this job run on
/// A100s?") that analytical co-design tools like Calculon answer, here
/// grounded in a recorded execution structure.
///
/// Compute kernels are priced by their shape class; collectives by
/// payload and the membership recorded in the graph. Unclassified
/// kernels ([`KernelClass::Other`]) and host tasks keep their recorded
/// durations (host dispatch does not move between GPU generations).
/// Returns the number of kernels re-priced.
pub fn recost_hardware<C: lumos_cost::CostModel>(graph: &mut ExecutionGraph, cost: &C) -> usize {
    // Collective membership: group id -> member rank count is not
    // enough, the cost model wants global rank ids.
    let group_members: std::collections::HashMap<u64, Vec<u32>> = graph
        .groups()
        .map(|(g, ranks)| (g, ranks.iter().map(|r| r.0).collect()))
        .collect();
    let mut touched = 0;
    for task in graph.tasks_mut() {
        let TaskKind::Kernel(class) = &task.kind else {
            continue;
        };
        task.duration = match class {
            KernelClass::Other => continue,
            KernelClass::Collective(meta) => {
                let members = group_members
                    .get(&meta.group)
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                cost.collective_cost(meta.kind, meta.bytes, members)
            }
            compute => cost.compute_cost(compute),
        };
        touched += 1;
    }
    touched
}

/// Models a pointwise operator-fusion pass (the §5 example of a
/// change "not supported by the framework" that developers would
/// otherwise have to hack in): every maximal run of ≥ 2 consecutive
/// fusible kernels on a stream is treated as one fused kernel.
///
/// Each fused-away kernel boundary saves `per_kernel_overhead` of
/// device time (the fixed launch-to-finish floor of the absorbed
/// kernel) and the absorbed kernel's `cudaLaunchKernel` host time.
/// Durations never drop below 1 µs of residual streaming work.
///
/// Returns the number of kernel boundaries fused away.
pub fn fuse_pointwise(graph: &mut ExecutionGraph, per_kernel_overhead: lumos_trace::Dur) -> usize {
    use lumos_trace::Dur;
    const RESIDUAL: Dur = Dur(1_000);

    // Collect the edits first: graph access is by value while
    // iterating stream orders.
    let mut absorbed: Vec<crate::task::TaskId> = Vec::new();
    for proc in 0..graph.processors().len() as u32 {
        let kernels = graph.stream_kernels(proc);
        let mut run: Vec<crate::task::TaskId> = Vec::new();
        let flush = |run: &mut Vec<crate::task::TaskId>, absorbed: &mut Vec<_>| {
            if run.len() >= 2 {
                absorbed.extend(run.iter().skip(1).copied());
            }
            run.clear();
        };
        for &k in kernels {
            let fusible = matches!(&graph.task(k).kind, TaskKind::Kernel(c) if is_fusible(c));
            if fusible {
                run.push(k);
            } else {
                flush(&mut run, &mut absorbed);
            }
        }
        flush(&mut run, &mut absorbed);
    }

    for &k in &absorbed {
        let launch = graph.launch_of(k);
        {
            let t = &mut graph.tasks_mut()[k as usize];
            t.duration = t.duration.saturating_sub(per_kernel_overhead).max(RESIDUAL);
        }
        if let Some(l) = launch {
            graph.tasks_mut()[l as usize].duration = Dur::ZERO;
        }
    }
    absorbed.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Processor, SegmentTag};
    use lumos_trace::{Dur, RankId, StreamId, ThreadId, Ts};

    fn graph_with_kernels() -> ExecutionGraph {
        let mut g = ExecutionGraph::new();
        let sp = g.processor_idx(Processor::Stream {
            rank: RankId(0),
            stream: StreamId(7),
        });
        let tp = g.processor_idx(Processor::Thread {
            rank: RankId(0),
            tid: ThreadId(1),
        });
        g.add_task(Task {
            name: "gemm".into(),
            kind: TaskKind::Kernel(KernelClass::Gemm { m: 8, n: 8, k: 8 }),
            processor: sp,
            duration: Dur(100),
            orig_start: Ts(0),
            correlation: 1,
            tag: SegmentTag::default(),
        });
        g.add_task(Task {
            name: "nccl".into(),
            kind: TaskKind::Kernel(KernelClass::Collective(lumos_trace::CommMeta {
                kind: lumos_trace::CollectiveKind::AllReduce,
                group: 0,
                seq: 0,
                bytes: 8,
            })),
            processor: sp,
            duration: Dur(200),
            orig_start: Ts(0),
            correlation: 2,
            tag: SegmentTag::default(),
        });
        g.add_task(Task {
            name: "op".into(),
            kind: TaskKind::CpuOp,
            processor: tp,
            duration: Dur(50),
            orig_start: Ts(0),
            correlation: 0,
            tag: SegmentTag::default(),
        });
        g
    }

    #[test]
    fn scale_gemms_targets_gemms_only() {
        let mut g = graph_with_kernels();
        assert_eq!(scale_gemms(&mut g, 0.5), 1);
        assert_eq!(g.task(0).duration, Dur(50));
        assert_eq!(g.task(1).duration, Dur(200));
        assert_eq!(g.task(2).duration, Dur(50));
    }

    #[test]
    fn scale_comms_targets_collectives() {
        let mut g = graph_with_kernels();
        assert_eq!(scale_comms(&mut g, 2.0), 1);
        assert_eq!(g.task(1).duration, Dur(400));
    }

    #[test]
    fn scale_host_targets_cpu_tasks() {
        let mut g = graph_with_kernels();
        assert_eq!(scale_host(&mut g, 0.1), 1);
        assert_eq!(g.task(2).duration, Dur(5));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_factor_panics() {
        let mut g = graph_with_kernels();
        scale_gemms(&mut g, -1.0);
    }

    #[test]
    fn try_variants_reject_bad_factors_and_leave_graph_untouched() {
        let mut g = graph_with_kernels();
        for bad in [-0.5, f64::NAN, f64::INFINITY] {
            for result in [
                try_scale_gemms(&mut g, bad),
                try_scale_comms(&mut g, bad),
                try_scale_host(&mut g, bad),
                try_scale_tasks(&mut g, bad, |_| true),
            ] {
                assert!(matches!(result, Err(CoreError::InvalidScale(_))));
            }
        }
        // Nothing was scaled by the failed calls.
        assert_eq!(g.task(0).duration, Dur(100));
        assert_eq!(g.task(1).duration, Dur(200));
        assert_eq!(g.task(2).duration, Dur(50));
        // Valid factors behave exactly like the panicking variants.
        assert_eq!(try_scale_gemms(&mut g, 0.5).unwrap(), 1);
        assert_eq!(g.task(0).duration, Dur(50));
        assert_eq!(try_scale_comms(&mut g, 2.0).unwrap(), 1);
        assert_eq!(g.task(1).duration, Dur(400));
        assert_eq!(try_scale_host(&mut g, 0.1).unwrap(), 1);
        assert_eq!(g.task(2).duration, Dur(5));
    }

    /// gemm, ew, ew, norm, gemm, ew on one stream: one fusible run of
    /// three (ew ew norm), so two boundaries fuse away.
    fn graph_with_pointwise_run() -> ExecutionGraph {
        let mut g = ExecutionGraph::new();
        let sp = g.processor_idx(Processor::Stream {
            rank: RankId(0),
            stream: StreamId(7),
        });
        let th = g.processor_idx(Processor::Thread {
            rank: RankId(0),
            tid: ThreadId(1),
        });
        let classes = [
            KernelClass::Gemm { m: 8, n: 8, k: 8 },
            KernelClass::Elementwise { elems: 100 },
            KernelClass::Elementwise { elems: 100 },
            KernelClass::Norm { elems: 100 },
            KernelClass::Gemm { m: 8, n: 8, k: 8 },
            KernelClass::Elementwise { elems: 100 },
        ];
        for (i, class) in classes.into_iter().enumerate() {
            let corr = i as u64 + 1;
            let launch = g.add_task(Task {
                name: "cudaLaunchKernel".into(),
                kind: TaskKind::Runtime(lumos_trace::CudaRuntimeKind::LaunchKernel),
                processor: th,
                duration: Dur(4_000),
                orig_start: Ts(i as u64 * 10_000),
                correlation: corr,
                tag: SegmentTag::default(),
            });
            let kernel = g.add_task(Task {
                name: "k".into(),
                kind: TaskKind::Kernel(class),
                processor: sp,
                duration: Dur(10_000),
                orig_start: Ts(i as u64 * 10_000 + 5_000),
                correlation: corr,
                tag: SegmentTag::default(),
            });
            g.register_kernel(kernel, launch);
        }
        g
    }

    #[test]
    fn fuse_pointwise_absorbs_runs_only() {
        let mut g = graph_with_pointwise_run();
        let fused = fuse_pointwise(&mut g, Dur(2_000));
        // Run of 3 -> 2 absorbed; the trailing single ew is not fused.
        assert_eq!(fused, 2);
    }

    #[test]
    fn fuse_pointwise_shrinks_absorbed_kernels_and_launches() {
        let mut g = graph_with_pointwise_run();
        let before: Dur = g.total_work();
        let fused = fuse_pointwise(&mut g, Dur(2_000));
        // Each absorbed kernel loses 2us, its launch loses 4us.
        let expect = Dur(fused as u64 * (2_000 + 4_000));
        assert_eq!(g.total_work(), before - expect);
    }

    #[test]
    fn fuse_pointwise_respects_residual_floor() {
        let mut g = graph_with_pointwise_run();
        fuse_pointwise(&mut g, Dur(1_000_000)); // absurd overhead
        for t in g.tasks() {
            if matches!(&t.kind, TaskKind::Kernel(c) if is_fusible(c)) {
                assert!(t.duration >= Dur(1_000));
            }
        }
    }

    #[test]
    fn fuse_pointwise_ignores_streams_without_runs() {
        let mut g = graph_with_kernels(); // gemm + nccl + cpu op
        assert_eq!(fuse_pointwise(&mut g, Dur(2_000)), 0);
    }

    use lumos_cost::CostModel as _;

    #[test]
    fn recost_hardware_touches_classified_kernels_only() {
        let mut g = graph_with_kernels(); // gemm + collective + cpu op
        let cost = lumos_cost::AnalyticalCostModel::h100();
        let touched = recost_hardware(&mut g, &cost);
        assert_eq!(touched, 2); // gemm + collective, not the cpu op
        assert_eq!(
            g.task(0).duration,
            cost.compute_cost(&KernelClass::Gemm { m: 8, n: 8, k: 8 })
        );
        assert_eq!(g.task(2).duration, Dur(50)); // host untouched
    }

    #[test]
    fn recost_hardware_a100_slower_than_h100() {
        let price = |cost: &lumos_cost::AnalyticalCostModel| {
            let mut g = graph_with_pointwise_run();
            recost_hardware(&mut g, cost);
            g.total_work()
        };
        let h100 = price(&lumos_cost::AnalyticalCostModel::h100());
        let a100 = price(&lumos_cost::AnalyticalCostModel::new(
            lumos_cost::ClusterSpec {
                node: lumos_cost::NodeSpec {
                    gpu: lumos_cost::GpuSpec::a100_sxm(),
                    gpus_per_node: 8,
                },
                ..lumos_cost::ClusterSpec::h100_roce()
            },
        ));
        assert!(a100 > h100, "a100 {a100} !> h100 {h100}");
    }
}
