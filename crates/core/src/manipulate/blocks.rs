//! Block extraction: carving a profiled trace into reusable per-layer
//! / per-micro-batch task blocks.
//!
//! Graph manipulation "groups the tasks by layers and partitions the
//! original layers and their underlying tasks into new stages" (§3.4).
//! A *block* is the unit that moves: all host events inside one
//! annotation range (e.g. `layer=7 bwd mb=3`) plus the GPU kernels
//! they launched, normalized to block-local time. Reassembly pastes
//! blocks into a new schedule, renumbering correlation ids, CUDA
//! events, and collective sequences.

use crate::error::CoreError;
use crate::segment::parse_annotation;
use crate::task::Phase;
use lumos_model::Parallelism;
use lumos_trace::{ClusterTrace, CudaRuntimeKind, Dur, EventKind, TraceEvent, Ts};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a block contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// One transformer layer.
    Layer(u32),
    /// The embedding block (first stage).
    Embed,
    /// The LM-head block (last stage).
    Head,
}

/// Identity of a block within the library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockKey {
    /// Tensor-parallel rank of the source.
    pub tp: u32,
    /// Data-parallel rank of the source.
    pub dp: u32,
    /// Content kind.
    pub kind: BlockKind,
    /// Micro-batch index.
    pub mb: u32,
    /// Forward or backward.
    pub phase: Phase,
}

/// A movable group of trace events, in block-local time (the source
/// annotation's start is time zero).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Host events and their launched kernels, times block-local.
    pub events: Vec<TraceEvent>,
    /// Length of the block on its host thread.
    pub host_span: Dur,
}

impl Block {
    /// Number of kernel launches in the block (equals the number of
    /// GPU kernels).
    pub fn kernel_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_gpu()).count()
    }

    /// The block's work-launching runtime calls in host order — the
    /// order reassembly pairs them with regenerated op lists. Shared
    /// (rather than re-derived) by every consumer that must stay in
    /// lockstep with that pairing, e.g. search's stage-cost memo.
    pub fn launches_in_host_order(&self) -> Vec<&TraceEvent> {
        let mut launches: Vec<&TraceEvent> = self
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::CudaRuntime { kind, .. } if kind.launches_work()
                )
            })
            .collect();
        launches.sort_by_key(|e| e.ts);
        launches
    }

    /// The block's GPU kernel events keyed by correlation id (how a
    /// launch finds the kernel it dispatched).
    pub fn kernels_by_correlation(&self) -> HashMap<u64, &TraceEvent> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Kernel { correlation, .. } => Some((correlation, e)),
                _ => None,
            })
            .collect()
    }
}

/// Mean host-side call durations fitted from the source trace, used
/// when reassembly synthesizes glue (transfers, gradient buckets,
/// optimizer scaffolding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostProfile {
    /// Mean CPU operator duration.
    pub cpu_op: Dur,
    /// Mean `cudaLaunchKernel` duration.
    pub launch: Dur,
    /// Mean event record/wait call duration.
    pub event_call: Dur,
}

impl Default for HostProfile {
    fn default() -> Self {
        HostProfile {
            cpu_op: Dur::from_us(6),
            launch: Dur::from_us(4),
            event_call: Dur::from_us(1),
        }
    }
}

/// All blocks extracted from a profiled trace.
///
/// Serializable so a calibration artifact can persist the extraction
/// result and later consumers can reassemble what-if configurations
/// without re-walking the source trace. Serialization is deterministic
/// (map entries are emitted in sorted key order), so
/// [`BlockLibrary::digest`] is stable across save/load cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockLibrary {
    blocks: HashMap<BlockKey, Block>,
    /// Fitted host-call durations.
    pub host: HostProfile,
}

impl BlockLibrary {
    /// Extracts blocks from every rank of `trace`, using `par` to map
    /// ranks to (tp, stage, dp) coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MissingAnnotations`] when the trace has no
    /// layer annotations at all (e.g. profiled without range markers).
    pub fn extract(trace: &ClusterTrace, par: Parallelism) -> Result<Self, CoreError> {
        let mut blocks = HashMap::new();
        let mut prof = ProfileAcc::default();
        for rank_trace in trace.ranks() {
            let coords = par.coords(rank_trace.rank().0);
            extract_rank(rank_trace, coords.tp, coords.dp, &mut blocks, &mut prof);
        }
        if !blocks.keys().any(|k| matches!(k.kind, BlockKind::Layer(_))) {
            return Err(CoreError::MissingAnnotations {
                needed: "layer=<n> fwd/bwd mb=<k> annotation ranges".to_string(),
            });
        }
        Ok(BlockLibrary {
            blocks,
            host: prof.finish(),
        })
    }

    /// Looks up a block.
    pub fn get(&self, key: &BlockKey) -> Option<&Block> {
        self.blocks.get(key)
    }

    /// Iterates over every `(key, block)` pair (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&BlockKey, &Block)> {
        self.blocks.iter()
    }

    /// Number of extracted blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` when no blocks were extracted.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// A stable 64-bit FNV-1a digest of the library's serialized
    /// content. Deterministic across processes and save/load cycles
    /// (serialization emits map entries in sorted key order), so a
    /// calibration artifact can store the digest and verify integrity
    /// on reload. Equals [`value_digest`] of the library's serialized
    /// value tree — validators holding a freshly parsed tree can hash
    /// it directly instead of re-serializing.
    pub fn digest(&self) -> u64 {
        value_digest(&self.serialize_value())
    }

    /// The distinct source micro-batch indices available for layer
    /// blocks.
    pub fn microbatches(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .blocks
            .keys()
            .filter(|k| matches!(k.kind, BlockKind::Layer(_)))
            .map(|k| k.mb)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// A stable 64-bit FNV-1a digest of any serialized value tree — the
/// hash behind [`BlockLibrary::digest`], re-exported from the serde
/// value layer (where the deterministic map ordering it relies on is
/// implemented). Artifact loaders can verify a parsed document
/// without re-serializing it: integers and strings round-trip the
/// JSON layer exactly, so hashing the parsed tree equals hashing the
/// written one.
pub use serde::value_digest;

#[derive(Default)]
struct ProfileAcc {
    cpu: (u128, u64),
    launch: (u128, u64),
    event: (u128, u64),
}

impl ProfileAcc {
    fn finish(self) -> HostProfile {
        let mean = |(total, n): (u128, u64), default: Dur| {
            if n == 0 {
                default
            } else {
                Dur((total / n as u128) as u64)
            }
        };
        let d = HostProfile::default();
        HostProfile {
            cpu_op: mean(self.cpu, d.cpu_op),
            launch: mean(self.launch, d.launch),
            event_call: mean(self.event, d.event_call),
        }
    }
}

fn extract_rank(
    trace: &lumos_trace::RankTrace,
    tp: u32,
    dp: u32,
    blocks: &mut HashMap<BlockKey, Block>,
    prof: &mut ProfileAcc,
) {
    // Host-profile accumulation.
    for e in trace.events() {
        match e.kind {
            EventKind::CpuOp { .. } => {
                prof.cpu.0 += e.dur.as_ns() as u128;
                prof.cpu.1 += 1;
            }
            EventKind::CudaRuntime { kind, .. } if kind.launches_work() => {
                prof.launch.0 += e.dur.as_ns() as u128;
                prof.launch.1 += 1;
            }
            EventKind::CudaRuntime {
                kind: CudaRuntimeKind::EventRecord { .. } | CudaRuntimeKind::StreamWaitEvent { .. },
                ..
            } => {
                prof.event.0 += e.dur.as_ns() as u128;
                prof.event.1 += 1;
            }
            _ => {}
        }
    }

    // Correlation -> kernel event index.
    let mut kernel_by_corr: HashMap<u64, usize> = HashMap::new();
    for (i, e) in trace.events().iter().enumerate() {
        if let EventKind::Kernel { correlation, .. } = e.kind {
            kernel_by_corr.insert(correlation, i);
        }
    }

    for ann in trace.annotations() {
        let tag = parse_annotation(&ann.name);
        let kind = if let Some(layer) = tag.layer {
            BlockKind::Layer(layer)
        } else if tag.embed {
            BlockKind::Embed
        } else if tag.head {
            BlockKind::Head
        } else {
            continue;
        };
        let (Some(mb), Some(phase)) = (tag.mb, tag.phase) else {
            continue;
        };
        // dp_grads / optimizer ranges are re-synthesized, not moved.
        if !matches!(phase, Phase::Forward | Phase::Backward) {
            continue;
        }
        let Some(tid) = ann.kind.tid() else { continue };
        let span = ann.span();
        let t0 = ann.ts;

        let mut events = Vec::new();
        for e in trace.events() {
            let same_thread = e.kind.tid() == Some(tid);
            let contained = e.ts >= span.start && e.end() <= span.end;
            let is_ann = matches!(e.kind, EventKind::UserAnnotation { .. });
            if !(same_thread && contained && !is_ann) {
                continue;
            }
            let mut shifted = e.clone();
            shifted.ts = Ts(e.ts.0 - t0.0);
            events.push(shifted);
            // Pull the launched kernel along.
            if let EventKind::CudaRuntime {
                kind, correlation, ..
            } = e.kind
            {
                if kind.launches_work() {
                    if let Some(&ki) = kernel_by_corr.get(&correlation) {
                        let k = &trace.events()[ki];
                        let mut shifted = k.clone();
                        shifted.ts = Ts(k.ts.0.saturating_sub(t0.0));
                        events.push(shifted);
                    }
                }
            }
        }
        events.sort_by_key(|e| e.ts);
        blocks.insert(
            BlockKey {
                tp,
                dp,
                kind,
                mb,
                phase,
            },
            Block {
                events,
                host_span: span.duration(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_trace::{RankTrace, StreamId, ThreadId};

    fn annotated_trace() -> ClusterTrace {
        let tid = ThreadId(1);
        let mut r = RankTrace::new(0);
        let us = Ts::from_us;
        r.push(TraceEvent::annotation(
            "iteration",
            us(0),
            Dur::from_us(1000),
            tid,
        ));
        r.push(TraceEvent::annotation(
            "fwd mb=0",
            us(0),
            Dur::from_us(400),
            tid,
        ));
        r.push(TraceEvent::annotation(
            "layer=0 fwd mb=0",
            us(10),
            Dur::from_us(100),
            tid,
        ));
        r.push(TraceEvent::cpu_op("aten::mm", us(12), Dur::from_us(6), tid));
        r.push(
            TraceEvent::cuda_runtime(CudaRuntimeKind::LaunchKernel, us(18), Dur::from_us(4), tid)
                .with_correlation(1),
        );
        r.push(
            TraceEvent::kernel("gemm", us(40), Dur::from_us(60), StreamId(7)).with_correlation(1),
        );
        // dp_grads range must be skipped.
        r.push(TraceEvent::annotation(
            "dp_grads layer=0 mb=0",
            us(120),
            Dur::from_us(30),
            tid,
        ));
        r.push(TraceEvent::cpu_op(
            "nccl:all_reduce_dp_grads",
            us(121),
            Dur::from_us(6),
            tid,
        ));
        let mut c = ClusterTrace::new("annotated");
        c.push_rank(r);
        c
    }

    #[test]
    fn extracts_layer_block_with_kernel() {
        let lib =
            BlockLibrary::extract(&annotated_trace(), Parallelism::new(1, 1, 1).unwrap()).unwrap();
        let key = BlockKey {
            tp: 0,
            dp: 0,
            kind: BlockKind::Layer(0),
            mb: 0,
            phase: Phase::Forward,
        };
        let block = lib.get(&key).expect("layer block extracted");
        assert_eq!(block.events.len(), 3); // op + launch + kernel
        assert_eq!(block.kernel_count(), 1);
        assert_eq!(block.host_span, Dur::from_us(100));
        // Block-local time: first host event at 2us (12 - 10).
        assert_eq!(block.events[0].ts, Ts::from_us(2));
        assert_eq!(lib.microbatches(), vec![0]);
    }

    #[test]
    fn dp_grads_ranges_not_extracted() {
        let lib =
            BlockLibrary::extract(&annotated_trace(), Parallelism::new(1, 1, 1).unwrap()).unwrap();
        assert_eq!(lib.len(), 1); // only the layer block
    }

    #[test]
    fn host_profile_fitted_from_trace() {
        let lib =
            BlockLibrary::extract(&annotated_trace(), Parallelism::new(1, 1, 1).unwrap()).unwrap();
        assert_eq!(lib.host.cpu_op, Dur::from_us(6));
        assert_eq!(lib.host.launch, Dur::from_us(4));
        // No record/wait events in the trace: default used.
        assert_eq!(lib.host.event_call, HostProfile::default().event_call);
    }

    #[test]
    fn library_round_trips_and_digest_is_stable() {
        let lib =
            BlockLibrary::extract(&annotated_trace(), Parallelism::new(1, 1, 1).unwrap()).unwrap();
        let json = serde_json::to_string(&lib).expect("library serializes");
        let back: BlockLibrary = serde_json::from_str(&json).expect("library parses");
        assert_eq!(back, lib);
        assert_eq!(back.digest(), lib.digest());
        // Deterministic encoding: re-serializing reproduces the bytes.
        assert_eq!(serde_json::to_string(&back).expect("reserialize"), json);

        // The digest reacts to content changes.
        let mut other = back.clone();
        other.host.launch = Dur::from_us(999);
        assert_ne!(other.digest(), lib.digest());
    }

    #[test]
    fn unannotated_trace_is_an_error() {
        let mut r = RankTrace::new(0);
        r.push(TraceEvent::cpu_op("op", Ts(0), Dur(1000), ThreadId(1)));
        let mut c = ClusterTrace::new("bare");
        c.push_rank(r);
        let err = BlockLibrary::extract(&c, Parallelism::new(1, 1, 1).unwrap()).unwrap_err();
        assert!(matches!(err, CoreError::MissingAnnotations { .. }));
    }
}
