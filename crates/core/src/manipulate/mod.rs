//! Graph manipulation (§3.4): generating execution graphs for *new*
//! configurations out of an existing profiled trace.
//!
//! The paper's interface lets users "specify new model
//! configurations, after which it manipulates the existing execution
//! graph to generate a new one reflecting the changes". Supported
//! changes mirror the paper's evaluation:
//!
//! * [`Transform::DataParallel`] — Figure 7a: scale the data-parallel
//!   degree; only communication costs change;
//! * [`Transform::PipelineParallel`] — Figure 7b: re-partition layers
//!   into stages under a regenerated 1F1B schedule;
//! * [`Transform::NumLayers`] — Figure 8 (V1/V2): duplicate or drop
//!   transformer layers;
//! * [`Transform::HiddenSize`] — Figure 8 (V3/V4): change model width,
//!   re-pricing shape-sensitive kernels;
//! * [`Transform::Microbatches`] — change the per-iteration
//!   micro-batch count;
//! * [`Transform::TensorParallel`] — the paper's stated future work:
//!   rescale the TP degree (`tp > 1 → tp' > 1`), re-pricing every
//!   sharded kernel and re-grouping TP collectives;
//! * [`Transform::SeqLen`] — change the training sequence length,
//!   re-pricing attention quadratically;
//! * [`whatif`] — operator-level studies (e.g. "what if GEMMs ran 2×
//!   faster?", §5).
//!
//! TP changes that alter the collective *structure* (`tp = 1 ↔ tp >
//! 1`) are rejected: they would require inserting or deleting
//! all-reduces inside recorded blocks, which a trace-driven method
//! cannot do faithfully (the paper rejects all TP changes for this
//! reason; we lift the restriction only where structure is preserved).

mod blocks;
mod reassemble;
pub mod whatif;

pub use blocks::{value_digest, Block, BlockKey, BlockKind, BlockLibrary, HostProfile};
pub use reassemble::{
    kernel_class_of_op, reassemble, reassemble_with_library, regenerated_block_ops, ReassembleSpec,
};

use crate::error::CoreError;
use crate::replay::{Lumos, Replayed};
use lumos_cost::{CostModel, LookupCostModel};
use lumos_model::{Parallelism, TrainingSetup};
use lumos_trace::ClusterTrace;

/// One configuration change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transform {
    /// Set the data-parallel degree.
    DataParallel {
        /// New DP degree.
        dp: u32,
    },
    /// Set the pipeline-parallel degree (micro-batch count is kept).
    PipelineParallel {
        /// New PP degree.
        pp: u32,
    },
    /// Set the tensor-parallel degree — the paper's stated future work
    /// (§3.4). Supported for rescales that preserve the collective
    /// structure (`tp > 1 → tp' > 1`): every TP-sharded kernel is
    /// re-priced at its new shard shape and TP collectives are
    /// re-grouped and re-priced at the new membership.
    TensorParallel {
        /// New TP degree.
        tp: u32,
    },
    /// Set the transformer layer count.
    NumLayers {
        /// New layer count.
        layers: u32,
    },
    /// Set the hidden and feed-forward sizes.
    HiddenSize {
        /// New `d_model`.
        hidden: u64,
        /// New `d_ffn`.
        ffn: u64,
    },
    /// Set the number of micro-batches per iteration.
    Microbatches {
        /// New micro-batch count.
        num: u32,
    },
    /// Set the sequence length. Attention kernels are re-priced at
    /// their quadratic new shapes; GEMM/pointwise kernels and
    /// communication payloads scale linearly.
    SeqLen {
        /// New sequence length in tokens.
        seq_len: u64,
    },
}

/// Applies transforms to a setup, producing the target setup.
///
/// # Errors
///
/// Returns [`CoreError::InvalidTransform`] for zero degrees and
/// propagates validity errors of the resulting setup.
pub fn apply_transforms(
    setup: &TrainingSetup,
    transforms: &[Transform],
) -> Result<TrainingSetup, CoreError> {
    let mut new = setup.clone();
    for t in transforms {
        match *t {
            Transform::DataParallel { dp } => {
                new.parallelism = Parallelism::new(new.parallelism.tp, new.parallelism.pp, dp)?;
            }
            Transform::PipelineParallel { pp } => {
                new.parallelism = Parallelism::new(new.parallelism.tp, pp, new.parallelism.dp)?;
            }
            Transform::TensorParallel { tp } => {
                new.parallelism = Parallelism::new(tp, new.parallelism.pp, new.parallelism.dp)?;
            }
            Transform::NumLayers { layers } => {
                if layers == 0 {
                    return Err(CoreError::InvalidTransform {
                        reason: "layer count must be positive".to_string(),
                    });
                }
                new.model.num_layers = layers;
                new.model.name = format!("{} ({layers}L)", setup.model.name);
            }
            Transform::HiddenSize { hidden, ffn } => {
                if hidden == 0 || ffn == 0 {
                    return Err(CoreError::InvalidTransform {
                        reason: "hidden/ffn sizes must be positive".to_string(),
                    });
                }
                new.model.hidden_size = hidden;
                new.model.ffn_size = ffn;
                new.model.name = format!("{} (d={hidden})", setup.model.name);
            }
            Transform::Microbatches { num } => {
                if num == 0 {
                    return Err(CoreError::InvalidTransform {
                        reason: "micro-batch count must be positive".to_string(),
                    });
                }
                new.batch.num_microbatches = num;
            }
            Transform::SeqLen { seq_len } => {
                if seq_len == 0 {
                    return Err(CoreError::InvalidTransform {
                        reason: "sequence length must be positive".to_string(),
                    });
                }
                new.batch.seq_len = seq_len;
            }
        }
    }
    new.validate()?;
    Ok(new)
}

/// The proportional old → new layer map reassembly plans with: new
/// layer `l` sources its blocks from old layer `(l·old)/new`. Public
/// so cost consumers (e.g. the search engine's lower bound) map layers
/// exactly the way [`plan`] does, without cloning setups.
pub fn proportional_layer_map(old_layers: u32, new_layers: u32) -> Vec<u32> {
    let (old, new) = (old_layers as u64, new_layers as u64);
    (0..new).map(|l| ((l * old) / new) as u32).collect()
}

/// Builds the reassembly plan for an old → new setup pair.
pub fn plan(old: &TrainingSetup, new: &TrainingSetup) -> ReassembleSpec {
    let layer_map = proportional_layer_map(old.model.num_layers, new.model.num_layers);
    let tp_rescale = new.parallelism.tp != old.parallelism.tp;
    let recost_kernels = tp_rescale
        || new.model.hidden_size != old.model.hidden_size
        || new.model.ffn_size != old.model.ffn_size
        || new.batch.seq_len != old.batch.seq_len
        || new.batch.microbatch_size != old.batch.microbatch_size;
    ReassembleSpec {
        old: old.clone(),
        new: new.clone(),
        layer_map,
        recost_kernels,
        allow_tp_rescale: tp_rescale,
    }
}

/// A completed prediction for a new configuration.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The target configuration.
    pub setup: TrainingSetup,
    /// The synthesized trace for the target configuration.
    pub trace: ClusterTrace,
    /// Its replay (graph + simulated schedule + simulated trace).
    pub replayed: Replayed,
}

impl Prediction {
    /// Predicted iteration time.
    pub fn makespan(&self) -> lumos_trace::Dur {
        self.replayed.makespan()
    }
}

impl Lumos {
    /// Predicts performance under `transforms` applied to the
    /// deployment that produced `trace` (§3.4 + §3.5).
    ///
    /// `fallback` prices kernels absent from the source trace (the
    /// paper's in-house fleet model); recorded shapes reuse recorded
    /// durations through a [`LookupCostModel`] fitted on the fly.
    ///
    /// # Errors
    ///
    /// Returns transform-validation, extraction, and simulation
    /// failures.
    pub fn predict<C: CostModel>(
        &self,
        trace: &ClusterTrace,
        setup: &TrainingSetup,
        transforms: &[Transform],
        fallback: C,
    ) -> Result<Prediction, CoreError> {
        let new_setup = apply_transforms(setup, transforms)?;
        let spec = plan(setup, &new_setup);
        let gpus_per_node = 8;
        let lookup = LookupCostModel::fit_from_trace(trace, fallback, gpus_per_node);
        let predicted_trace = reassemble(trace, &spec, &lookup)?;
        let label = predicted_trace.label.clone();
        let graph = self.build_graph(&predicted_trace)?;
        let replayed = self.replay_graph(graph, &label)?;
        Ok(Prediction {
            setup: new_setup,
            trace: predicted_trace,
            replayed,
        })
    }

    /// [`Lumos::predict`] against a pre-extracted [`BlockLibrary`] and
    /// a prebuilt cost model — the calibrate-once path: when the
    /// library and cost model were fitted from a trace (e.g. loaded
    /// from a calibration artifact), the prediction is bit-identical
    /// to [`Lumos::predict`] on that trace, without re-ingesting it.
    ///
    /// # Errors
    ///
    /// Returns transform-validation, reassembly, and simulation
    /// failures.
    pub fn predict_with_library<C: CostModel>(
        &self,
        library: &BlockLibrary,
        setup: &TrainingSetup,
        transforms: &[Transform],
        cost: &C,
    ) -> Result<Prediction, CoreError> {
        let new_setup = apply_transforms(setup, transforms)?;
        let spec = plan(setup, &new_setup);
        let predicted_trace = reassemble_with_library(library, &spec, cost)?;
        let label = predicted_trace.label.clone();
        let graph = self.build_graph(&predicted_trace)?;
        let replayed = self.replay_graph(graph, &label)?;
        Ok(Prediction {
            setup: new_setup,
            trace: predicted_trace,
            replayed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_model::{BatchConfig, ModelConfig, ScheduleKind};

    fn setup() -> TrainingSetup {
        TrainingSetup {
            model: ModelConfig::tiny(),
            parallelism: Parallelism::new(1, 2, 2).unwrap(),
            batch: BatchConfig {
                seq_len: 128,
                microbatch_size: 1,
                num_microbatches: 4,
            },
            schedule: ScheduleKind::OneFOneB,
        }
    }

    #[test]
    fn transforms_compose() {
        let new = apply_transforms(
            &setup(),
            &[
                Transform::DataParallel { dp: 4 },
                Transform::Microbatches { num: 8 },
            ],
        )
        .unwrap();
        assert_eq!(new.parallelism.dp, 4);
        assert_eq!(new.batch.num_microbatches, 8);
        assert_eq!(new.parallelism.pp, 2);
    }

    #[test]
    fn layer_transform_renames_model() {
        let new = apply_transforms(&setup(), &[Transform::NumLayers { layers: 4 }]).unwrap();
        assert_eq!(new.model.num_layers, 4);
        assert!(new.model.name.contains("4L"));
    }

    #[test]
    fn invalid_transforms_rejected() {
        assert!(apply_transforms(&setup(), &[Transform::NumLayers { layers: 0 }]).is_err());
        assert!(apply_transforms(&setup(), &[Transform::Microbatches { num: 0 }]).is_err());
        // 3 stages cannot divide 2 layers.
        assert!(apply_transforms(&setup(), &[Transform::PipelineParallel { pp: 3 }]).is_err());
    }

    #[test]
    fn plan_builds_proportional_layer_map() {
        let old = setup();
        let new = apply_transforms(&old, &[Transform::NumLayers { layers: 4 }]).unwrap();
        let spec = plan(&old, &new);
        // 2 source layers spread across 4 new layers.
        assert_eq!(spec.layer_map, vec![0, 0, 1, 1]);
        assert!(!spec.recost_kernels);

        let wider = apply_transforms(
            &old,
            &[Transform::HiddenSize {
                hidden: 512,
                ffn: 2048,
            }],
        )
        .unwrap();
        let spec = plan(&old, &wider);
        assert!(spec.recost_kernels);
        assert_eq!(spec.layer_map, vec![0, 1]);
    }

    #[test]
    fn tp_structural_change_rejected_by_spec() {
        // tp 1 → 2 inserts collectives into recorded blocks: rejected
        // even though rescaling is generally supported.
        let old = setup();
        let mut new = old.clone();
        new.parallelism = Parallelism::new(2, 2, 2).unwrap();
        new.model.num_heads = 4;
        let spec = plan(&old, &new);
        assert!(matches!(
            spec.validate(),
            Err(CoreError::InvalidTransform { .. })
        ));
    }

    #[test]
    fn tp_rescale_spec_accepted_when_structure_preserved() {
        let mut old = setup();
        old.parallelism = Parallelism::new(2, 2, 1).unwrap();
        let new = apply_transforms(&old, &[Transform::TensorParallel { tp: 4 }]).unwrap();
        assert_eq!(new.parallelism.tp, 4);
        let spec = plan(&old, &new);
        assert!(spec.recost_kernels);
        assert!(spec.allow_tp_rescale);
        spec.validate().unwrap();
    }

    #[test]
    fn tp_rescale_requires_allow_flag() {
        // Paper-strict behavior: a hand-built spec with a TP change
        // but no allow flag is rejected.
        let mut old = setup();
        old.parallelism = Parallelism::new(2, 2, 1).unwrap();
        let new = apply_transforms(&old, &[Transform::TensorParallel { tp: 4 }]).unwrap();
        let mut spec = plan(&old, &new);
        spec.allow_tp_rescale = false;
        assert!(matches!(
            spec.validate(),
            Err(CoreError::InvalidTransform { .. })
        ));
    }

    #[test]
    fn tp_rescale_rejects_indivisible_heads() {
        let mut old = setup();
        old.parallelism = Parallelism::new(2, 2, 1).unwrap();
        // tiny model has 4 heads; tp=8 cannot shard them.
        assert!(apply_transforms(&old, &[Transform::TensorParallel { tp: 8 }]).is_err());
    }

    #[test]
    fn seq_len_transform_triggers_recost() {
        let old = setup();
        let new = apply_transforms(&old, &[Transform::SeqLen { seq_len: 256 }]).unwrap();
        assert_eq!(new.batch.seq_len, 256);
        let spec = plan(&old, &new);
        assert!(spec.recost_kernels);
        assert!(!spec.allow_tp_rescale);
        spec.validate().unwrap();
        assert!(apply_transforms(&old, &[Transform::SeqLen { seq_len: 0 }]).is_err());
    }
}
