//! Reassembly: building the trace of a *new* configuration out of the
//! blocks of a profiled one (§3.4).
//!
//! For every rank of the target deployment, the reassembler replays
//! the lowering structure of a Megatron trainer — new 1F1B schedule,
//! pipeline transfers, gradient buckets, optimizer phase — but fills
//! the compute content with recorded blocks from the source trace:
//!
//! * layer blocks move to their new stage ("the corresponding tasks
//!   are reassigned to their new stages"), duplicated when the layer
//!   count grows;
//! * recorded kernel durations travel with their blocks; only
//!   shape-changed kernels and rescaled collectives are re-priced
//!   through the supplied [`CostModel`] ("we similarly update the
//!   execution times for these kernels using the in-house performance
//!   model", §4.3.2);
//! * communication glue (send/recv pairs, data-parallel buckets,
//!   optimizer scaffolding) is synthesized fresh at the new scale,
//!   "inserting communication tasks at appropriate points";
//! * correlation ids, CUDA event ids, and collective sequence numbers
//!   are renumbered consistently so the result is a valid trace whose
//!   dependency pattern matches the original's.

use crate::error::CoreError;
use crate::manipulate::blocks::{Block, BlockKey, BlockKind, BlockLibrary};
use crate::task::Phase;
use lumos_cost::CostModel;
use lumos_model::ops::{self, OpBody, OpDesc};
use lumos_model::{
    CommScope, GroupRegistry, PipelineSchedule, RankCoords, ScheduleItem, TrainingSetup,
};
use lumos_trace::{
    ClusterTrace, CollectiveKind, CommMeta, CudaRuntimeKind, Dur, EventKind, KernelClass,
    RankTrace, StreamId, ThreadId, TraceEvent, Ts,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Stream conventions shared with the trace producers.
mod streams {
    use lumos_trace::StreamId;
    pub const COMPUTE: StreamId = StreamId(7);
    pub const DP_COMM: StreamId = StreamId(17);
    pub const PP_FWD: StreamId = StreamId(21);
    pub const PP_BWD: StreamId = StreamId(22);
}

const MAIN: ThreadId = ThreadId(1);
const BACKWARD: ThreadId = ThreadId(2);
/// Launch-to-kernel-start gap used when placing kernels on the
/// synthetic timeline (the simulator recomputes true times).
const LAUNCH_GAP: Dur = Dur(2_000);
/// Placeholder duration for blocking syncs (recomputed by replay).
const SYNC_PLACEHOLDER: Dur = Dur(2_000);

/// A fully-resolved reassembly request.
#[derive(Debug, Clone)]
pub struct ReassembleSpec {
    /// The deployment the trace was profiled on.
    pub old: TrainingSetup,
    /// The target deployment.
    pub new: TrainingSetup,
    /// For each new layer index, the source layer whose blocks supply
    /// its tasks.
    pub layer_map: Vec<u32>,
    /// Re-price every shape-sensitive kernel against the new model
    /// (set by hidden-size and tensor-parallel transforms).
    pub recost_kernels: bool,
    /// Permit tensor-parallel rescaling. The paper rejects TP changes
    /// ("we currently do not support modifications to tensor
    /// parallelism … we leave the support for it as our future work");
    /// this repository implements that future work for rescales that
    /// preserve the collective structure (`tp > 1 → tp' > 1`), gated
    /// behind this flag so the paper's strict behavior remains the
    /// default for hand-built specs.
    pub allow_tp_rescale: bool,
}

impl ReassembleSpec {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidTransform`] for unsupported or
    /// inconsistent requests (disallowed tensor-parallel changes, bad
    /// layer maps).
    pub fn validate(&self) -> Result<(), CoreError> {
        let (otp, ntp) = (self.old.parallelism.tp, self.new.parallelism.tp);
        if ntp != otp {
            if !self.allow_tp_rescale {
                return Err(CoreError::InvalidTransform {
                    reason: format!(
                        "tensor parallelism changes are not enabled for this spec (old {otp}, new {ntp}); use Transform::TensorParallel or set allow_tp_rescale"
                    ),
                });
            }
            if (otp == 1) != (ntp == 1) {
                return Err(CoreError::InvalidTransform {
                    reason: format!(
                        "tensor-parallel rescale {otp} → {ntp} changes the collective structure (TP all-reduces would have to be inserted or deleted inside recorded blocks); only tp>1 → tp'>1 rescales are supported"
                    ),
                });
            }
            if !self.recost_kernels {
                return Err(CoreError::InvalidTransform {
                    reason: "tensor-parallel rescale requires kernel re-costing".to_string(),
                });
            }
        }
        self.new.validate()?;
        if self.layer_map.len() != self.new.model.num_layers as usize {
            return Err(CoreError::InvalidTransform {
                reason: format!(
                    "layer map covers {} layers, model has {}",
                    self.layer_map.len(),
                    self.new.model.num_layers
                ),
            });
        }
        if let Some(&bad) = self
            .layer_map
            .iter()
            .find(|&&src| src >= self.old.model.num_layers)
        {
            return Err(CoreError::InvalidTransform {
                reason: format!(
                    "layer map references source layer {bad}, trace has {}",
                    self.old.model.num_layers
                ),
            });
        }
        Ok(())
    }
}

/// Rebuilds a cluster trace for the target deployment from the blocks
/// of `trace`.
///
/// # Errors
///
/// Returns spec-validation failures and missing-block errors.
pub fn reassemble<C: CostModel>(
    trace: &ClusterTrace,
    spec: &ReassembleSpec,
    cost: &C,
) -> Result<ClusterTrace, CoreError> {
    // Validate before paying the O(trace-events) extraction walk, and
    // so invalid specs keep reporting spec errors even on traces that
    // would also fail extraction.
    spec.validate()?;
    let library = BlockLibrary::extract(trace, spec.old.parallelism)?;
    reassemble_with_library(&library, spec, cost)
}

/// [`reassemble`] against a pre-extracted [`BlockLibrary`].
///
/// Extraction walks every event of the source trace; callers pricing
/// many configurations from the *same* trace (the `lumos-search`
/// evaluator) extract once and share the library across candidates
/// instead of re-extracting per call. `library` must come from
/// [`BlockLibrary::extract`] on the trace `spec.old` describes.
///
/// # Errors
///
/// Returns spec-validation failures and missing-block errors.
pub fn reassemble_with_library<C: CostModel>(
    library: &BlockLibrary,
    spec: &ReassembleSpec,
    cost: &C,
) -> Result<ClusterTrace, CoreError> {
    spec.validate()?;
    let schedule = PipelineSchedule::generate(
        spec.new.schedule,
        spec.new.parallelism.pp,
        spec.new.batch.num_microbatches,
    )?;
    let registry = GroupRegistry::new(spec.new.parallelism);

    let mut out = ClusterTrace::new(format!("predicted {}", spec.new.label()));
    for rank in spec.new.parallelism.all_ranks() {
        let emitter = RankEmitter {
            spec,
            library,
            cost,
            registry,
            schedule: &schedule,
            coords: spec.new.parallelism.coords(rank),
            rank,
            events: Vec::new(),
            main_cursor: Ts::ZERO,
            bwd_cursor: Ts::ZERO,
            stream_cursor: HashMap::new(),
            next_corr: 1,
            next_event: 1,
            tp_seq: 0,
            dp_seq: 0,
            names: HashMap::new(),
        };
        out.push_rank(emitter.emit()?);
    }
    Ok(out)
}

struct RankEmitter<'a, C> {
    spec: &'a ReassembleSpec,
    library: &'a BlockLibrary,
    cost: &'a C,
    registry: GroupRegistry,
    schedule: &'a PipelineSchedule,
    coords: RankCoords,
    rank: u32,
    events: Vec<TraceEvent>,
    main_cursor: Ts,
    bwd_cursor: Ts,
    stream_cursor: HashMap<StreamId, Ts>,
    next_corr: u64,
    next_event: u64,
    tp_seq: u32,
    dp_seq: u32,
    names: HashMap<String, Arc<str>>,
}

impl<C: CostModel> RankEmitter<'_, C> {
    fn emit(mut self) -> Result<RankTrace, CoreError> {
        let new = &self.spec.new;
        let stage = self.coords.pp;
        let last_mb = new.batch.num_microbatches - 1;
        let iter_start = self.main_cursor;

        let order: Vec<ScheduleItem> = self.schedule.stage(stage).expect("stage in range").to_vec();
        for item in order {
            match item {
                ScheduleItem::Forward { mb } => self.emit_forward(mb)?,
                ScheduleItem::Backward { mb } => self.emit_backward(mb, mb == last_mb)?,
                // Recorded backward blocks already contain the
                // weight-grad work, so split-backward skeletons paste
                // nothing here; the schedule's replay adjustment
                // re-shapes the resulting 1F1B-like makespan.
                ScheduleItem::WeightGrad { .. } => {}
            }
        }
        self.emit_optimizer();
        let iter_end = self.main_cursor.max(self.bwd_cursor);
        self.annotate("iteration", MAIN, iter_start, iter_end);

        let mut trace = RankTrace::new(self.rank);
        trace.extend(self.events);
        trace.sort();
        Ok(trace)
    }

    fn intern(&mut self, name: &str) -> Arc<str> {
        self.names
            .entry(name.to_string())
            .or_insert_with(|| Arc::from(name))
            .clone()
    }

    fn annotate(&mut self, name: &str, tid: ThreadId, start: Ts, end: Ts) {
        let name = self.intern(name);
        self.events
            .push(TraceEvent::annotation(name, start, end - start, tid));
    }

    fn cursor(&mut self, tid: ThreadId) -> &mut Ts {
        if tid == MAIN {
            &mut self.main_cursor
        } else {
            &mut self.bwd_cursor
        }
    }

    fn fresh_event(&mut self) -> u64 {
        let e = self.next_event;
        self.next_event += 1;
        e
    }

    fn fresh_corr(&mut self) -> u64 {
        let c = self.next_corr;
        self.next_corr += 1;
        c
    }

    /// Places a kernel on its stream's synthetic timeline.
    fn place_kernel(&mut self, stream: StreamId, launch_end: Ts, dur: Dur) -> Ts {
        let cursor = self.stream_cursor.entry(stream).or_insert(Ts::ZERO);
        let start = (*cursor).max(launch_end + LAUNCH_GAP);
        *cursor = start + dur;
        start
    }

    // --- Synthesized host primitives (profile-fitted durations). ---

    fn emit_cpu_op(&mut self, tid: ThreadId, name: &str) {
        let dur = self.library.host.cpu_op;
        let name = self.intern(name);
        let ts = *self.cursor(tid);
        self.events.push(TraceEvent::cpu_op(name, ts, dur, tid));
        *self.cursor(tid) = ts + dur;
    }

    fn emit_event_pair(&mut self, tid: ThreadId, from: StreamId, to: StreamId) {
        let dur = self.library.host.event_call;
        let event = self.fresh_event();
        let ts = *self.cursor(tid);
        self.events.push(TraceEvent::cuda_runtime(
            CudaRuntimeKind::EventRecord {
                event,
                stream: from,
            },
            ts,
            dur,
            tid,
        ));
        self.events.push(TraceEvent::cuda_runtime(
            CudaRuntimeKind::StreamWaitEvent { stream: to, event },
            ts + dur,
            dur,
            tid,
        ));
        *self.cursor(tid) = ts + dur + dur;
    }

    fn emit_launch(
        &mut self,
        tid: ThreadId,
        name: &str,
        class: KernelClass,
        stream: StreamId,
        dur: Dur,
    ) {
        let launch_dur = self.library.host.launch;
        let corr = self.fresh_corr();
        let ts = *self.cursor(tid);
        self.events.push(
            TraceEvent::cuda_runtime(CudaRuntimeKind::LaunchKernel, ts, launch_dur, tid)
                .with_correlation(corr),
        );
        *self.cursor(tid) = ts + launch_dur;
        let kstart = self.place_kernel(stream, ts + launch_dur, dur);
        let name = self.intern(name);
        self.events.push(
            TraceEvent::kernel(name, kstart, dur, stream)
                .with_correlation(corr)
                .with_class(class),
        );
    }

    fn emit_stream_sync(&mut self, tid: ThreadId, stream: StreamId) {
        let ts = *self.cursor(tid);
        self.events.push(TraceEvent::cuda_runtime(
            CudaRuntimeKind::StreamSynchronize { stream },
            ts,
            SYNC_PLACEHOLDER,
            tid,
        ));
        *self.cursor(tid) = ts + SYNC_PLACEHOLDER;
    }

    fn emit_device_sync(&mut self, tid: ThreadId) {
        let ts = *self.cursor(tid);
        self.events.push(TraceEvent::cuda_runtime(
            CudaRuntimeKind::DeviceSynchronize,
            ts,
            SYNC_PLACEHOLDER,
            tid,
        ));
        *self.cursor(tid) = ts + SYNC_PLACEHOLDER;
    }

    // --- Pipeline transfers (synthesized at the new scale). ---

    fn emit_pp_transfer(&mut self, upstream_stage: u32, mb: u32, backward: bool, is_recv: bool) {
        let new = &self.spec.new;
        let stream = if backward {
            streams::PP_BWD
        } else {
            streams::PP_FWD
        };
        let bytes = ops::pp_activation_bytes(&new.model, &new.batch);
        let group = self
            .registry
            .group_id(CommScope::PpPair { upstream_stage }, self.coords);
        let members = self
            .registry
            .members(CommScope::PpPair { upstream_stage }, self.coords);
        let seq = 2 * mb + backward as u32;
        let dur = self
            .cost
            .collective_cost(CollectiveKind::SendRecv, bytes, &members);
        let cpu_name = match (is_recv, backward) {
            (true, false) => "recv_forward",
            (false, false) => "send_forward",
            (true, true) => "recv_backward",
            (false, true) => "send_backward",
        };
        self.emit_cpu_op(MAIN, cpu_name);
        if !is_recv {
            self.emit_event_pair(MAIN, streams::COMPUTE, stream);
        }
        self.emit_launch(
            MAIN,
            CollectiveKind::SendRecv.kernel_name(),
            KernelClass::Collective(CommMeta {
                kind: CollectiveKind::SendRecv,
                group,
                seq,
                bytes,
            }),
            stream,
            dur,
        );
        if is_recv {
            self.emit_event_pair(MAIN, stream, streams::COMPUTE);
        }
    }

    // --- Data-parallel gradient buckets (synthesized). ---

    fn emit_dp_bucket(&mut self, tid: ThreadId, annotation: &str, params: u64) {
        let start = *self.cursor(tid);
        let bytes = params * ops::GRAD_BYTES;
        let group = self.registry.group_id(CommScope::Dp, self.coords);
        let members = self.registry.members(CommScope::Dp, self.coords);
        let dur = self
            .cost
            .collective_cost(CollectiveKind::AllReduce, bytes, &members);
        let seq = self.dp_seq;
        self.dp_seq += 1;
        self.emit_cpu_op(tid, "nccl:all_reduce_dp_grads");
        self.emit_event_pair(tid, streams::COMPUTE, streams::DP_COMM);
        self.emit_launch(
            tid,
            CollectiveKind::AllReduce.kernel_name(),
            KernelClass::Collective(CommMeta {
                kind: CollectiveKind::AllReduce,
                group,
                seq,
                bytes,
            }),
            streams::DP_COMM,
            dur,
        );
        let end = *self.cursor(tid);
        self.annotate(annotation, tid, start, end);
    }

    // --- Block pasting. ---

    /// Regenerated op list for a block under the *new* model, used to
    /// re-price shape-changed kernels.
    fn recost_ops(&self, kind: BlockKind, phase: Phase) -> Option<Vec<OpDesc>> {
        if !self.spec.recost_kernels {
            return None;
        }
        regenerated_block_ops(&self.spec.new, kind, phase)
    }

    /// Looks up the source block for (kind-of-new-content, mb).
    fn source_block(&self, kind: BlockKind, mb: u32, phase: Phase) -> Result<&'_ Block, CoreError> {
        let old = &self.spec.old;
        let src_kind = match kind {
            BlockKind::Layer(new_layer) => {
                BlockKind::Layer(self.spec.layer_map[new_layer as usize])
            }
            other => other,
        };
        let key = BlockKey {
            // TP rescales map the new shard onto a recorded one; its
            // kernels are all re-priced, so any source shard serves.
            tp: self.coords.tp % old.parallelism.tp,
            dp: self.coords.dp % old.parallelism.dp,
            kind: src_kind,
            mb: mb % old.batch.num_microbatches,
            phase,
        };
        self.library
            .get(&key)
            .ok_or_else(|| CoreError::MissingAnnotations {
                needed: format!("block {key:?} absent from source trace"),
            })
    }

    /// Pastes one block at the thread cursor, renumbering ids and
    /// (optionally) re-pricing kernels against the regenerated op
    /// list.
    fn paste_block(
        &mut self,
        tid: ThreadId,
        kind: BlockKind,
        new_layer_label: Option<u32>,
        mb: u32,
        phase: Phase,
    ) -> Result<(), CoreError> {
        let block = self.source_block(kind, mb, phase)?.clone();
        let recost = self.recost_ops(kind, phase);
        let base = *self.cursor(tid);

        // Pass 1: walk launches in host order (the shared
        // [`Block::launches_in_host_order`] contract), assigning new
        // correlation ids and (class, duration) updates per kernel.
        let launch_events = block.launches_in_host_order();
        // Old correlation -> (new corr, new class, new duration).
        let mut updates: HashMap<u64, (u64, Option<(KernelClass, Dur)>)> = HashMap::new();
        // Kernels by old correlation (for class lookup and collective
        // remap), via the same shared helper cost consumers use.
        let kernels_by_corr = block.kernels_by_correlation();
        let class_of_corr = |corr: u64| -> Option<KernelClass> {
            match kernels_by_corr.get(&corr)?.kind {
                EventKind::Kernel { class, .. } => Some(class),
                _ => None,
            }
        };
        let mut op_iter = recost.as_deref().map(|ops| ops.iter());
        for launch in &launch_events {
            let old_corr = launch.kind.correlation().unwrap_or(0);
            let new_corr = self.fresh_corr();
            let old_class = class_of_corr(old_corr);
            let next_op: Option<&OpDesc> = match op_iter.as_mut() {
                Some(it) => {
                    let op = it.next().ok_or_else(|| CoreError::InvalidTransform {
                        reason: format!(
                            "block {kind:?} {phase:?} has more kernels than the regenerated op list"
                        ),
                    })?;
                    Some(op)
                }
                None => None,
            };
            let update = match (old_class, next_op) {
                // Collective: remap group/seq always; re-price when
                // re-costing.
                (Some(KernelClass::Collective(meta)), op) => {
                    let group = self.registry.group_id(CommScope::Tp, self.coords);
                    let members = self.registry.members(CommScope::Tp, self.coords);
                    let seq = self.tp_seq;
                    self.tp_seq += 1;
                    let bytes = match op {
                        Some(OpDesc {
                            body: OpBody::Collective { bytes, .. },
                            ..
                        }) => *bytes,
                        Some(other) => {
                            return Err(CoreError::InvalidTransform {
                                reason: format!(
                                    "op/kernel mismatch in {kind:?} {phase:?}: collective kernel vs op `{}`",
                                    other.name
                                ),
                            })
                        }
                        None => meta.bytes,
                    };
                    let class = KernelClass::Collective(CommMeta {
                        kind: meta.kind,
                        group,
                        seq,
                        bytes,
                    });
                    let dur = if op.is_some() {
                        self.cost.collective_cost(meta.kind, bytes, &members)
                    } else {
                        kernel_dur(&block, old_corr)
                    };
                    Some((class, dur))
                }
                // Compute kernel with re-costing: take the new shape.
                (Some(_), Some(op)) => {
                    let class = class_of_body(&op.body).ok_or_else(|| {
                        CoreError::InvalidTransform {
                            reason: format!(
                                "op/kernel mismatch in {kind:?} {phase:?}: compute kernel vs collective op `{}`",
                                op.name
                            ),
                        }
                    })?;
                    Some((class, self.cost.compute_cost(&class)))
                }
                // Compute kernel without re-costing: keep recorded.
                (Some(_), None) => None,
                (None, _) => None,
            };
            updates.insert(old_corr, (new_corr, update));
        }
        if let Some(mut it) = op_iter {
            if it.next().is_some() {
                return Err(CoreError::InvalidTransform {
                    reason: format!(
                        "block {kind:?} {phase:?} has fewer kernels than the regenerated op list"
                    ),
                });
            }
        }

        // Pass 2: emit everything shifted to the cursor, with fresh
        // CUDA event ids and updated kernels.
        let mut event_map: HashMap<u64, u64> = HashMap::new();
        let mut kernels: Vec<TraceEvent> = Vec::new();
        // New correlation -> launch end time, recorded as launches are
        // emitted (kernels are placed afterwards).
        let mut launch_ts: HashMap<u64, Ts> = HashMap::new();
        for e in &block.events {
            match e.kind {
                EventKind::Kernel {
                    stream,
                    correlation,
                    class,
                } => {
                    let (new_corr, update) = updates[&correlation];
                    let (class, dur) = match update {
                        Some((c, d)) => (c, d),
                        None => (class, e.dur),
                    };
                    let mut k = e.clone();
                    k.dur = dur;
                    k.kind = EventKind::Kernel {
                        stream,
                        correlation: new_corr,
                        class,
                    };
                    kernels.push(k);
                }
                EventKind::CudaRuntime {
                    tid: _,
                    kind,
                    correlation,
                } => {
                    let mut ev = e.clone();
                    ev.ts = base + Dur(e.ts.0);
                    let new_kind = match kind {
                        CudaRuntimeKind::EventRecord { event, stream } => {
                            let id = *event_map.entry(event).or_insert_with(|| {
                                let e = self.next_event;
                                self.next_event += 1;
                                e
                            });
                            CudaRuntimeKind::EventRecord { event: id, stream }
                        }
                        CudaRuntimeKind::StreamWaitEvent { stream, event } => {
                            let id = *event_map.entry(event).or_insert_with(|| {
                                let e = self.next_event;
                                self.next_event += 1;
                                e
                            });
                            CudaRuntimeKind::StreamWaitEvent { stream, event: id }
                        }
                        other => other,
                    };
                    let new_corr = if kind.launches_work() {
                        updates.get(&correlation).map_or(0, |&(c, _)| c)
                    } else {
                        0
                    };
                    if kind.launches_work() && new_corr != 0 {
                        launch_ts.insert(new_corr, ev.end());
                    }
                    ev.kind = EventKind::CudaRuntime {
                        tid,
                        kind: new_kind,
                        correlation: new_corr,
                    };
                    self.events.push(ev);
                }
                EventKind::CpuOp { .. } => {
                    let mut ev = e.clone();
                    ev.ts = base + Dur(e.ts.0);
                    ev.kind = EventKind::CpuOp { tid };
                    self.events.push(ev);
                }
                EventKind::UserAnnotation { .. } => {}
            }
        }
        // Kernels: place on stream cursors in launch order, using the
        // launch's new host timestamp.
        kernels.sort_by_key(|k| {
            k.kind
                .correlation()
                .and_then(|c| launch_ts.get(&c).copied())
                .unwrap_or(k.ts)
        });
        for mut k in kernels {
            let EventKind::Kernel {
                stream,
                correlation,
                ..
            } = k.kind
            else {
                unreachable!()
            };
            let le = launch_ts.get(&correlation).copied().unwrap_or(base);
            k.ts = self.place_kernel(stream, le, k.dur);
            self.events.push(k);
        }

        *self.cursor(tid) = base + block.host_span;

        // Annotation marking the pasted block under its *new* name.
        let label = match (kind, new_layer_label) {
            (BlockKind::Layer(_), Some(l)) => match phase {
                Phase::Forward => format!("layer={l} fwd mb={mb}"),
                _ => format!("layer={l} bwd mb={mb}"),
            },
            (BlockKind::Embed, _) => match phase {
                Phase::Forward => format!("embed fwd mb={mb}"),
                _ => format!("embed bwd mb={mb}"),
            },
            (BlockKind::Head, _) => match phase {
                Phase::Forward => format!("head fwd mb={mb}"),
                _ => format!("head bwd mb={mb}"),
            },
            (BlockKind::Layer(_), None) => unreachable!("layer blocks carry labels"),
        };
        let end = *self.cursor(tid);
        self.annotate(&label, tid, base, end);
        Ok(())
    }

    // --- Schedule-item emission. ---

    fn emit_forward(&mut self, mb: u32) -> Result<(), CoreError> {
        let new = &self.spec.new;
        let stage = self.coords.pp;
        let start = self.main_cursor;
        if stage > 0 {
            self.emit_pp_transfer(stage - 1, mb, false, true);
        }
        if stage == 0 {
            self.paste_block(MAIN, BlockKind::Embed, None, mb, Phase::Forward)?;
        }
        let layers: Vec<u32> = new
            .parallelism
            .stage_layers(new.model.num_layers, stage)
            .collect();
        for l in layers {
            self.paste_block(MAIN, BlockKind::Layer(l), Some(l), mb, Phase::Forward)?;
        }
        if stage == new.parallelism.pp - 1 {
            self.paste_block(MAIN, BlockKind::Head, None, mb, Phase::Forward)?;
        }
        if stage + 1 < new.parallelism.pp {
            self.emit_pp_transfer(stage, mb, false, false);
        }
        let end = self.main_cursor;
        self.annotate(&format!("fwd mb={mb}"), MAIN, start, end);
        Ok(())
    }

    fn emit_backward(&mut self, mb: u32, is_last_mb: bool) -> Result<(), CoreError> {
        let new = self.spec.new.clone();
        let stage = self.coords.pp;
        if stage + 1 < new.parallelism.pp {
            self.emit_pp_transfer(stage, mb, true, true);
        }
        // Hand off to the backward thread.
        self.bwd_cursor = self.bwd_cursor.max(self.main_cursor);
        let bwd_start = self.bwd_cursor;
        if stage == new.parallelism.pp - 1 {
            self.paste_block(BACKWARD, BlockKind::Head, None, mb, Phase::Backward)?;
        }
        let layers: Vec<u32> = new
            .parallelism
            .stage_layers(new.model.num_layers, stage)
            .rev()
            .collect();
        let dp = new.parallelism.dp;
        let layer_params = new.model.params_per_layer() / new.parallelism.tp as u64;
        for l in layers {
            self.paste_block(BACKWARD, BlockKind::Layer(l), Some(l), mb, Phase::Backward)?;
            if is_last_mb && dp > 1 {
                self.emit_dp_bucket(
                    BACKWARD,
                    &format!("dp_grads layer={l} mb={mb}"),
                    layer_params,
                );
            }
        }
        if stage == 0 {
            self.paste_block(BACKWARD, BlockKind::Embed, None, mb, Phase::Backward)?;
            if is_last_mb && dp > 1 {
                let emb = new.model.params_embedding() / new.parallelism.tp as u64;
                self.emit_dp_bucket(BACKWARD, &format!("dp_grads embed mb={mb}"), emb);
            }
        }
        let bwd_end = self.bwd_cursor;
        self.annotate(&format!("bwd mb={mb}"), BACKWARD, bwd_start, bwd_end);
        // Main thread resumes after the backward completes.
        self.main_cursor = self.main_cursor.max(self.bwd_cursor);
        if stage > 0 {
            self.emit_pp_transfer(stage - 1, mb, true, false);
        }
        Ok(())
    }

    fn emit_optimizer(&mut self) {
        let new = self.spec.new.clone();
        let stage = self.coords.pp;
        let start = self.main_cursor;
        if new.parallelism.dp > 1 {
            self.emit_cpu_op(MAIN, "wait_all_grads");
            self.emit_stream_sync(MAIN, streams::DP_COMM);
        }
        if new.parallelism.pp > 1 && (stage == 0 || stage == new.parallelism.pp - 1) {
            let bytes = new.model.params_embedding() / new.parallelism.tp as u64 * ops::GRAD_BYTES;
            let group = self.registry.group_id(CommScope::Embedding, self.coords);
            let members = self.registry.members(CommScope::Embedding, self.coords);
            let dur = self
                .cost
                .collective_cost(CollectiveKind::AllReduce, bytes, &members);
            self.emit_cpu_op(MAIN, "all_reduce_embedding_grads");
            self.emit_event_pair(MAIN, streams::COMPUTE, streams::DP_COMM);
            self.emit_launch(
                MAIN,
                CollectiveKind::AllReduce.kernel_name(),
                KernelClass::Collective(CommMeta {
                    kind: CollectiveKind::AllReduce,
                    group,
                    seq: 0,
                    bytes,
                }),
                streams::DP_COMM,
                dur,
            );
            self.emit_stream_sync(MAIN, streams::DP_COMM);
        }
        let params = ops::local_params(&new.model, new.parallelism.tp, new.parallelism.pp, stage);
        for op in ops::optimizer_ops(params) {
            self.emit_cpu_op(MAIN, op.name);
            if let Some(class) = class_of_body(&op.body) {
                let dur = self.cost.compute_cost(&class);
                let name = kernel_name_of(&op.body);
                self.emit_launch(MAIN, &name, class, streams::COMPUTE, dur);
            }
        }
        self.emit_device_sync(MAIN);
        let end = self.main_cursor;
        self.annotate("optimizer", MAIN, start, end);
    }
}

fn kernel_dur(block: &Block, corr: u64) -> Dur {
    block
        .events
        .iter()
        .find(|e| e.is_gpu() && e.kind.correlation() == Some(corr))
        .map(|e| e.dur)
        .unwrap_or(Dur::ZERO)
}

/// Maps a compute op body to its kernel class (collectives return
/// `None`) — the shape key a [`CostModel`] prices re-generated ops by.
/// Public so cost consumers (e.g. the search engine's stage-cost memo)
/// price op lists exactly the way reassembly does.
pub fn kernel_class_of_op(body: &OpBody) -> Option<KernelClass> {
    class_of_body(body)
}

/// The op list reassembly regenerates for a block of `kind`/`phase`
/// under `setup` when [`ReassembleSpec::recost_kernels`] is set
/// (`None` for block kinds whose recorded durations are always kept).
/// Public so cost consumers re-price blocks in lockstep with
/// reassembly — a drifted copy of this mapping would silently desync
/// lower bounds from the prices candidates actually simulate under.
pub fn regenerated_block_ops(
    setup: &TrainingSetup,
    kind: BlockKind,
    phase: Phase,
) -> Option<Vec<OpDesc>> {
    let tp = setup.parallelism.tp;
    Some(match (kind, phase) {
        (BlockKind::Layer(_), Phase::Forward) => {
            ops::layer_forward_ops(&setup.model, tp, &setup.batch)
        }
        (BlockKind::Layer(_), Phase::Backward) => {
            ops::layer_backward_ops(&setup.model, tp, &setup.batch)
        }
        (BlockKind::Embed, Phase::Forward) => {
            ops::embedding_forward_ops(&setup.model, &setup.batch)
        }
        (BlockKind::Embed, Phase::Backward) => {
            ops::embedding_backward_ops(&setup.model, &setup.batch)
        }
        (BlockKind::Head, Phase::Forward) => ops::head_forward_ops(&setup.model, tp, &setup.batch),
        (BlockKind::Head, Phase::Backward) => {
            ops::head_backward_ops(&setup.model, tp, &setup.batch)
        }
        _ => return None,
    })
}

/// Maps a compute op body to its kernel class (collectives return
/// `None`).
fn class_of_body(body: &OpBody) -> Option<KernelClass> {
    Some(match *body {
        OpBody::Gemm { m, n, k } => KernelClass::Gemm { m, n, k },
        OpBody::AttentionFwd {
            batch_heads,
            seq,
            head_dim,
        } => KernelClass::AttentionFwd {
            batch_heads,
            seq,
            head_dim,
        },
        OpBody::AttentionBwd {
            batch_heads,
            seq,
            head_dim,
        } => KernelClass::AttentionBwd {
            batch_heads,
            seq,
            head_dim,
        },
        OpBody::AttentionDecode {
            batch_heads,
            kv_len,
            head_dim,
        } => KernelClass::AttentionDecode {
            batch_heads,
            kv_len,
            head_dim,
        },
        OpBody::Elementwise { elems } => KernelClass::Elementwise { elems },
        OpBody::Norm { elems } => KernelClass::Norm { elems },
        OpBody::Softmax { elems } => KernelClass::Softmax { elems },
        OpBody::Embedding { elems } => KernelClass::Embedding { elems },
        OpBody::Optimizer { params } => KernelClass::Optimizer { params },
        OpBody::Collective { .. } => return None,
    })
}

fn kernel_name_of(body: &OpBody) -> String {
    match body {
        OpBody::Gemm { m, n, k } => format!("sm90_xmma_gemm_bf16_{m}x{n}x{k}"),
        OpBody::AttentionFwd { .. } => "flash_fwd_kernel".to_string(),
        OpBody::AttentionBwd { .. } => "flash_bwd_kernel".to_string(),
        OpBody::AttentionDecode { .. } => "paged_attention_decode_kernel".to_string(),
        OpBody::Elementwise { .. } => "vectorized_elementwise_kernel".to_string(),
        OpBody::Norm { .. } => "ln_fwd_bwd_kernel".to_string(),
        OpBody::Softmax { .. } => "softmax_xent_kernel".to_string(),
        OpBody::Embedding { .. } => "embedding_kernel".to_string(),
        OpBody::Optimizer { .. } => "multi_tensor_adam".to_string(),
        OpBody::Collective { op, .. } => format!("nccl_{op:?}"),
    }
}
