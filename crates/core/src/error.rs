//! Error types for graph construction, simulation, and manipulation.

use lumos_trace::TraceError;
use std::error::Error;
use std::fmt;

/// Errors from the Lumos core.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The input trace failed validation.
    Trace(TraceError),
    /// The fixed-dependency graph contains a cycle.
    CyclicGraph {
        /// Number of tasks unreachable by topological order.
        stuck: usize,
    },
    /// A collective instance's member count does not match its
    /// communicator's rank set.
    InconsistentCollective {
        /// Communicator id.
        group: u64,
        /// Instance sequence number.
        seq: u32,
        /// Members observed for this instance.
        members: usize,
        /// Ranks in the communicator.
        expected: usize,
    },
    /// The simulator could not complete all tasks (unsatisfiable
    /// runtime dependencies).
    SimulationStuck {
        /// Completed task count.
        completed: usize,
        /// Total task count.
        total: usize,
    },
    /// A manipulation request was invalid for this trace.
    InvalidTransform {
        /// Human-readable reason.
        reason: String,
    },
    /// Required annotations were missing from the trace.
    MissingAnnotations {
        /// What the manipulation needed.
        needed: String,
    },
    /// A what-if duration-scale factor was negative or not finite.
    InvalidScale(lumos_trace::ScaleError),
    /// Invalid model/deployment configuration.
    Model(lumos_model::ModelError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Trace(e) => write!(f, "trace error: {e}"),
            CoreError::CyclicGraph { stuck } => {
                write!(f, "execution graph has a cycle ({stuck} tasks unordered)")
            }
            CoreError::InconsistentCollective {
                group,
                seq,
                members,
                expected,
            } => write!(
                f,
                "collective group={group} seq={seq} has {members} members, communicator has {expected} ranks"
            ),
            CoreError::SimulationStuck { completed, total } => {
                write!(f, "simulation stalled after {completed}/{total} tasks")
            }
            CoreError::InvalidTransform { reason } => write!(f, "invalid transform: {reason}"),
            CoreError::MissingAnnotations { needed } => {
                write!(f, "trace lacks annotations required for manipulation: {needed}")
            }
            CoreError::InvalidScale(e) => write!(f, "invalid what-if scale: {e}"),
            CoreError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Trace(e) => Some(e),
            CoreError::Model(e) => Some(e),
            CoreError::InvalidScale(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for CoreError {
    fn from(e: TraceError) -> Self {
        CoreError::Trace(e)
    }
}

impl From<lumos_model::ModelError> for CoreError {
    fn from(e: lumos_model::ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<lumos_trace::ScaleError> for CoreError {
    fn from(e: lumos_trace::ScaleError) -> Self {
        CoreError::InvalidScale(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::CyclicGraph { stuck: 3 };
        assert!(e.to_string().contains("3"));
        let e = CoreError::SimulationStuck {
            completed: 1,
            total: 2,
        };
        assert!(e.to_string().contains("1/2"));
    }

    #[test]
    fn error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CoreError>();
    }
}
