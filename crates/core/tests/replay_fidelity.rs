//! End-to-end replay fidelity: Lumos must reproduce the ground-truth
//! engine's timing from the trace alone.
//!
//! With jitter disabled, the replay model (chains + launch edges +
//! event edges + runtime syncs + rendezvous) captures every mechanism
//! in the ground-truth engine, so replayed makespans must match to
//! sub-0.1%. With jitter enabled, replaying the profiled iteration
//! still matches that iteration tightly, while differing from other
//! iterations — the paper's replay-error structure.

use lumos_cluster::{GroundTruthCluster, JitterModel, SimConfig};
use lumos_core::Lumos;
use lumos_cost::AnalyticalCostModel;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};
use lumos_trace::BreakdownExt;

fn config(tp: u32, pp: u32, dp: u32) -> SimConfig {
    SimConfig {
        model: ModelConfig::tiny(),
        parallelism: Parallelism::new(tp, pp, dp).unwrap(),
        batch: BatchConfig {
            seq_len: 256,
            microbatch_size: 1,
            num_microbatches: 2 * pp,
        },
        schedule: ScheduleKind::OneFOneB,
    }
}

fn replay_error_zero_jitter(tp: u32, pp: u32, dp: u32) -> f64 {
    let cfg = config(tp, pp, dp);
    let cluster = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100()).unwrap();
    let truth = cluster.profile_iteration(0).unwrap();
    let replayed = Lumos::new().replay(&truth.trace).unwrap();
    replayed.makespan().relative_error(truth.makespan)
}

#[test]
fn exact_replay_single_gpu() {
    let err = replay_error_zero_jitter(1, 1, 1);
    assert!(err < 0.001, "single-GPU replay error {err}");
}

#[test]
fn exact_replay_tensor_parallel() {
    let err = replay_error_zero_jitter(2, 1, 1);
    assert!(err < 0.001, "TP replay error {err}");
}

#[test]
fn exact_replay_pipeline_parallel() {
    let err = replay_error_zero_jitter(1, 2, 1);
    assert!(err < 0.001, "PP replay error {err}");
}

#[test]
fn exact_replay_data_parallel() {
    let err = replay_error_zero_jitter(1, 1, 2);
    assert!(err < 0.001, "DP replay error {err}");
}

#[test]
fn exact_replay_3d_parallel() {
    let err = replay_error_zero_jitter(2, 2, 2);
    assert!(err < 0.001, "3D replay error {err}");
}

#[test]
fn replay_of_jittered_iteration_matches_that_iteration() {
    let cfg = config(2, 2, 1);
    let cluster = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100())
        .unwrap()
        .with_jitter(JitterModel::realistic(17));
    let truth = cluster.profile_iteration(0).unwrap();
    let replayed = Lumos::new().replay(&truth.trace).unwrap();
    let err = replayed.makespan().relative_error(truth.makespan);
    // Replaying the very iteration that was profiled: tight.
    assert!(err < 0.01, "same-iteration replay error {err}");
}

#[test]
fn replayed_breakdown_matches_ground_truth() {
    let cfg = config(2, 2, 1);
    let cluster = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100()).unwrap();
    let truth = cluster.profile_iteration(0).unwrap();
    let replayed = Lumos::new().replay(&truth.trace).unwrap();
    let actual = truth.trace.breakdown();
    let simulated = replayed.trace.breakdown();
    let err = simulated.component_error(&actual);
    assert!(
        err < 0.01,
        "breakdown error {err}: actual [{actual}] vs sim [{simulated}]"
    );
}

#[test]
fn dpro_underestimates_when_overlap_matters() {
    // dPRO drops inter-stream dependencies, so communication appears
    // free to overlap: simulated time must be <= Lumos's and
    // (on DP-overlapped configs) strictly below ground truth. The
    // model must be compute-heavy — on host-dispatch-bound toys the
    // GPU dependency structure never binds.
    let mut cfg = config(2, 1, 2);
    cfg.model = ModelConfig::custom("heavy-test", 2, 4096, 16384, 32, 128);
    cfg.batch = BatchConfig {
        seq_len: 2048,
        microbatch_size: 1,
        num_microbatches: 2,
    };
    let cluster = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100()).unwrap();
    let truth = cluster.profile_iteration(0).unwrap();
    let lumos = Lumos::new().replay(&truth.trace).unwrap();
    let dpro = Lumos::dpro_baseline().replay(&truth.trace).unwrap();
    assert!(
        dpro.makespan() <= lumos.makespan(),
        "dPRO {} vs Lumos {}",
        dpro.makespan(),
        lumos.makespan()
    );
    assert!(
        dpro.makespan() < truth.makespan,
        "dPRO should be optimistic: {} vs truth {}",
        dpro.makespan(),
        truth.makespan
    );
}

#[test]
fn replayed_trace_is_valid_and_complete() {
    let cfg = config(2, 2, 2);
    let cluster = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100()).unwrap();
    let truth = cluster.profile_iteration(0).unwrap();
    let replayed = Lumos::new().replay(&truth.trace).unwrap();
    replayed.trace.validate().unwrap();
    // Kernel population must be preserved exactly.
    let count_kernels = |t: &lumos_trace::ClusterTrace| {
        t.ranks().iter().map(|r| r.kernels().count()).sum::<usize>()
    };
    assert_eq!(count_kernels(&truth.trace), count_kernels(&replayed.trace));
}
