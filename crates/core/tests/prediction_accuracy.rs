//! Prediction accuracy: manipulating a profiled trace must predict
//! the performance of configurations that were never profiled.
//!
//! For each transform, we (1) profile a *base* configuration on the
//! ground-truth engine, (2) predict the target configuration from the
//! base trace via graph manipulation, and (3) compare against a fresh
//! ground-truth run of the target configuration — exactly the paper's
//! §4.3 methodology (Figures 7 and 8).

use lumos_cluster::{GroundTruthCluster, SimConfig};
use lumos_core::manipulate::Transform;
use lumos_core::Lumos;
use lumos_cost::AnalyticalCostModel;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};
use lumos_trace::Dur;

/// A compute-heavy small model so kernel time dominates host noise.
fn base_model() -> ModelConfig {
    ModelConfig::custom("pred-test", 4, 1024, 4096, 8, 128)
}

fn base_setup(tp: u32, pp: u32, dp: u32, mb: u32) -> SimConfig {
    SimConfig {
        model: base_model(),
        parallelism: Parallelism::new(tp, pp, dp).unwrap(),
        batch: BatchConfig {
            seq_len: 1024,
            microbatch_size: 1,
            num_microbatches: mb,
        },
        schedule: ScheduleKind::OneFOneB,
    }
}

fn ground_truth(cfg: &SimConfig) -> (lumos_trace::ClusterTrace, Dur) {
    let cluster = GroundTruthCluster::new(cfg, AnalyticalCostModel::h100()).unwrap();
    let out = cluster.profile_iteration(0).unwrap();
    (out.trace, out.makespan)
}

/// Predicts `transforms` from `base` and returns (predicted, actual)
/// iteration times, where actual comes from a fresh ground-truth run
/// of the target configuration.
fn predict_vs_actual(base: &SimConfig, transforms: &[Transform]) -> (Dur, Dur) {
    let (trace, _) = ground_truth(base);
    let lumos = Lumos::new();
    let prediction = lumos
        .predict(&trace, base, transforms, AnalyticalCostModel::h100())
        .unwrap();
    let (_, actual) = ground_truth(&prediction.setup);
    (prediction.makespan(), actual)
}

fn assert_close(predicted: Dur, actual: Dur, tolerance: f64, what: &str) {
    let err = predicted.relative_error(actual);
    assert!(
        err < tolerance,
        "{what}: predicted {predicted} vs actual {actual} (err {:.1}%)",
        err * 100.0
    );
}

#[test]
fn identity_prediction_matches_replay() {
    // No transforms: the reassembled trace must predict the base
    // configuration itself.
    let base = base_setup(1, 2, 1, 4);
    let (trace, actual) = ground_truth(&base);
    let lumos = Lumos::new();
    let prediction = lumos
        .predict(&trace, &base, &[], AnalyticalCostModel::h100())
        .unwrap();
    assert_close(prediction.makespan(), actual, 0.05, "identity");
}

#[test]
fn dp_scaling_prediction() {
    // Figure 7a: scale DP 2 -> 4.
    let base = base_setup(1, 1, 2, 2);
    let (predicted, actual) = predict_vs_actual(&base, &[Transform::DataParallel { dp: 4 }]);
    assert_close(predicted, actual, 0.08, "dp 2->4");
}

#[test]
fn pp_scaling_prediction() {
    // Figure 7b: scale PP 2 -> 4 (micro-batches kept).
    let base = base_setup(1, 2, 1, 4);
    let (predicted, actual) = predict_vs_actual(&base, &[Transform::PipelineParallel { pp: 4 }]);
    assert_close(predicted, actual, 0.08, "pp 2->4");
}

#[test]
fn simultaneous_dp_pp_prediction() {
    // Figure 7c: scale both.
    let base = base_setup(1, 2, 2, 4);
    let (predicted, actual) = predict_vs_actual(
        &base,
        &[
            Transform::PipelineParallel { pp: 4 },
            Transform::DataParallel { dp: 4 },
        ],
    );
    assert_close(predicted, actual, 0.10, "pp 2->4 + dp 2->4");
}

#[test]
fn layer_count_prediction() {
    // Figure 8 V1/V2: more layers.
    let base = base_setup(1, 2, 1, 4);
    let (predicted, actual) = predict_vs_actual(&base, &[Transform::NumLayers { layers: 8 }]);
    assert_close(predicted, actual, 0.08, "4 -> 8 layers");
}

#[test]
fn hidden_size_prediction() {
    // Figure 8 V3/V4: wider model; shape-sensitive kernels re-priced.
    let base = base_setup(1, 2, 1, 4);
    let (predicted, actual) = predict_vs_actual(
        &base,
        &[Transform::HiddenSize {
            hidden: 2048,
            ffn: 8192,
        }],
    );
    assert_close(predicted, actual, 0.10, "hidden 1024 -> 2048");
}

#[test]
fn tp_preserving_prediction_with_tensor_parallel_base() {
    // TP stays fixed but the base uses it: TP all-reduce blocks must
    // remap groups/seqs correctly across the new stages.
    let base = base_setup(2, 2, 1, 4);
    let (predicted, actual) = predict_vs_actual(&base, &[Transform::PipelineParallel { pp: 4 }]);
    assert_close(predicted, actual, 0.08, "tp=2 base, pp 2->4");
}

#[test]
fn predicted_trace_is_structurally_valid() {
    let base = base_setup(2, 2, 2, 4);
    let (trace, _) = ground_truth(&base);
    let lumos = Lumos::new();
    let prediction = lumos
        .predict(
            &trace,
            &base,
            &[Transform::DataParallel { dp: 4 }],
            AnalyticalCostModel::h100(),
        )
        .unwrap();
    prediction.trace.validate().unwrap();
    assert_eq!(
        prediction.trace.world_size(),
        prediction.setup.parallelism.world_size() as usize
    );
    // Predicted trace can itself be re-manipulated (round-trip).
    let second = lumos
        .predict(
            &prediction.trace,
            &prediction.setup,
            &[Transform::DataParallel { dp: 2 }],
            AnalyticalCostModel::h100(),
        )
        .unwrap();
    assert!(second.makespan() > Dur::ZERO);
}
