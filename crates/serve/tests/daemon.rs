//! End-to-end guarantees of the estimation daemon:
//!
//! * the TCP protocol round-trips: predict / search / refine / stats /
//!   reload / shutdown each answer one typed JSON line;
//! * registry hot reload is `Arc`-pinned: requests in flight across a
//!   reload complete against the artifact they started with while new
//!   requests see the new digest table, and corrupt or
//!   version-mismatched files are rejected per-path without disturbing
//!   any live entry;
//! * load shedding is typed: with a single worker and a one-slot
//!   queue, an excess request is answered `overloaded` instead of
//!   queueing unboundedly, and an expired `deadline_ms` is answered
//!   `deadline_exceeded` without running.

use lumos_calib::CalibrationArtifact;
use lumos_cluster::{GroundTruthCluster, JitterModel};
use lumos_cost::AnalyticalCostModel;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind, TrainingSetup};
use lumos_search::{search_calibrated, SearchOptions, SpaceSpec};
use lumos_serve::{Registry, ServeConfig, Server};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// The same small research model the search suites use: two stages,
/// fast to profile, divisible every way the tests need.
fn base_setup() -> TrainingSetup {
    TrainingSetup {
        model: ModelConfig::custom("serve-e2e", 8, 256, 1024, 4, 64),
        parallelism: Parallelism::new(1, 2, 1).unwrap(),
        batch: BatchConfig {
            seq_len: 128,
            microbatch_size: 1,
            num_microbatches: 4,
        },
        schedule: ScheduleKind::OneFOneB,
    }
}

fn fit_artifact(seed: u64) -> CalibrationArtifact {
    let base = base_setup();
    let trace = GroundTruthCluster::new(&base, AnalyticalCostModel::h100())
        .unwrap()
        .with_jitter(JitterModel::realistic(seed))
        .profile_iteration(0)
        .unwrap()
        .trace;
    CalibrationArtifact::calibrate(&trace, &base, "h100", 8).unwrap()
}

/// Two artifacts with distinct content digests (different jitter
/// seeds), shared across tests — fitting is the slow part.
fn artifacts() -> &'static (CalibrationArtifact, CalibrationArtifact) {
    static CELL: OnceLock<(CalibrationArtifact, CalibrationArtifact)> = OnceLock::new();
    CELL.get_or_init(|| {
        let a = fit_artifact(42);
        let b = fit_artifact(7);
        assert_ne!(a.digest, b.digest, "seeds must yield distinct digests");
        (a, b)
    })
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lumos-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(dir: &Path, workers: usize, queue: usize) -> SocketAddr {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        registry_dir: dir.to_path_buf(),
        workers,
        queue_capacity: queue,
        search_threads: Some(1),
    };
    let (server, _) = Server::bind(&config).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run().unwrap());
    addr
}

/// One request line in, one parsed response out.
fn ask(addr: SocketAddr, request: &str) -> Value {
    let mut stream = TcpStream::connect(addr).unwrap();
    writeln!(stream, "{request}").unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    serde_json::from_str(&line).unwrap()
}

fn kind(v: &Value) -> &str {
    v.get("kind").and_then(Value::as_str).unwrap_or_default()
}

fn error_kind(v: &Value) -> &str {
    v.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Value::as_str)
        .unwrap_or_default()
}

#[test]
fn protocol_round_trips_every_request_kind() {
    let (a, _) = artifacts();
    let dir = fresh_dir("proto");
    a.save(dir.join("a.json")).unwrap();
    let digest = lumos_calib::digest_hex(a.digest);
    let addr = start(&dir, 2, 8);

    let predict = ask(
        addr,
        &format!(r#"{{"kind":"predict","artifact":"{digest}","dp":2}}"#),
    );
    assert_eq!(kind(&predict), "predict", "{predict:?}");
    assert!(predict.get("predicted_ns").and_then(Value::as_u64).unwrap() > 0);
    assert!(predict.get("error").is_none());

    let search = ask(
        addr,
        &format!(
            r#"{{"kind":"search","artifact":"{digest}","dp":[1,2],"microbatches":[2,4],"top":3,"refine_sim":true}}"#
        ),
    );
    assert_eq!(kind(&search), "search", "{search:?}");
    let results = search.get("results").and_then(Value::as_array).unwrap();
    assert!(!results.is_empty() && results.len() <= 3);
    assert!(search.get("refined").and_then(Value::as_array).is_some());

    let refine = ask(
        addr,
        &format!(
            r#"{{"kind":"refine","artifact":"{digest}","microbatches":4,"jitter_replicas":3,"jitter_seed":9}}"#
        ),
    );
    assert_eq!(kind(&refine), "refine", "{refine:?}");
    let jitter = refine.get("result").and_then(|r| r.get("jitter")).unwrap();
    assert_eq!(jitter.get("replicas").and_then(Value::as_u64), Some(3));

    let stats = ask(addr, r#"{"kind":"stats"}"#);
    assert_eq!(kind(&stats), "stats", "{stats:?}");
    assert_eq!(stats.get("served").and_then(Value::as_u64), Some(3));
    assert_eq!(stats.get("queue_capacity").and_then(Value::as_u64), Some(8));
    assert_eq!(stats.get("workers").and_then(Value::as_u64), Some(2));
    let per_kind = stats
        .get("request_kinds")
        .and_then(Value::as_array)
        .unwrap();
    assert_eq!(per_kind.len(), 3);
    for entry in per_kind {
        assert_eq!(entry.get("served").and_then(Value::as_u64), Some(1));
        assert!(entry.get("p50_us").and_then(Value::as_u64).unwrap() > 0);
        assert!(entry.get("p99_us").unwrap().as_u64() >= entry.get("p50_us").unwrap().as_u64());
    }
    let arts = stats.get("artifacts").and_then(Value::as_array).unwrap();
    assert_eq!(arts.len(), 1);
    assert_eq!(
        arts[0].get("digest").and_then(Value::as_str),
        Some(digest.as_str())
    );

    // Typed protocol errors.
    let bad = ask(addr, "not json at all");
    assert_eq!(error_kind(&bad), "bad_request", "{bad:?}");
    let unknown = ask(addr, r#"{"kind":"predict","artifact":"0xfeed","dp":2}"#);
    assert_eq!(error_kind(&unknown), "unknown_artifact", "{unknown:?}");
    let extra = ask(addr, r#"{"kind":"stats","bogus":1}"#);
    assert_eq!(error_kind(&extra), "bad_request", "{extra:?}");

    // An already-expired deadline is answered without running.
    let expired = ask(
        addr,
        &format!(r#"{{"kind":"predict","artifact":"{digest}","dp":2,"deadline_ms":0}}"#),
    );
    assert_eq!(error_kind(&expired), "deadline_exceeded", "{expired:?}");
    let stats = ask(addr, r#"{"kind":"stats"}"#);
    assert_eq!(
        stats.get("deadline_exceeded").and_then(Value::as_u64),
        Some(1)
    );

    let shutdown = ask(addr, r#"{"kind":"shutdown"}"#);
    assert_eq!(kind(&shutdown), "shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_robust_search_over_the_wire() {
    let (a, _) = artifacts();
    let dir = fresh_dir("faults");
    a.save(dir.join("a.json")).unwrap();
    let digest = lumos_calib::digest_hex(a.digest);
    let addr = start(&dir, 2, 8);

    // A certain straggler: every finalist degrades, the refined
    // entries gain a `faults` body, and `faults_toml` alone implies
    // the refinement pass.
    let spec = "version = 1\\n[[straggler]]\\nprobability = 1.0\\nslowdown = 2.0\\n";
    let search = ask(
        addr,
        &format!(
            r#"{{"kind":"search","artifact":"{digest}","dp":[1,2],"microbatches":[2,4],"top":3,"faults_toml":"{spec}","fault_replicas":3,"fault_seed":11}}"#
        ),
    );
    assert_eq!(kind(&search), "search", "{search:?}");
    let refined = search.get("refined").and_then(Value::as_array).unwrap();
    assert!(!refined.is_empty());
    for r in refined {
        let f = r.get("faults").expect("fault stats present");
        assert_eq!(f.get("replicas").and_then(Value::as_u64), Some(3));
        let expected = f.get("expected_ns").and_then(Value::as_u64).unwrap();
        let simulated = r.get("simulated_ns").and_then(Value::as_u64).unwrap();
        assert!(expected >= simulated, "{r:?}");
        assert!(f.get("degradation").and_then(Value::as_f64).unwrap() > 0.0);
        let robustness = f.get("robustness").and_then(Value::as_f64).unwrap();
        assert!(robustness > 0.0 && robustness <= 1.0, "{r:?}");
    }

    // An empty spec never emits the key (and jitterless refinement
    // never emits `jitter`), keeping old clients readable.
    let clean = ask(
        addr,
        &format!(
            r#"{{"kind":"search","artifact":"{digest}","dp":[1,2],"microbatches":[2],"top":2,"faults_toml":"version = 1\n"}}"#
        ),
    );
    let refined = clean.get("refined").and_then(Value::as_array).unwrap();
    assert!(
        refined.iter().all(|r| r.get("faults").is_none()),
        "{clean:?}"
    );

    // Gates and parse failures are typed bad requests naming the key.
    let bad = ask(
        addr,
        &format!(r#"{{"kind":"search","artifact":"{digest}","dp":[1],"fault_replicas":3}}"#),
    );
    assert_eq!(error_kind(&bad), "bad_request", "{bad:?}");
    let bad = ask(
        addr,
        &format!(
            r#"{{"kind":"search","artifact":"{digest}","dp":[1],"faults_toml":"[[straggler]]\nslowdown = 0.5\n"}}"#
        ),
    );
    assert_eq!(error_kind(&bad), "bad_request", "{bad:?}");
    let detail = bad["error"]["detail"].as_str().unwrap();
    assert!(detail.contains("slowdown"), "{detail}");

    // The stats endpoint counts the fault pass.
    let stats = ask(addr, r#"{"kind":"stats"}"#);
    assert_eq!(stats.get("fault_runs").and_then(Value::as_u64), Some(1));
    assert!(
        stats
            .get("fault_replicas_executed")
            .and_then(Value::as_u64)
            .unwrap()
            >= 3
    );

    ask(addr, r#"{"kind":"shutdown"}"#);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn requests_in_flight_across_reload_stay_pinned_to_their_artifact() {
    let (a, b) = artifacts();
    let dir = fresh_dir("pin");
    a.save(dir.join("artifact.json")).unwrap();
    let digest_a = lumos_calib::digest_hex(a.digest);
    let digest_b = lumos_calib::digest_hex(b.digest);

    let (registry, outcome) = Registry::open(&dir).unwrap();
    assert_eq!(outcome.loaded, vec![digest_a.clone()]);

    // Pin A the way a connection thread does at enqueue time, then
    // swap the directory contents to B and reload concurrently with
    // searches running against the pinned entry.
    let pinned = registry.get(&digest_a).unwrap();
    std::fs::remove_file(dir.join("artifact.json")).unwrap();
    b.save(dir.join("artifact.json")).unwrap();

    let space = SpaceSpec {
        dp: vec![1, 2],
        microbatches: vec![2, 4],
        ..SpaceSpec::empty()
    };
    let opts = SearchOptions {
        top_k: Some(3),
        threads: Some(1),
        ..SearchOptions::default()
    };
    let before = search_calibrated(&pinned.calibration, &space, &opts).unwrap();
    std::thread::scope(|scope| {
        let worker = scope.spawn(|| {
            (0..6)
                .map(|_| {
                    search_calibrated(&pinned.calibration, &space, &opts)
                        .unwrap()
                        .format_top(3)
                })
                .collect::<Vec<_>>()
        });
        for _ in 0..4 {
            registry.reload().unwrap();
        }
        for rendered in worker.join().unwrap() {
            // In-flight work on the pinned Arc answers identically
            // across every concurrent table swap.
            assert_eq!(rendered, before.format_top(3));
        }
    });

    // New lookups see the new table: A is gone, B is live.
    assert!(registry.get(&digest_a).is_none());
    assert!(registry.get(&digest_b).is_some());
    let outcome = registry.reload().unwrap();
    assert_eq!(outcome.kept, vec![digest_b.clone()]);
    assert!(outcome.loaded.is_empty() && outcome.dropped.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reload_rejects_bad_files_without_disturbing_live_entries() {
    let (a, _) = artifacts();
    let dir = fresh_dir("reject");
    a.save(dir.join("good.json")).unwrap();
    let digest = lumos_calib::digest_hex(a.digest);
    let addr = start(&dir, 1, 4);

    // Corrupt JSON and a version-mismatched artifact appear alongside
    // the live one.
    std::fs::write(dir.join("corrupt.json"), "{ not json").unwrap();
    let mismatched = a.to_json().replace("\"version\":1", "\"version\":99");
    std::fs::write(dir.join("wrong-version.json"), mismatched).unwrap();

    let reload = ask(addr, r#"{"kind":"reload"}"#);
    assert_eq!(kind(&reload), "reload", "{reload:?}");
    assert_eq!(
        reload.get("kept").and_then(Value::as_array).map(Vec::len),
        Some(1)
    );
    let rejected = reload.get("rejected").and_then(Value::as_array).unwrap();
    assert_eq!(rejected.len(), 2, "{reload:?}");
    for entry in rejected {
        let path = entry.get("path").and_then(Value::as_str).unwrap();
        assert!(
            path.contains("corrupt.json") || path.contains("wrong-version.json"),
            "{entry:?}"
        );
    }

    // The live artifact still serves.
    let predict = ask(
        addr,
        &format!(r#"{{"kind":"predict","artifact":"{digest}","dp":2}}"#),
    );
    assert_eq!(kind(&predict), "predict", "{predict:?}");
    ask(addr, r#"{"kind":"shutdown"}"#);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_queue_sheds_load_with_typed_overloaded_response() {
    let (a, _) = artifacts();
    let dir = fresh_dir("shed");
    a.save(dir.join("a.json")).unwrap();
    let digest = lumos_calib::digest_hex(a.digest);
    let addr = start(&dir, 1, 1);

    // Two slow requests: one occupies the single worker, one fills the
    // one-slot queue. Each refines several finalists under thousands
    // of jitter replicas — seconds of work for the single worker.
    let slow = format!(
        r#"{{"kind":"search","artifact":"{digest}","dp":[1,2],"microbatches":[2,4],"top":4,"jitter_replicas":3000,"deadline_ms":120000}}"#
    );
    let spawn_slow = |request: String| {
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            writeln!(stream, "{request}").unwrap();
            let mut line = String::new();
            BufReader::new(stream).read_line(&mut line).unwrap();
            line
        })
    };
    let first = spawn_slow(slow.clone());
    // Give the worker time to dequeue the first job before filling the
    // queue slot behind it.
    std::thread::sleep(std::time::Duration::from_millis(500));
    let second = spawn_slow(slow);
    std::thread::sleep(std::time::Duration::from_millis(500));

    // Worker busy + queue full ⇒ typed shed, answered immediately.
    let shed = ask(
        addr,
        &format!(r#"{{"kind":"predict","artifact":"{digest}","dp":2}}"#),
    );
    assert_eq!(error_kind(&shed), "overloaded", "{shed:?}");

    // Admin requests bypass the pool and stay responsive under load.
    let stats = ask(addr, r#"{"kind":"stats"}"#);
    assert_eq!(kind(&stats), "stats");
    assert_eq!(
        stats.get("rejected_overloaded").and_then(Value::as_u64),
        Some(1)
    );
    assert_eq!(stats.get("queue_depth").and_then(Value::as_u64), Some(1));

    // The slow requests resolve (served, or — on a very slow machine —
    // cancelled by their deadline); either way the daemon answers both.
    for handle in [first, second] {
        let line = handle.join().unwrap();
        let v: Value = serde_json::from_str(&line).unwrap();
        assert!(
            kind(&v) == "search" || error_kind(&v) == "deadline_exceeded",
            "{v:?}"
        );
    }
    ask(addr, r#"{"kind":"shutdown"}"#);
    std::fs::remove_dir_all(&dir).ok();
}
