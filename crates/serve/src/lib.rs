//! `lumos-serve` — the persistent what-if estimation daemon.
//!
//! A long-running, hermetic (std-only) server that loads
//! [`CalibrationArtifact`](lumos_calib::CalibrationArtifact)s from a
//! registry directory at startup and answers `predict` / `search` /
//! `refine` requests over line-delimited JSON on TCP: one request
//! object per line in, one response object per line out, in request
//! order per connection.
//!
//! The moving parts:
//!
//! - [`Registry`] — digest-keyed artifact table with hot reload: the
//!   `reload` admin request atomically swaps the table behind `Arc`s,
//!   so in-flight requests finish against the artifact they pinned
//!   while new requests see the new table.
//! - a bounded worker pool reusing the atomic-cursor search evaluator;
//!   a full queue sheds load with a typed `overloaded` response, and
//!   per-request deadlines cancel streaming search cooperatively via
//!   [`SearchOptions::deadline`](lumos_search::SearchOptions).
//! - [`ServerStats`] — uptime, queue depth, served/rejected counts,
//!   per-artifact memo hit rates, and p50/p95/p99 latency per request
//!   kind from fixed-bucket histograms, behind the `stats` request.
//!
//! Daemon responses are byte-identical to `lumos predict --json` /
//! `lumos search --json` against the same artifact: both sides encode
//! through [`protocol::response_line`] on the same response structs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;
pub mod protocol;
mod registry;
mod server;
mod stats;

pub use registry::{LoadedArtifact, Registry, ReloadOutcome};
pub use server::Server;
pub use stats::{Histogram, ServerStats, KIND_NAMES};

use std::fmt;
use std::path::PathBuf;

/// How to run the daemon: where to listen, what to serve, how much
/// concurrency to allow.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:7700` (port `0` picks a free
    /// port; read it back via [`Server::local_addr`]).
    pub addr: String,
    /// Directory scanned for `*.json` calibration artifacts.
    pub registry_dir: PathBuf,
    /// Worker threads draining the compute queue (min 1).
    pub workers: usize,
    /// Bounded queue capacity; a full queue sheds with `overloaded`.
    pub queue_capacity: usize,
    /// Thread count handed to each search run (`None` = search default).
    pub search_threads: Option<usize>,
}

impl ServeConfig {
    /// A config with the default pool sizing (2 workers, queue of 32)
    /// for the given address and registry directory.
    pub fn new(addr: impl Into<String>, registry_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: addr.into(),
            registry_dir: registry_dir.into(),
            workers: 2,
            queue_capacity: 32,
            search_threads: None,
        }
    }
}

/// Errors from binding or running the daemon.
#[derive(Debug)]
pub enum ServeError {
    /// A socket operation failed.
    Io {
        /// What the daemon was doing when it failed.
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The registry directory itself could not be read.
    Registry(lumos_calib::CalibError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
            ServeError::Registry(err) => write!(f, "registry scan failed: {err}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            ServeError::Registry(err) => Some(err),
        }
    }
}
