//! The artifact registry: digest-keyed, hot-reloadable, `Arc`-pinned.
//!
//! The daemon answers requests against [`CalibrationArtifact`]s loaded
//! from a registry directory. Each loaded artifact is wrapped in an
//! `Arc<LoadedArtifact>` bundling everything a request needs — the
//! verified artifact, its prebuilt [`SearchCalibration`], and the
//! cross-request [`SharedStageMemo`] that keeps repeat searches warm.
//! Requests resolve a digest to an `Arc` **once** and hold that clone
//! for their whole lifetime, so a concurrent [`Registry::reload`] can
//! atomically swap the digest table without disturbing in-flight work:
//! old requests finish against the artifact they started with, new
//! requests see the new table.
//!
//! Reload semantics: the directory is rescanned
//! ([`lumos_calib::scan_registry_dir`]); digests already live keep
//! their existing entry (preserving the warm memo), new digests are
//! added, digests whose files disappeared are dropped from the table,
//! and files that fail to load are reported per-path without touching
//! any live entry.

use lumos_calib::{digest_hex, CalibrationArtifact};
use lumos_cost::AnalyticalCostModel;
use lumos_search::{SearchCalibration, SharedStageMemo};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, RwLock};

use crate::ServeError;

/// One servable artifact: everything a request needs, bundled so a
/// single `Arc` clone pins a consistent view.
#[derive(Debug)]
pub struct LoadedArtifact {
    /// Registry key: the artifact's content digest as `0x`-hex.
    pub digest: String,
    /// Where it was loaded from.
    pub path: PathBuf,
    /// The verified artifact (setup, fingerprint, tables, library).
    pub artifact: CalibrationArtifact,
    /// Prebuilt search calibration (shared lookup model + library).
    pub calibration: SearchCalibration<AnalyticalCostModel>,
    /// Cross-request stage-work memo, scoped to this artifact — one
    /// memo per calibration is what keeps the sharing sound.
    pub shared_memo: Arc<SharedStageMemo>,
}

impl LoadedArtifact {
    /// Bundles a verified artifact: resolves its hardware preset and
    /// prebuilds the calibration.
    ///
    /// # Errors
    ///
    /// Returns the artifact's hardware-preset name when this build
    /// does not know it.
    fn build(artifact: CalibrationArtifact, path: PathBuf) -> Result<Self, String> {
        let fallback = AnalyticalCostModel::from_preset(&artifact.hardware).ok_or_else(|| {
            format!(
                "unknown hardware preset `{}` (this build knows h100 and a100)",
                artifact.hardware
            )
        })?;
        let calibration = SearchCalibration::from_artifact(&artifact, fallback);
        Ok(LoadedArtifact {
            digest: digest_hex(artifact.digest),
            path,
            artifact,
            calibration,
            shared_memo: Arc::new(SharedStageMemo::new()),
        })
    }
}

/// What one reload (or the initial scan) did, per digest and per
/// rejected file.
#[derive(Debug, Default)]
pub struct ReloadOutcome {
    /// Digests newly added.
    pub loaded: Vec<String>,
    /// Digests already live and still present (entry kept, memo warm).
    pub kept: Vec<String>,
    /// Digests dropped because their files disappeared.
    pub dropped: Vec<String>,
    /// Files that failed to load: `(path, reason)`.
    pub rejected: Vec<(String, String)>,
}

/// The digest-keyed artifact table.
#[derive(Debug)]
pub struct Registry {
    dir: PathBuf,
    entries: RwLock<HashMap<String, Arc<LoadedArtifact>>>,
}

impl Registry {
    /// Opens a registry over `dir` and runs the initial scan.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Registry`] when the directory itself
    /// cannot be read; unloadable files are reported in the outcome,
    /// not fatal.
    pub fn open(dir: impl Into<PathBuf>) -> Result<(Self, ReloadOutcome), ServeError> {
        let registry = Registry {
            dir: dir.into(),
            entries: RwLock::new(HashMap::new()),
        };
        let outcome = registry.reload()?;
        Ok((registry, outcome))
    }

    /// The directory this registry scans.
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    /// Resolves a digest to its pinned artifact. The returned `Arc`
    /// stays valid across any number of subsequent reloads.
    pub fn get(&self, digest: &str) -> Option<Arc<LoadedArtifact>> {
        self.entries
            .read()
            .expect("registry lock poisoned")
            .get(digest)
            .cloned()
    }

    /// Every live entry, sorted by digest (deterministic stats order).
    pub fn snapshot(&self) -> Vec<Arc<LoadedArtifact>> {
        let mut all: Vec<Arc<LoadedArtifact>> = self
            .entries
            .read()
            .expect("registry lock poisoned")
            .values()
            .cloned()
            .collect();
        all.sort_by(|a, b| a.digest.cmp(&b.digest));
        all
    }

    /// Rescans the directory and atomically swaps in the new table.
    /// See the module docs for the keep/add/drop semantics.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Registry`] only when the directory itself
    /// cannot be read — in that case the live table is left untouched.
    pub fn reload(&self) -> Result<ReloadOutcome, ServeError> {
        let scan = lumos_calib::scan_registry_dir(&self.dir).map_err(ServeError::Registry)?;
        let mut outcome = ReloadOutcome {
            rejected: scan
                .rejected
                .into_iter()
                .map(|(path, err)| (path.display().to_string(), err.to_string()))
                .collect(),
            ..ReloadOutcome::default()
        };

        // Build the replacement table outside the lock: loads and
        // preset resolution are the slow part, and in-flight lookups
        // must never block on them.
        let old: HashMap<String, Arc<LoadedArtifact>> =
            self.entries.read().expect("registry lock poisoned").clone();
        let mut next: HashMap<String, Arc<LoadedArtifact>> = HashMap::new();
        for scanned in scan.loaded {
            let digest = digest_hex(scanned.artifact.digest);
            if let Some(existing) = old.get(&digest) {
                // Same content digest ⇒ identical artifact; keep the
                // live entry so its warm memo survives the reload.
                if !next.contains_key(&digest) {
                    outcome.kept.push(digest.clone());
                }
                next.insert(digest, existing.clone());
                continue;
            }
            match LoadedArtifact::build(scanned.artifact, scanned.path.clone()) {
                Ok(loaded) => {
                    if !next.contains_key(&digest) {
                        outcome.loaded.push(digest.clone());
                    }
                    next.insert(digest, Arc::new(loaded));
                }
                Err(detail) => outcome
                    .rejected
                    .push((scanned.path.display().to_string(), detail)),
            }
        }
        for digest in old.keys() {
            if !next.contains_key(digest) {
                outcome.dropped.push(digest.clone());
            }
        }
        outcome.loaded.sort();
        outcome.kept.sort();
        outcome.dropped.sort();

        // The swap itself is a single write-lock assignment: in-flight
        // requests hold `Arc` clones and never notice.
        *self.entries.write().expect("registry lock poisoned") = next;
        Ok(outcome)
    }
}
