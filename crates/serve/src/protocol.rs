//! The line-delimited JSON protocol: one request object per line in,
//! one response object per line out.
//!
//! The response types here are **the single schema** for machine-
//! readable estimation output: the daemon serializes them onto the
//! socket, and `lumos predict --json` / `lumos search --json` print
//! exactly the same serialization to stdout. Both sides build
//! responses through the constructors in this module
//! ([`predict_response`], [`search_response`]) and encode them with
//! [`response_line`], so a daemon answer is byte-identical to the CLI
//! answer for the same artifact and knobs — the property the
//! integration tests and the CI smoke diff assert.
//!
//! Requests are parsed by hand from a [`serde_json::Value`] so a
//! malformed line yields one precise `bad_request` message (unknown
//! key, wrong type, missing field) instead of a generic shape error.
//! Durations travel as integer nanoseconds (`*_ns`) — never floats —
//! so equality is exact.
//!
//! Only deterministic numbers appear in [`SearchResponse`]: grid
//! totals, lattice-reject counts, memory prunes, and the ranked
//! results themselves are identical across thread counts, while
//! bound-skip / evaluated / memo counters (which depend on heap-fill
//! timing) are deliberately excluded.

use lumos_search::{RefinedResult, SearchReport};
use lumos_trace::BreakdownExt;
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Price one configuration change against an artifact.
    Predict(PredictRequest),
    /// Rank a configuration space against an artifact.
    Search(Box<SearchRequest>),
    /// Engine-refine one candidate configuration.
    Refine(RefineRequest),
    /// Report server statistics.
    Stats,
    /// Rescan the registry directory.
    Reload,
    /// Stop the daemon.
    Shutdown,
}

impl Request {
    /// The request's `kind` string (used for per-kind stats keys).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Predict(_) => "predict",
            Request::Search(_) => "search",
            Request::Refine(_) => "refine",
            Request::Stats => "stats",
            Request::Reload => "reload",
            Request::Shutdown => "shutdown",
        }
    }
}

/// `{"kind":"predict",...}` — mirror of `lumos predict --calib`:
/// every transform field optional, at least one required.
#[derive(Debug, Clone, Default)]
pub struct PredictRequest {
    /// Digest key of the artifact to price against (`0x`-hex).
    pub artifact: String,
    /// Tensor-parallel degree.
    pub tp: Option<u32>,
    /// Pipeline-parallel degree.
    pub pp: Option<u32>,
    /// Data-parallel degree.
    pub dp: Option<u32>,
    /// Layer count.
    pub layers: Option<u32>,
    /// Hidden size (give with `ffn`).
    pub hidden: Option<u64>,
    /// FFN size (give with `hidden`).
    pub ffn: Option<u64>,
    /// Sequence length.
    pub seq: Option<u64>,
    /// Micro-batches per iteration.
    pub microbatches: Option<u32>,
    /// Per-request deadline in milliseconds (queue wait included).
    pub deadline_ms: Option<u64>,
}

/// `{"kind":"search",...}` — mirror of `lumos search --calib`: axis
/// arrays (empty / absent = base value), ranking knobs, refinement.
#[derive(Debug, Clone, Default)]
pub struct SearchRequest {
    /// Digest key of the artifact to search against (`0x`-hex).
    pub artifact: String,
    /// Tensor-parallel axis.
    pub tp: Vec<u32>,
    /// Pipeline-parallel axis.
    pub pp: Vec<u32>,
    /// Data-parallel axis.
    pub dp: Vec<u32>,
    /// Micro-batch axis.
    pub microbatches: Vec<u32>,
    /// Interleave axis.
    pub interleave: Vec<u32>,
    /// Schedule axis: registered schedule names (empty = base's).
    pub schedules: Vec<String>,
    /// Exact allowed world sizes.
    pub gpus: Option<Vec<u32>>,
    /// Hard GPU budget.
    pub max_gpus: Option<u32>,
    /// Ranking objective (`makespan` / `throughput` / `mfu`).
    pub objective: Option<String>,
    /// Results to report (default 10).
    pub top: Option<usize>,
    /// Per-GPU memory capacity for the feasibility gate.
    pub memory_gib: Option<u32>,
    /// Engine-refine the finals.
    pub refine_sim: bool,
    /// Jitter replicas per finalist (> 0 implies `refine_sim`).
    pub jitter_replicas: u32,
    /// Jitter-model seed.
    pub jitter_seed: Option<u64>,
    /// Fault-scenario spec **text** (the contents of a `--faults`
    /// TOML file, not a path — the daemon never reads client
    /// filesystems). Presence implies `refine_sim`.
    pub faults_toml: Option<String>,
    /// Fault replicas per finalist (`--fault-replicas`; default 32).
    pub fault_replicas: Option<u32>,
    /// Fault-sampling seed (`--fault-seed`).
    pub fault_seed: Option<u64>,
    /// Per-request deadline in milliseconds (queue wait included).
    pub deadline_ms: Option<u64>,
    /// Run the corpus-guided adaptive engine instead of the
    /// exhaustive walk (mirror of `lumos search --adaptive`).
    pub adaptive: bool,
    /// Adaptive full-evaluation budget (`--budget`).
    pub budget: Option<usize>,
    /// Adaptive RNG seed (`--seed`); fixed seeds replay identically.
    pub seed: Option<u64>,
}

/// `{"kind":"refine",...}` — engine-refine a single pinned candidate
/// (absent fields default to the artifact's base configuration).
#[derive(Debug, Clone, Default)]
pub struct RefineRequest {
    /// Digest key of the artifact to refine against (`0x`-hex).
    pub artifact: String,
    /// Tensor-parallel degree (default: base).
    pub tp: Option<u32>,
    /// Pipeline-parallel degree (default: base).
    pub pp: Option<u32>,
    /// Data-parallel degree (default: base).
    pub dp: Option<u32>,
    /// Micro-batches per iteration (default: base).
    pub microbatches: Option<u32>,
    /// Interleaved-1F1B virtual chunks (default: 1).
    pub interleave: Option<u32>,
    /// Registered schedule name (default: the artifact base's).
    pub schedule: Option<String>,
    /// Jitter replicas (0 = zero-jitter refinement only).
    pub jitter_replicas: u32,
    /// Jitter-model seed.
    pub jitter_seed: Option<u64>,
    /// Per-request deadline in milliseconds (queue wait included).
    pub deadline_ms: Option<u64>,
}

/// Typed failure sent instead of a success payload. Success payloads
/// never carry a top-level `error` key, so clients dispatch on its
/// presence alone.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ErrorResponse {
    /// The failure.
    pub error: ErrorBody,
}

/// The inside of an [`ErrorResponse`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ErrorBody {
    /// Stable machine-readable kind: `bad_request`,
    /// `unknown_artifact`, `overloaded`, `deadline_exceeded`,
    /// `infeasible`, or `internal`.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

impl ErrorResponse {
    /// Builds a typed error.
    pub fn new(kind: &str, detail: impl Into<String>) -> Self {
        ErrorResponse {
            error: ErrorBody {
                kind: kind.to_string(),
                detail: detail.into(),
            },
        }
    }
}

/// Predicted-breakdown component of a [`PredictResponse`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct BreakdownBody {
    /// Compute time not overlapped by communication.
    pub exposed_compute_ns: u64,
    /// Compute/communication overlap.
    pub overlapped_ns: u64,
    /// Communication time not hidden behind compute.
    pub exposed_comm_ns: u64,
    /// Everything else (host gaps, bubbles).
    pub other_ns: u64,
}

/// Successful `predict` payload — also what `lumos predict --json`
/// prints.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PredictResponse {
    /// Always `"predict"`.
    pub kind: String,
    /// Base configuration label.
    pub base: String,
    /// Target configuration label.
    pub target: String,
    /// Pipeline-schedule name the target runs under.
    pub schedule: String,
    /// Recorded makespan of the base trace.
    pub recorded_ns: u64,
    /// Predicted makespan of the target.
    pub predicted_ns: u64,
    /// Where the predicted time goes.
    pub breakdown: BreakdownBody,
}

/// One ranked candidate in a [`SearchResponse`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SearchResultBody {
    /// 1-based rank under the requested objective.
    pub rank: usize,
    /// Display label (`TPxPPxDP m=N [v=N]`).
    pub label: String,
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Pipeline-parallel degree.
    pub pp: u32,
    /// Data-parallel degree.
    pub dp: u32,
    /// Micro-batches per iteration.
    pub microbatches: u32,
    /// Interleaved-1F1B virtual chunks.
    pub interleave: u32,
    /// Pipeline-schedule name the candidate runs under.
    pub schedule: String,
    /// Total GPUs occupied.
    pub gpus: u32,
    /// Predicted iteration time.
    pub makespan_ns: u64,
    /// Training throughput normalized by cluster size.
    pub tokens_per_sec_per_gpu: f64,
    /// Model-FLOPS utilization.
    pub mfu: f64,
    /// Pipeline-bubble fraction.
    pub bubble_fraction: f64,
    /// Peak-stage memory estimate.
    pub memory_bytes: u64,
}

/// Jitter-robustness statistics of a refined finalist.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct JitterBody {
    /// Deterministic variance replicas executed.
    pub replicas: u32,
    /// Mean simulated makespan across replicas.
    pub mean_ns: u64,
    /// Nearest-rank p95 simulated makespan.
    pub p95_ns: u64,
    /// Stability score `mean / p95` in `(0, 1]`; absent when fewer
    /// than 2 replicas ran (a p95 needs at least two observations).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stability: Option<f64>,
}

/// Fault-robustness statistics of a refined finalist (the
/// `faults_toml` pass).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct FaultBody {
    /// Deterministic fault replicas executed.
    pub replicas: u32,
    /// Expected (mean) makespan across fault replicas.
    pub expected_ns: u64,
    /// Nearest-rank p95 makespan across fault replicas.
    pub p95_ns: u64,
    /// Relative degradation `(expected − clean) / clean`, ≥ 0.
    pub degradation: f64,
    /// Robustness score `clean / p95` in `(0, 1]`.
    pub robustness: f64,
}

/// One engine-refined finalist in a [`SearchResponse`] (and the body
/// of a [`RefineResponse`]).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RefinedBody {
    /// 1-based refined rank.
    pub rank: usize,
    /// Display label.
    pub label: String,
    /// Phase one's analytic makespan estimate.
    pub analytic_ns: u64,
    /// Zero-jitter engine-simulated makespan.
    pub simulated_ns: u64,
    /// Signed relative delta `(simulated − analytic) / analytic`.
    pub delta: f64,
    /// Robustness statistics when the jitter pass ran.
    pub jitter: Option<JitterBody>,
    /// Fault statistics when a non-empty fault spec ran; absent
    /// otherwise (older clients never see the key).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultBody>,
}

/// Successful `search` payload — also what `lumos search --json`
/// prints. Carries only run-to-run deterministic numbers.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SearchResponse {
    /// Always `"search"`.
    pub kind: String,
    /// Base configuration label.
    pub base: String,
    /// Recorded makespan of the base trace.
    pub base_makespan_ns: u64,
    /// Ranking objective.
    pub objective: String,
    /// Grid points enumerated.
    pub grid_points: usize,
    /// Candidates rejected by the GPU budget.
    pub budget_rejects: usize,
    /// Candidates rejected by divisibility constraints.
    pub divisibility_rejects: usize,
    /// Candidates rejected by structural TP constraints.
    pub structural_rejects: usize,
    /// Candidates cut by the memory-feasibility gate.
    pub memory_pruned: usize,
    /// Ranked results, best first.
    pub results: Vec<SearchResultBody>,
    /// Simulation-refined finals, `None` when refinement was off.
    pub refined: Option<Vec<RefinedBody>>,
}

/// Successful `refine` payload.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RefineResponse {
    /// Always `"refine"`.
    pub kind: String,
    /// Base configuration label.
    pub base: String,
    /// The refined candidate.
    pub result: RefinedBody,
}

/// Per-artifact entry in a [`StatsResponse`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ArtifactStatsBody {
    /// Registry key (`0x`-hex content digest).
    pub digest: String,
    /// Pipeline-schedule name of the artifact's base setup.
    pub schedule: String,
    /// Cross-request stage-work memo hits.
    pub memo_hits: u64,
    /// Cross-request stage-work memo misses (distinct entries derived).
    pub memo_misses: u64,
    /// `hits / (hits + misses)`, 0 when the memo is untouched.
    pub memo_hit_rate: f64,
}

/// Per-request-kind latency/volume entry in a [`StatsResponse`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct KindStatsBody {
    /// Request kind (`predict` / `search` / `refine`).
    pub kind: String,
    /// Requests answered successfully.
    pub served: u64,
    /// p50 latency (µs, fixed-bucket upper bound).
    pub p50_us: u64,
    /// p95 latency (µs, fixed-bucket upper bound).
    pub p95_us: u64,
    /// p99 latency (µs, fixed-bucket upper bound).
    pub p99_us: u64,
}

/// Successful `stats` payload.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct StatsResponse {
    /// Always `"stats"`.
    pub kind: String,
    /// Seconds since the daemon started.
    pub uptime_secs: u64,
    /// Compute requests waiting in the bounded queue right now.
    pub queue_depth: u64,
    /// Bounded-queue capacity.
    pub queue_capacity: usize,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Compute requests answered successfully (all kinds).
    pub served: u64,
    /// Compute requests shed with `overloaded`.
    pub rejected_overloaded: u64,
    /// Compute requests that hit their deadline (in queue or mid-run).
    pub deadline_exceeded: u64,
    /// Per-artifact memo statistics, sorted by digest.
    pub artifacts: Vec<ArtifactStatsBody>,
    /// Per-kind volume and latency quantiles.
    pub request_kinds: Vec<KindStatsBody>,
    /// Adaptive searches served.
    pub adaptive_runs: u64,
    /// Grid indices visited across all adaptive searches.
    pub adaptive_visited: u64,
    /// Frontier entries live at termination, summed over adaptive
    /// searches.
    pub adaptive_frontier: u64,
    /// Fault-robust searches served (`faults_toml` requests whose
    /// fault pass ran).
    #[serde(default)]
    pub fault_runs: u64,
    /// Fault replicas executed across all fault-robust searches.
    #[serde(default)]
    pub fault_replicas_executed: u64,
}

/// Successful `reload` payload.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ReloadResponse {
    /// Always `"reload"`.
    pub kind: String,
    /// Digests newly added by this scan.
    pub loaded: Vec<String>,
    /// Digests already live and still present (kept, memo intact).
    pub kept: Vec<String>,
    /// Digests no longer present in the directory (dropped from the
    /// registry; in-flight requests pinned to them still complete).
    pub dropped: Vec<String>,
    /// Files that failed to load, with reasons; never disturbs live
    /// artifacts.
    pub rejected: Vec<ReloadRejectBody>,
}

/// One rejected file in a [`ReloadResponse`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ReloadRejectBody {
    /// The offending file.
    pub path: String,
    /// Why it was rejected.
    pub detail: String,
}

/// Successful `shutdown` acknowledgement.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ShutdownResponse {
    /// Always `"shutdown"`.
    pub kind: String,
}

/// Encodes any response as its wire line (no trailing newline — the
/// writer appends exactly one). This is the **only** encoder either
/// side uses, which is what makes daemon and CLI output byte-
/// comparable.
pub fn response_line<T: Serialize>(response: &T) -> String {
    serde_json::to_string(response).expect("responses serialize")
}

/// Builds the shared `predict` payload from the scalars both the CLI
/// and the daemon have in hand after
/// [`lumos_core::Lumos::predict_with_library`].
pub fn predict_response(
    base: &str,
    recorded: lumos_trace::Dur,
    prediction: &lumos_core::manipulate::Prediction,
) -> PredictResponse {
    let b = prediction.replayed.trace.breakdown();
    PredictResponse {
        kind: "predict".to_string(),
        base: base.to_string(),
        target: prediction.setup.label(),
        schedule: prediction.setup.schedule.name().to_string(),
        recorded_ns: recorded.as_ns(),
        predicted_ns: prediction.makespan().as_ns(),
        breakdown: BreakdownBody {
            exposed_compute_ns: b.exposed_compute.as_ns(),
            overlapped_ns: b.overlapped.as_ns(),
            exposed_comm_ns: b.exposed_comm.as_ns(),
            other_ns: b.other.as_ns(),
        },
    }
}

/// Converts one refined finalist.
fn refined_body(rank: usize, r: &RefinedResult) -> RefinedBody {
    RefinedBody {
        rank,
        label: r.label.clone(),
        analytic_ns: r.analytic_makespan.as_ns(),
        simulated_ns: r.simulated_makespan.as_ns(),
        delta: r.delta,
        jitter: r.jitter.as_ref().map(|j| JitterBody {
            replicas: j.replicas,
            mean_ns: j.mean.as_ns(),
            p95_ns: j.p95.as_ns(),
            stability: j.stability,
        }),
        faults: r.faults.as_ref().map(|f| FaultBody {
            replicas: f.replicas,
            expected_ns: f.expected.as_ns(),
            p95_ns: f.p95.as_ns(),
            degradation: f.degradation,
            robustness: f.robustness,
        }),
    }
}

/// Builds the shared `search` payload from a finished report, keeping
/// at most `top` ranked results (refined finals are already a short
/// list). Only deterministic report fields are carried — see the
/// module docs.
pub fn search_response(report: &SearchReport, top: usize) -> SearchResponse {
    SearchResponse {
        kind: "search".to_string(),
        base: report.base_label.clone(),
        base_makespan_ns: report.base_makespan.as_ns(),
        objective: report.objective.to_string(),
        grid_points: report.stats.enumerated,
        budget_rejects: report.stats.budget_rejects,
        divisibility_rejects: report.stats.divisibility_rejects,
        structural_rejects: report.stats.structural_rejects,
        memory_pruned: report.stats.memory_pruned,
        results: report
            .results
            .iter()
            .take(top)
            .enumerate()
            .map(|(i, r)| SearchResultBody {
                rank: i + 1,
                label: r.label.clone(),
                tp: r.candidate.tp,
                pp: r.candidate.pp,
                dp: r.candidate.dp,
                microbatches: r.candidate.microbatches,
                interleave: r.candidate.interleave,
                schedule: r.candidate.schedule.name().to_string(),
                gpus: r.world_size(),
                makespan_ns: r.makespan.as_ns(),
                tokens_per_sec_per_gpu: r.tokens_per_sec_per_gpu,
                mfu: r.utilization.mfu,
                bubble_fraction: r.bubble_fraction,
                memory_bytes: r.memory.total(),
            })
            .collect(),
        refined: report.refined.as_ref().map(|refined| {
            refined
                .iter()
                .enumerate()
                .map(|(i, r)| refined_body(i + 1, r))
                .collect()
        }),
    }
}

/// Builds the `refine` payload from a single-candidate refined report.
pub fn refine_response(base: &str, refined: &RefinedResult) -> RefineResponse {
    RefineResponse {
        kind: "refine".to_string(),
        base: base.to_string(),
        result: refined_body(1, refined),
    }
}

// ---------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------

/// Parses one request line. The error string is the `bad_request`
/// detail the server sends back verbatim.
///
/// # Errors
///
/// Returns a message naming the malformed/unknown/missing field.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let obj = value
        .as_object()
        .ok_or_else(|| format!("request must be a JSON object, got {}", value.kind()))?;
    let kind = obj
        .get("kind")
        .ok_or("missing `kind` field")?
        .as_str()
        .ok_or("`kind` must be a string")?;
    match kind {
        "predict" => parse_predict(obj).map(Request::Predict),
        "search" => parse_search(obj).map(|r| Request::Search(Box::new(r))),
        "refine" => parse_refine(obj).map(Request::Refine),
        "stats" => only_kind(obj).map(|()| Request::Stats),
        "reload" => only_kind(obj).map(|()| Request::Reload),
        "shutdown" => only_kind(obj).map(|()| Request::Shutdown),
        other => Err(format!(
            "unknown request kind `{other}` (expected predict, search, refine, stats, reload, \
             or shutdown)"
        )),
    }
}

/// Rejects unknown keys so typos fail loudly, mirroring the CLI's
/// unknown-option policy.
fn check_keys(obj: &serde_json::Map, allowed: &[&str]) -> Result<(), String> {
    for (key, _) in obj.iter() {
        if key != "kind" && !allowed.contains(&key.as_str()) {
            return Err(format!("unknown field `{key}`"));
        }
    }
    Ok(())
}

fn only_kind(obj: &serde_json::Map) -> Result<(), String> {
    check_keys(obj, &[])
}

fn field_str(obj: &serde_json::Map, key: &str) -> Result<String, String> {
    obj.get(key)
        .ok_or_else(|| format!("missing `{key}` field"))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("`{key}` must be a string"))
}

fn field_u64_opt(obj: &serde_json::Map, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn field_u32_opt(obj: &serde_json::Map, key: &str) -> Result<Option<u32>, String> {
    match field_u64_opt(obj, key)? {
        None => Ok(None),
        Some(v) => u32::try_from(v)
            .map(Some)
            .map_err(|_| format!("`{key}` is out of range")),
    }
}

fn field_bool(obj: &serde_json::Map, key: &str) -> Result<bool, String> {
    match obj.get(key) {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("`{key}` must be a boolean")),
    }
}

/// A `u32` axis: an array of values (absent = empty = base value).
fn field_axis(obj: &serde_json::Map, key: &str) -> Result<Vec<u32>, String> {
    match obj.get(key) {
        None => Ok(Vec::new()),
        Some(v) => {
            let arr = v
                .as_array()
                .ok_or_else(|| format!("`{key}` must be an array of integers"))?;
            arr.iter()
                .map(|e| {
                    e.as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| format!("`{key}` must contain non-negative integers"))
                })
                .collect()
        }
    }
}

/// A string axis: an array of names (absent = empty = base value).
fn field_str_axis(obj: &serde_json::Map, key: &str) -> Result<Vec<String>, String> {
    match obj.get(key) {
        None => Ok(Vec::new()),
        Some(v) => {
            let arr = v
                .as_array()
                .ok_or_else(|| format!("`{key}` must be an array of strings"))?;
            arr.iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("`{key}` must contain strings"))
                })
                .collect()
        }
    }
}

fn parse_predict(obj: &serde_json::Map) -> Result<PredictRequest, String> {
    check_keys(
        obj,
        &[
            "artifact",
            "tp",
            "pp",
            "dp",
            "layers",
            "hidden",
            "ffn",
            "seq",
            "microbatches",
            "deadline_ms",
        ],
    )?;
    let req = PredictRequest {
        artifact: field_str(obj, "artifact")?,
        tp: field_u32_opt(obj, "tp")?,
        pp: field_u32_opt(obj, "pp")?,
        dp: field_u32_opt(obj, "dp")?,
        layers: field_u32_opt(obj, "layers")?,
        hidden: field_u64_opt(obj, "hidden")?,
        ffn: field_u64_opt(obj, "ffn")?,
        seq: field_u64_opt(obj, "seq")?,
        microbatches: field_u32_opt(obj, "microbatches")?,
        deadline_ms: field_u64_opt(obj, "deadline_ms")?,
    };
    if req.hidden.is_some() != req.ffn.is_some() {
        return Err("`hidden` and `ffn` must be given together".to_string());
    }
    if req.tp.is_none()
        && req.pp.is_none()
        && req.dp.is_none()
        && req.layers.is_none()
        && req.hidden.is_none()
        && req.seq.is_none()
        && req.microbatches.is_none()
    {
        return Err(
            "no transform requested (pass tp/pp/dp/layers/hidden+ffn/seq/microbatches)".to_string(),
        );
    }
    Ok(req)
}

fn parse_search(obj: &serde_json::Map) -> Result<SearchRequest, String> {
    check_keys(
        obj,
        &[
            "artifact",
            "tp",
            "pp",
            "dp",
            "microbatches",
            "interleave",
            "schedules",
            "gpus",
            "max_gpus",
            "objective",
            "top",
            "memory_gib",
            "refine_sim",
            "jitter_replicas",
            "jitter_seed",
            "faults_toml",
            "fault_replicas",
            "fault_seed",
            "deadline_ms",
            "adaptive",
            "budget",
            "seed",
        ],
    )?;
    let gpus = match obj.get("gpus") {
        None => None,
        Some(_) => Some(field_axis(obj, "gpus")?),
    };
    let top = match field_u64_opt(obj, "top")? {
        Some(0) => return Err("`top` must be at least 1".to_string()),
        Some(k) => Some(k as usize),
        None => None,
    };
    Ok(SearchRequest {
        artifact: field_str(obj, "artifact")?,
        tp: field_axis(obj, "tp")?,
        pp: field_axis(obj, "pp")?,
        dp: field_axis(obj, "dp")?,
        microbatches: field_axis(obj, "microbatches")?,
        interleave: field_axis(obj, "interleave")?,
        schedules: field_str_axis(obj, "schedules")?,
        gpus,
        max_gpus: field_u32_opt(obj, "max_gpus")?,
        objective: match obj.get("objective") {
            None => None,
            Some(_) => Some(field_str(obj, "objective")?),
        },
        top,
        memory_gib: field_u32_opt(obj, "memory_gib")?,
        refine_sim: field_bool(obj, "refine_sim")?,
        jitter_replicas: field_u32_opt(obj, "jitter_replicas")?.unwrap_or(0),
        jitter_seed: field_u64_opt(obj, "jitter_seed")?,
        faults_toml: match obj.get("faults_toml") {
            None => None,
            Some(_) => Some(field_str(obj, "faults_toml")?),
        },
        fault_replicas: field_u32_opt(obj, "fault_replicas")?,
        fault_seed: field_u64_opt(obj, "fault_seed")?,
        deadline_ms: field_u64_opt(obj, "deadline_ms")?,
        adaptive: field_bool(obj, "adaptive")?,
        budget: field_u64_opt(obj, "budget")?.map(|b| b as usize),
        seed: field_u64_opt(obj, "seed")?,
    })
}

fn parse_refine(obj: &serde_json::Map) -> Result<RefineRequest, String> {
    check_keys(
        obj,
        &[
            "artifact",
            "tp",
            "pp",
            "dp",
            "microbatches",
            "interleave",
            "schedule",
            "jitter_replicas",
            "jitter_seed",
            "deadline_ms",
        ],
    )?;
    Ok(RefineRequest {
        artifact: field_str(obj, "artifact")?,
        tp: field_u32_opt(obj, "tp")?,
        pp: field_u32_opt(obj, "pp")?,
        dp: field_u32_opt(obj, "dp")?,
        microbatches: field_u32_opt(obj, "microbatches")?,
        interleave: field_u32_opt(obj, "interleave")?,
        schedule: match obj.get("schedule") {
            None => None,
            Some(_) => Some(field_str(obj, "schedule")?),
        },
        jitter_replicas: field_u32_opt(obj, "jitter_replicas")?.unwrap_or(0),
        jitter_seed: field_u64_opt(obj, "jitter_seed")?,
        deadline_ms: field_u64_opt(obj, "deadline_ms")?,
    })
}
