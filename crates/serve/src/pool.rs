//! The bounded worker pool and the per-request execution paths.
//!
//! Compute requests (`predict` / `search` / `refine`) flow through a
//! bounded queue into a fixed set of worker threads — the daemon's
//! backpressure story in one place:
//!
//! * **shed, don't buffer**: when the queue is full, [`Pool::submit`]
//!   hands the job back and the connection answers with a typed
//!   `overloaded` error instead of queueing unboundedly;
//! * **deadlines are end-to-end**: a request's deadline covers queue
//!   wait *and* service. A job that expires while queued is answered
//!   `deadline_exceeded` without running; a search that expires
//!   mid-run is cancelled cooperatively via
//!   [`lumos_search::SearchOptions::deadline`] threaded into the
//!   atomic-cursor evaluator;
//! * **artifacts are pinned at enqueue**: a job carries its
//!   `Arc<LoadedArtifact>`, so a registry reload during queueing or
//!   execution never changes what the request computes against.

use crate::protocol::{self, ErrorResponse, PredictRequest, RefineRequest, SearchRequest};
use crate::registry::LoadedArtifact;
use crate::stats::ServerStats;
use lumos_core::manipulate::Transform;
use lumos_core::Lumos;
use lumos_cost::GpuSpec;
use lumos_search::{search_calibrated, SearchError, SearchOptions, SpaceSpec};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A compute request bound for the pool.
#[derive(Debug, Clone)]
pub(crate) enum ComputeRequest {
    Predict(PredictRequest),
    Search(Box<SearchRequest>),
    Refine(RefineRequest),
}

/// One queued unit of work: the pinned artifact, the request, and the
/// reply channel its connection is waiting on.
pub(crate) struct Job {
    pub artifact: Arc<LoadedArtifact>,
    pub request: ComputeRequest,
    /// Stats slot of the request kind.
    pub kind_slot: usize,
    /// When the connection enqueued it (latency measurement origin).
    pub enqueued: Instant,
    /// Absolute expiry instant, from the request's `deadline_ms`.
    pub deadline: Option<Instant>,
    /// Where the finished response line goes.
    pub reply: mpsc::Sender<String>,
}

/// The bounded worker pool.
pub(crate) struct Pool {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    queue_capacity: usize,
}

impl Pool {
    /// Spawns `workers` threads over a bounded queue of
    /// `queue_capacity` jobs.
    pub(crate) fn new(
        workers: usize,
        queue_capacity: usize,
        stats: Arc<ServerStats>,
        search_threads: Option<usize>,
    ) -> Pool {
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || worker_loop(&rx, &stats, search_threads))
            })
            .collect();
        Pool {
            tx: Some(tx),
            workers: handles,
            queue_capacity,
        }
    }

    /// The queue bound (for stats reporting).
    pub(crate) fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Worker-thread count (for stats reporting).
    pub(crate) fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job, or hands it back when the queue is full (the
    /// caller sheds it with an `overloaded` response).
    pub(crate) fn submit(&self, job: Job) -> Result<(), Box<Job>> {
        let tx = self.tx.as_ref().expect("pool already shut down");
        match tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
                Err(Box::new(job))
            }
        }
    }

    /// Closes the queue and joins every worker (queued jobs drain
    /// first).
    pub(crate) fn shutdown(&mut self) {
        self.tx = None; // disconnects the channel; workers drain and exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, stats: &ServerStats, search_threads: Option<usize>) {
    loop {
        // Hold the receiver lock only for the dequeue itself.
        let job = match rx.lock().expect("pool queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => break, // queue closed: daemon shutting down
        };
        stats.dequeue();
        let line = run_job(&job, stats, search_threads);
        // A vanished connection is not a worker problem.
        let _ = job.reply.send(line);
    }
}

/// Executes one job end to end, producing the response line and
/// updating the counters.
fn run_job(job: &Job, stats: &ServerStats, search_threads: Option<usize>) -> String {
    let now = Instant::now();
    if job.deadline.is_some_and(|d| now >= d) {
        // Expired while queued: answer without running.
        stats.record_deadline_exceeded();
        return protocol::response_line(&ErrorResponse::new(
            "deadline_exceeded",
            "request expired while queued",
        ));
    }
    let remaining = job.deadline.map(|d| d.saturating_duration_since(now));
    let outcome = match &job.request {
        ComputeRequest::Predict(req) => execute_predict(&job.artifact, req),
        ComputeRequest::Search(req) => {
            execute_search(&job.artifact, req, search_threads, remaining, stats)
        }
        ComputeRequest::Refine(req) => {
            execute_refine(&job.artifact, req, search_threads, remaining)
        }
    };
    match outcome {
        Ok(line) => {
            let latency_us = job.enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            stats.record_served(job.kind_slot, latency_us);
            line
        }
        Err(err) => {
            if err.error.kind == "deadline_exceeded" {
                stats.record_deadline_exceeded();
            }
            protocol::response_line(&err)
        }
    }
}

fn bad_request(detail: impl Into<String>) -> ErrorResponse {
    ErrorResponse::new("bad_request", detail)
}

/// Resolves schedule names against the registry; an unknown name is a
/// `bad_request` whose detail lists the registered set.
fn resolve_schedules(names: &[String]) -> Result<Vec<lumos_model::ScheduleKind>, ErrorResponse> {
    names
        .iter()
        .map(|name| {
            lumos_model::ScheduleBuilder::from_name(name)
                .build()
                .map_err(|e| bad_request(e.to_string()))
        })
        .collect()
}

/// Maps a search failure onto the protocol's error kinds.
fn search_error(err: &SearchError) -> ErrorResponse {
    match err {
        SearchError::DeadlineExceeded => ErrorResponse::new("deadline_exceeded", err.to_string()),
        SearchError::EmptySpace { .. } => ErrorResponse::new("infeasible", err.to_string()),
        SearchError::InvalidProgram { .. } => {
            ErrorResponse::new("invalid_program", err.to_string())
        }
        _ => ErrorResponse::new("internal", err.to_string()),
    }
}

/// The request's transforms in the same order `lumos predict` applies
/// them — a different order could reassemble a different (equally
/// valid) graph and break byte-identity with the CLI.
fn predict_transforms(req: &PredictRequest) -> Result<Vec<Transform>, ErrorResponse> {
    let mut transforms = Vec::new();
    if let Some(tp) = req.tp {
        transforms.push(Transform::TensorParallel { tp });
    }
    if let Some(pp) = req.pp {
        transforms.push(Transform::PipelineParallel { pp });
    }
    if let Some(dp) = req.dp {
        transforms.push(Transform::DataParallel { dp });
    }
    if let Some(layers) = req.layers {
        transforms.push(Transform::NumLayers { layers });
    }
    match (req.hidden, req.ffn) {
        (Some(hidden), Some(ffn)) => transforms.push(Transform::HiddenSize { hidden, ffn }),
        (None, None) => {}
        _ => return Err(bad_request("`hidden` and `ffn` must be given together")),
    }
    if let Some(seq_len) = req.seq {
        transforms.push(Transform::SeqLen { seq_len });
    }
    if let Some(num) = req.microbatches {
        transforms.push(Transform::Microbatches { num });
    }
    if transforms.is_empty() {
        return Err(bad_request("no transform requested"));
    }
    Ok(transforms)
}

fn execute_predict(la: &LoadedArtifact, req: &PredictRequest) -> Result<String, ErrorResponse> {
    let transforms = predict_transforms(req)?;
    let toolkit = Lumos::new();
    let prediction = toolkit
        .predict_with_library(
            la.calibration.library(),
            la.calibration.base(),
            &transforms,
            la.calibration.lookup(),
        )
        .map_err(|e| ErrorResponse::new("infeasible", e.to_string()))?;
    let response = protocol::predict_response(
        &la.calibration.base().label(),
        la.artifact.fingerprint.makespan,
        &prediction,
    );
    Ok(protocol::response_line(&response))
}

/// Search knobs shared by `search` and `refine`, mirroring the CLI's
/// wiring exactly (objective / memory / top / refinement) so daemon
/// and `--json` output stay byte-identical.
#[allow(clippy::too_many_arguments)]
fn search_options(
    objective: Option<&str>,
    memory_gib: Option<u32>,
    top: usize,
    refine_sim: bool,
    jitter_replicas: u32,
    jitter_seed: Option<u64>,
    search_threads: Option<usize>,
    remaining: Option<std::time::Duration>,
    la: &LoadedArtifact,
) -> Result<SearchOptions, ErrorResponse> {
    let mut opts = SearchOptions::default();
    if let Some(objective) = objective {
        opts.objective = objective.parse().map_err(|e: String| bad_request(e))?;
    }
    if let Some(gib) = memory_gib {
        if gib == 0 {
            return Err(bad_request("gpu memory capacity must be positive"));
        }
        opts.gpu = GpuSpec {
            memory_gib: gib,
            ..opts.gpu
        };
    }
    opts.top_k = Some(top);
    opts.refine_sim = refine_sim;
    if jitter_replicas > 0 {
        opts.jitter_replicas = jitter_replicas;
        opts.refine_sim = true;
    }
    if let Some(seed) = jitter_seed {
        if !opts.refine_sim {
            return Err(bad_request(
                "`jitter_seed` only applies with `refine_sim` / `jitter_replicas`",
            ));
        }
        opts.jitter_seed = seed;
    }
    // Admission-time safety: anything the daemon simulates on behalf
    // of a remote caller is statically verified first. Free for clean
    // programs (results stay byte-identical with the CLI, which only
    // verifies under --verify).
    opts.verify = true;
    opts.threads = search_threads;
    opts.deadline = remaining;
    opts.shared_memo = Some(Arc::clone(&la.shared_memo));
    Ok(opts)
}

fn execute_search(
    la: &LoadedArtifact,
    req: &SearchRequest,
    search_threads: Option<usize>,
    remaining: Option<std::time::Duration>,
    stats: &ServerStats,
) -> Result<String, ErrorResponse> {
    let top = req.top.unwrap_or(10);
    let mut opts = search_options(
        req.objective.as_deref(),
        req.memory_gib,
        top,
        req.refine_sim,
        req.jitter_replicas,
        req.jitter_seed,
        search_threads,
        remaining,
        la,
    )?;
    if let Some(text) = &req.faults_toml {
        let spec = lumos_cluster::FaultSpec::parse(text)
            .map_err(|e| bad_request(format!("`faults_toml`: {e}")))?;
        opts.fault_spec = Some(spec);
        opts.refine_sim = true; // robustness requires the refinement pass
    }
    if let Some(replicas) = req.fault_replicas {
        if opts.fault_spec.is_none() {
            return Err(bad_request(
                "`fault_replicas` only applies with `faults_toml`",
            ));
        }
        opts.fault_replicas = replicas;
    }
    if let Some(seed) = req.fault_seed {
        if opts.fault_spec.is_none() {
            return Err(bad_request("`fault_seed` only applies with `faults_toml`"));
        }
        opts.fault_seed = seed;
    }
    opts.adaptive = req.adaptive;
    if let Some(budget) = req.budget {
        if !req.adaptive {
            return Err(bad_request("`budget` only applies with `adaptive`"));
        }
        opts.budget = Some(budget);
    }
    if let Some(seed) = req.seed {
        if !req.adaptive {
            return Err(bad_request("`seed` only applies with `adaptive`"));
        }
        opts.seed = seed;
    }
    let mut space = SpaceSpec::empty();
    space.tp = req.tp.clone();
    space.pp = req.pp.clone();
    space.dp = req.dp.clone();
    space.microbatches = req.microbatches.clone();
    space.interleave = req.interleave.clone();
    space.schedules = resolve_schedules(&req.schedules)?;
    space.gpus = req.gpus.clone();
    if let Some(max_gpus) = req.max_gpus {
        space.max_gpus = max_gpus;
    }
    let report = search_calibrated(&la.calibration, &space, &opts).map_err(|e| search_error(&e))?;
    if let Some(adaptive) = &report.adaptive {
        stats.record_adaptive(adaptive.visited as u64, adaptive.frontier as u64);
    }
    if let Some(refined) = &report.refined {
        let replicas: u64 = refined
            .iter()
            .filter_map(|r| r.faults.as_ref())
            .map(|f| u64::from(f.replicas))
            .sum();
        if replicas > 0 {
            stats.record_faults(replicas);
        }
    }
    Ok(protocol::response_line(&protocol::search_response(
        &report, top,
    )))
}

fn execute_refine(
    la: &LoadedArtifact,
    req: &RefineRequest,
    search_threads: Option<usize>,
    remaining: Option<std::time::Duration>,
) -> Result<String, ErrorResponse> {
    let base = la.calibration.base();
    // A single-point space: absent fields pin to the base values, so
    // the whole search machinery (lattice, memory gate, refinement)
    // runs over exactly one candidate.
    let mut space = SpaceSpec::empty();
    space.tp = vec![req.tp.unwrap_or(base.parallelism.tp)];
    space.pp = vec![req.pp.unwrap_or(base.parallelism.pp)];
    space.dp = vec![req.dp.unwrap_or(base.parallelism.dp)];
    space.microbatches = vec![req.microbatches.unwrap_or(base.batch.num_microbatches)];
    space.interleave = vec![req.interleave.unwrap_or(1)];
    if let Some(name) = &req.schedule {
        space.schedules = resolve_schedules(std::slice::from_ref(name))?;
    }
    let opts = search_options(
        None,
        None,
        1,
        true,
        req.jitter_replicas,
        req.jitter_seed,
        search_threads,
        remaining,
        la,
    )?;
    let report = search_calibrated(&la.calibration, &space, &opts).map_err(|e| search_error(&e))?;
    match report.refined.as_ref().and_then(|r| r.first()) {
        Some(refined) => Ok(protocol::response_line(&protocol::refine_response(
            &report.base_label,
            refined,
        ))),
        None => {
            let detail = if let Some(p) = report.pruned.first() {
                format!(
                    "memory-infeasible: stage {} requires {} bytes (capacity {})",
                    p.stage, p.required_bytes, p.capacity_bytes
                )
            } else if let Some(r) = report.rejected.first() {
                format!("not rankable: {}", r.reason)
            } else {
                "candidate was rejected by the configuration lattice".to_string()
            };
            Err(ErrorResponse::new("infeasible", detail))
        }
    }
}
