//! Server observability: lock-free counters and fixed-bucket latency
//! histograms behind the `stats` request.
//!
//! Latencies are recorded in power-of-two microsecond buckets, so a
//! quantile costs one pass over ~40 `u64`s and reports the bucket's
//! upper bound (a conservative answer: the true quantile is ≤ the
//! reported value, never above it). Recording is a single relaxed
//! atomic increment — cheap enough to sit on every request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Power-of-two µs buckets: bucket `i` holds latencies in
/// `[2^(i−1), 2^i)` µs (bucket 0 holds `0`), covering sub-µs to
/// ~2^39 µs ≈ 6 days.
const BUCKETS: usize = 40;

/// One fixed-bucket latency histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one latency observation.
    pub fn record_us(&self, us: u64) {
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the matching bucket's upper
    /// bound in µs; `0` when nothing was recorded.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if cumulative >= target {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Per-request-kind slot index: the compute kinds the pool serves.
pub const KIND_NAMES: [&str; 3] = ["predict", "search", "refine"];

/// The daemon's shared counters. All methods are `&self` and
/// thread-safe.
#[derive(Debug)]
pub struct ServerStats {
    started: Instant,
    served: [AtomicU64; 3],
    histograms: [Histogram; 3],
    rejected_overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    queue_depth: AtomicU64,
    adaptive_runs: AtomicU64,
    adaptive_visited: AtomicU64,
    adaptive_frontier: AtomicU64,
    fault_runs: AtomicU64,
    fault_replicas_executed: AtomicU64,
}

impl ServerStats {
    /// Fresh counters; uptime starts now.
    pub fn new() -> Self {
        ServerStats {
            started: Instant::now(),
            served: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            histograms: [Histogram::new(), Histogram::new(), Histogram::new()],
            rejected_overloaded: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            adaptive_runs: AtomicU64::new(0),
            adaptive_visited: AtomicU64::new(0),
            adaptive_frontier: AtomicU64::new(0),
            fault_runs: AtomicU64::new(0),
            fault_replicas_executed: AtomicU64::new(0),
        }
    }

    /// Slot of a compute-request kind name (`None` for admin kinds).
    pub fn kind_slot(kind: &str) -> Option<usize> {
        KIND_NAMES.iter().position(|&k| k == kind)
    }

    /// Seconds since the daemon started.
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Records one successfully served compute request and its
    /// client-visible latency (queue wait + service).
    pub fn record_served(&self, slot: usize, latency_us: u64) {
        self.served[slot].fetch_add(1, Ordering::Relaxed);
        self.histograms[slot].record_us(latency_us);
    }

    /// Requests served for one kind slot.
    pub fn served(&self, slot: usize) -> u64 {
        self.served[slot].load(Ordering::Relaxed)
    }

    /// Latency quantile for one kind slot.
    pub fn quantile_us(&self, slot: usize, q: f64) -> u64 {
        self.histograms[slot].quantile_us(q)
    }

    /// Counts one request shed because the queue was full.
    pub fn record_overloaded(&self) {
        self.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests shed so far.
    pub fn overloaded(&self) -> u64 {
        self.rejected_overloaded.load(Ordering::Relaxed)
    }

    /// Counts one request that hit its deadline (queued or running).
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Deadline-exceeded requests so far.
    pub fn deadline_exceeded(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Queue-depth bookkeeping: one request entered the bounded queue.
    pub fn enqueue(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Queue-depth bookkeeping: a worker took one request out.
    pub fn dequeue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Compute requests waiting in the queue right now.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Records one completed adaptive search: how many grid indices it
    /// visited and its frontier size at termination.
    pub fn record_adaptive(&self, visited: u64, frontier: u64) {
        self.adaptive_runs.fetch_add(1, Ordering::Relaxed);
        self.adaptive_visited.fetch_add(visited, Ordering::Relaxed);
        self.adaptive_frontier
            .fetch_add(frontier, Ordering::Relaxed);
    }

    /// Adaptive searches served so far.
    pub fn adaptive_runs(&self) -> u64 {
        self.adaptive_runs.load(Ordering::Relaxed)
    }

    /// Grid indices visited across all adaptive searches.
    pub fn adaptive_visited(&self) -> u64 {
        self.adaptive_visited.load(Ordering::Relaxed)
    }

    /// Frontier entries live at termination, summed over runs.
    pub fn adaptive_frontier(&self) -> u64 {
        self.adaptive_frontier.load(Ordering::Relaxed)
    }

    /// Records one fault-robust search: how many fault replicas it
    /// executed across its finalists.
    pub fn record_faults(&self, replicas: u64) {
        self.fault_runs.fetch_add(1, Ordering::Relaxed);
        self.fault_replicas_executed
            .fetch_add(replicas, Ordering::Relaxed);
    }

    /// Fault-robust searches served so far.
    pub fn fault_runs(&self) -> u64 {
        self.fault_runs.load(Ordering::Relaxed)
    }

    /// Fault replicas executed across all fault-robust searches.
    pub fn fault_replicas_executed(&self) -> u64 {
        self.fault_replicas_executed.load(Ordering::Relaxed)
    }
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        for us in [1u64, 1, 1, 1000] {
            h.record_us(us);
        }
        // Three of four observations land in the 1 µs bucket (< 2 µs).
        assert_eq!(h.quantile_us(0.5), 2);
        assert_eq!(h.quantile_us(0.75), 2);
        // The tail observation lands in [512, 1024) µs.
        assert_eq!(h.quantile_us(0.99), 1024);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn zero_latency_lands_in_bucket_zero() {
        let h = Histogram::new();
        h.record_us(0);
        assert_eq!(h.quantile_us(1.0), 1);
    }
}
