//! The TCP server loop: accept connections, parse request lines,
//! answer admin requests inline, and feed compute requests through
//! the bounded pool.
//!
//! Wire format: one JSON request object per line in, one JSON response
//! object per line out, in request order per connection. Admin
//! requests (`stats`, `reload`, `shutdown`) are answered by the
//! connection thread itself — they must stay responsive when the pool
//! is saturated, which is exactly when an operator needs them.

use crate::pool::{ComputeRequest, Job, Pool};
use crate::protocol::{
    self, ArtifactStatsBody, ErrorResponse, KindStatsBody, ReloadRejectBody, ReloadResponse,
    Request, ShutdownResponse, StatsResponse,
};
use crate::registry::{Registry, ReloadOutcome};
use crate::stats::{ServerStats, KIND_NAMES};
use crate::{ServeConfig, ServeError};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// The running daemon: a bound listener, the artifact registry, the
/// worker pool, and the shared counters.
pub struct Server {
    listener: TcpListener,
    registry: Arc<Registry>,
    stats: Arc<ServerStats>,
    pool: Arc<Pool>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener, scans the registry directory, and spawns
    /// the worker pool. Returns the server plus the initial scan
    /// outcome (loaded digests, rejected files) so the caller can
    /// report them.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the address cannot be bound and
    /// [`ServeError::Registry`] when the directory cannot be read.
    pub fn bind(config: &ServeConfig) -> Result<(Server, ReloadOutcome), ServeError> {
        let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Io {
            context: format!("binding {}", config.addr),
            source,
        })?;
        let (registry, outcome) = Registry::open(&config.registry_dir)?;
        let stats = Arc::new(ServerStats::new());
        let pool = Arc::new(Pool::new(
            config.workers,
            config.queue_capacity,
            Arc::clone(&stats),
            config.search_threads,
        ));
        Ok((
            Server {
                listener,
                registry: Arc::new(registry),
                stats,
                pool,
                stop: Arc::new(AtomicBool::new(false)),
            },
            outcome,
        ))
    }

    /// The bound address (resolves port 0 to the actual port).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the socket cannot report it.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener.local_addr().map_err(|source| ServeError::Io {
            context: "resolving local address".to_string(),
            source,
        })
    }

    /// A flag that stops the accept loop when set (the `shutdown`
    /// request uses it; tests can too).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serves until a `shutdown` request (or the stop handle) stops
    /// the loop. Each connection gets its own thread; compute
    /// concurrency is bounded by the pool, not the connection count.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on accept failures.
    pub fn run(self) -> Result<(), ServeError> {
        let addr = self.local_addr()?;
        loop {
            let (stream, _) = self.listener.accept().map_err(|source| ServeError::Io {
                context: "accepting connection".to_string(),
                source,
            })?;
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            let conn = Connection {
                registry: Arc::clone(&self.registry),
                stats: Arc::clone(&self.stats),
                pool: Arc::clone(&self.pool),
                stop: Arc::clone(&self.stop),
                addr,
            };
            std::thread::spawn(move || conn.serve(stream));
        }
        Ok(())
    }
}

/// Per-connection state: shared handles plus the server address used
/// to poke the accept loop awake on shutdown.
struct Connection {
    registry: Arc<Registry>,
    stats: Arc<ServerStats>,
    pool: Arc<Pool>,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl Connection {
    fn serve(&self, stream: TcpStream) {
        let Ok(mut writer) = stream.try_clone() else {
            return;
        };
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { return };
            if line.trim().is_empty() {
                continue;
            }
            let (response, shutdown) = self.answer(&line);
            if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
                return;
            }
            if shutdown {
                self.stop.store(true, Ordering::Relaxed);
                // The accept loop is blocked in `accept`; one throwaway
                // connection wakes it so it can observe the flag.
                let _ = TcpStream::connect(self.addr);
                return;
            }
        }
    }

    /// Answers one request line; the bool asks the caller to shut the
    /// daemon down after writing the response.
    fn answer(&self, line: &str) -> (String, bool) {
        let request = match protocol::parse_request(line) {
            Ok(request) => request,
            Err(detail) => {
                return (
                    protocol::response_line(&ErrorResponse::new("bad_request", detail)),
                    false,
                )
            }
        };
        match request {
            Request::Stats => (protocol::response_line(&self.stats_response()), false),
            Request::Reload => (self.reload_response(), false),
            Request::Shutdown => (
                protocol::response_line(&ShutdownResponse {
                    kind: "shutdown".to_string(),
                }),
                true,
            ),
            Request::Predict(req) => {
                let deadline = deadline_from(req.deadline_ms);
                let digest = req.artifact.clone();
                (
                    self.dispatch(&digest, ComputeRequest::Predict(req), 0, deadline),
                    false,
                )
            }
            Request::Search(req) => {
                let deadline = deadline_from(req.deadline_ms);
                let digest = req.artifact.clone();
                (
                    self.dispatch(&digest, ComputeRequest::Search(req), 1, deadline),
                    false,
                )
            }
            Request::Refine(req) => {
                let deadline = deadline_from(req.deadline_ms);
                let digest = req.artifact.clone();
                (
                    self.dispatch(&digest, ComputeRequest::Refine(req), 2, deadline),
                    false,
                )
            }
        }
    }

    /// Pins the artifact, enqueues the job, and waits for its reply —
    /// shedding typed errors when the digest is unknown or the queue
    /// is full.
    fn dispatch(
        &self,
        digest: &str,
        request: ComputeRequest,
        kind_slot: usize,
        deadline: Option<Instant>,
    ) -> String {
        let Some(artifact) = self.registry.get(digest) else {
            return protocol::response_line(&ErrorResponse::new(
                "unknown_artifact",
                format!("no artifact with digest {digest} is loaded (try `reload`)"),
            ));
        };
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            artifact,
            request,
            kind_slot,
            enqueued: Instant::now(),
            deadline,
            reply: reply_tx,
        };
        self.stats.enqueue();
        if self.pool.submit(job).is_err() {
            self.stats.dequeue();
            self.stats.record_overloaded();
            return protocol::response_line(&ErrorResponse::new(
                "overloaded",
                "request queue is full; retry later",
            ));
        }
        match reply_rx.recv() {
            Ok(line) => line,
            Err(_) => protocol::response_line(&ErrorResponse::new(
                "internal",
                "worker dropped the request",
            )),
        }
    }

    fn stats_response(&self) -> StatsResponse {
        StatsResponse {
            kind: "stats".to_string(),
            uptime_secs: self.stats.uptime_secs(),
            queue_depth: self.stats.queue_depth(),
            queue_capacity: self.pool.queue_capacity(),
            workers: self.pool.worker_count(),
            served: (0..KIND_NAMES.len()).map(|s| self.stats.served(s)).sum(),
            rejected_overloaded: self.stats.overloaded(),
            deadline_exceeded: self.stats.deadline_exceeded(),
            artifacts: self
                .registry
                .snapshot()
                .iter()
                .map(|la| {
                    let memo = la.shared_memo.stats();
                    let total = memo.hits + memo.misses;
                    ArtifactStatsBody {
                        digest: la.digest.clone(),
                        schedule: la.calibration.base().schedule.name().to_string(),
                        memo_hits: memo.hits as u64,
                        memo_misses: memo.misses as u64,
                        memo_hit_rate: if total == 0 {
                            0.0
                        } else {
                            memo.hits as f64 / total as f64
                        },
                    }
                })
                .collect(),
            request_kinds: KIND_NAMES
                .iter()
                .enumerate()
                .map(|(slot, kind)| KindStatsBody {
                    kind: kind.to_string(),
                    served: self.stats.served(slot),
                    p50_us: self.stats.quantile_us(slot, 0.50),
                    p95_us: self.stats.quantile_us(slot, 0.95),
                    p99_us: self.stats.quantile_us(slot, 0.99),
                })
                .collect(),
            adaptive_runs: self.stats.adaptive_runs(),
            adaptive_visited: self.stats.adaptive_visited(),
            adaptive_frontier: self.stats.adaptive_frontier(),
            fault_runs: self.stats.fault_runs(),
            fault_replicas_executed: self.stats.fault_replicas_executed(),
        }
    }

    fn reload_response(&self) -> String {
        match self.registry.reload() {
            Ok(outcome) => protocol::response_line(&ReloadResponse {
                kind: "reload".to_string(),
                loaded: outcome.loaded,
                kept: outcome.kept,
                dropped: outcome.dropped,
                rejected: outcome
                    .rejected
                    .into_iter()
                    .map(|(path, detail)| ReloadRejectBody { path, detail })
                    .collect(),
            }),
            Err(err) => protocol::response_line(&ErrorResponse::new("internal", err.to_string())),
        }
    }
}

fn deadline_from(deadline_ms: Option<u64>) -> Option<Instant> {
    deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms))
}
