//! Launch-queue and stream-occupancy analytics.
//!
//! Two signals engineers read off Kineto timelines when hunting
//! dispatch bottlenecks, computed here from any trace (profiled or
//! simulated):
//!
//! * **queue delay** — the gap between a `cudaLaunchKernel`'s end and
//!   its kernel's start. Near-zero delays mean the GPU is draining the
//!   stream as fast as the host can feed it (launch-bound execution);
//!   large delays mean kernels queue behind earlier GPU work
//!   (GPU-bound execution);
//! * **stream occupancy** — the busy fraction of each stream over the
//!   rank's active window, separating "one stream saturated" from
//!   "work spread thinly across streams".

use crate::event::EventKind;
use crate::interval::IntervalSet;
use crate::time::{Dur, Ts};
use crate::trace::RankTrace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Order statistics of launch→start delays on one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueDelayStats {
    /// Number of launch/kernel pairs measured.
    pub count: u64,
    /// Mean delay.
    pub mean: Dur,
    /// Median delay.
    pub p50: Dur,
    /// 99th-percentile delay.
    pub p99: Dur,
    /// Largest delay.
    pub max: Dur,
}

impl QueueDelayStats {
    /// Returns `true` when execution is launch-bound: the typical
    /// kernel starts within `threshold` of its launch, i.e. the GPU
    /// is waiting on the host rather than the reverse.
    pub fn is_launch_bound(&self, threshold: Dur) -> bool {
        self.p50 <= threshold
    }
}

/// Computes launch→kernel-start delay statistics for one rank.
///
/// Kernels whose launch cannot be found (foreign correlation ids) are
/// skipped. Returns `None` when no pair exists.
pub fn queue_delays(trace: &RankTrace) -> Option<QueueDelayStats> {
    // Correlation -> launch end.
    let mut launch_end: HashMap<u64, Ts> = HashMap::new();
    for e in trace.events() {
        if let EventKind::CudaRuntime {
            kind, correlation, ..
        } = e.kind
        {
            if kind.launches_work() && correlation != 0 {
                launch_end.insert(correlation, e.end());
            }
        }
    }
    let mut delays: Vec<Dur> = Vec::new();
    for e in trace.kernels() {
        let Some(corr) = e.kind.correlation() else {
            continue;
        };
        if let Some(&le) = launch_end.get(&corr) {
            delays.push(e.ts.saturating_since(le));
        }
    }
    if delays.is_empty() {
        return None;
    }
    delays.sort_unstable();
    let count = delays.len() as u64;
    let total: u128 = delays.iter().map(|d| d.as_ns() as u128).sum();
    let at = |q: f64| delays[((delays.len() - 1) as f64 * q).round() as usize];
    Some(QueueDelayStats {
        count,
        mean: Dur((total / count as u128) as u64),
        p50: at(0.50),
        p99: at(0.99),
        max: *delays.last().expect("non-empty"),
    })
}

/// Busy fraction of one stream over the rank's active window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamOccupancy {
    /// Stream id.
    pub stream: u32,
    /// Total busy time (union of kernel spans).
    pub busy: Dur,
    /// Busy fraction of the rank's active window in `[0, 1]`.
    pub fraction: f64,
    /// Kernels executed.
    pub kernels: u64,
}

/// Computes per-stream occupancy for one rank, descending by busy
/// time. Returns an empty vector for kernel-less traces.
pub fn stream_occupancy(trace: &RankTrace) -> Vec<StreamOccupancy> {
    let mut per_stream: HashMap<u32, Vec<crate::time::TimeSpan>> = HashMap::new();
    let mut lo = Ts(u64::MAX);
    let mut hi = Ts(0);
    for e in trace.events() {
        lo = lo.min(e.ts);
        hi = hi.max(e.end());
        if let EventKind::Kernel { stream, .. } = e.kind {
            per_stream.entry(stream.0).or_default().push(e.span());
        }
    }
    if per_stream.is_empty() {
        return Vec::new();
    }
    let window = hi.saturating_since(lo).as_secs_f64().max(f64::MIN_POSITIVE);
    let mut v: Vec<StreamOccupancy> = per_stream
        .into_iter()
        .map(|(stream, spans)| {
            let kernels = spans.len() as u64;
            let busy = IntervalSet::from_spans(spans).total();
            StreamOccupancy {
                stream,
                busy,
                fraction: busy.as_secs_f64() / window,
                kernels,
            }
        })
        .collect();
    v.sort_by(|a, b| b.busy.cmp(&a.busy).then(a.stream.cmp(&b.stream)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CudaRuntimeKind, TraceEvent};
    use crate::trace::{RankTrace, StreamId, ThreadId};

    fn trace_with_delays(delays_us: &[u64]) -> RankTrace {
        let tid = ThreadId(1);
        let mut r = RankTrace::new(0);
        for (i, &d) in delays_us.iter().enumerate() {
            let corr = i as u64 + 1;
            let t0 = Ts::from_us(i as u64 * 1_000);
            r.push(
                TraceEvent::cuda_runtime(CudaRuntimeKind::LaunchKernel, t0, Dur::from_us(4), tid)
                    .with_correlation(corr),
            );
            r.push(
                TraceEvent::kernel(
                    "k",
                    t0 + Dur::from_us(4 + d),
                    Dur::from_us(100),
                    StreamId(7),
                )
                .with_correlation(corr),
            );
        }
        r
    }

    #[test]
    fn delay_statistics_match_construction() {
        let stats = queue_delays(&trace_with_delays(&[2, 2, 2, 2, 50])).unwrap();
        assert_eq!(stats.count, 5);
        assert_eq!(stats.p50, Dur::from_us(2));
        assert_eq!(stats.max, Dur::from_us(50));
        assert_eq!(stats.p99, Dur::from_us(50));
        assert_eq!(stats.mean, Dur(11_600)); // (2+2+2+2+50)/5 = 11.6 us
        assert!(stats.is_launch_bound(Dur::from_us(5)));
        assert!(!stats.is_launch_bound(Dur::from_us(1)));
    }

    #[test]
    fn no_kernels_no_stats() {
        let mut r = RankTrace::new(0);
        r.push(TraceEvent::cpu_op("op", Ts(0), Dur(100), ThreadId(1)));
        assert!(queue_delays(&r).is_none());
        assert!(stream_occupancy(&r).is_empty());
    }

    #[test]
    fn occupancy_unions_overlapping_spans() {
        let tid = ThreadId(1);
        let mut r = RankTrace::new(0);
        // Two kernels on stream 7 back to back (100us + 100us over a
        // 1000us window via a trailing cpu op), one on stream 13.
        for (i, stream) in [(0u64, 7u32), (1, 7), (2, 13)] {
            let corr = i + 1;
            r.push(
                TraceEvent::cuda_runtime(
                    CudaRuntimeKind::LaunchKernel,
                    Ts::from_us(i * 10),
                    Dur::from_us(2),
                    tid,
                )
                .with_correlation(corr),
            );
            r.push(
                TraceEvent::kernel(
                    "k",
                    Ts::from_us(100 * i),
                    Dur::from_us(100),
                    StreamId(stream),
                )
                .with_correlation(corr),
            );
        }
        r.push(TraceEvent::cpu_op(
            "tail",
            Ts::from_us(990),
            Dur::from_us(10),
            tid,
        ));
        let occ = stream_occupancy(&r);
        assert_eq!(occ.len(), 2);
        assert_eq!(occ[0].stream, 7);
        assert_eq!(occ[0].busy, Dur::from_us(200));
        assert_eq!(occ[0].kernels, 2);
        assert!((occ[0].fraction - 0.2).abs() < 1e-9);
        assert_eq!(occ[1].stream, 13);
        assert_eq!(occ[1].kernels, 1);
    }

    #[test]
    fn queue_delay_zero_when_gpu_starved() {
        // Kernel starts exactly at launch end: zero delay.
        let stats = queue_delays(&trace_with_delays(&[0])).unwrap();
        assert_eq!(stats.p50, Dur::ZERO);
        assert_eq!(stats.max, Dur::ZERO);
    }
}
