//! Interval-set algebra over half-open time intervals.
//!
//! The execution-breakdown and SM-utilization analytics both reduce to
//! set operations over the busy intervals of CUDA streams: *overlapped*
//! time is `compute ∩ comm`, *exposed* compute is `compute \ comm`, and
//! *other* (idle) time is the complement of `compute ∪ comm` within the
//! iteration span. [`IntervalSet`] provides those operations on a
//! normalized (sorted, disjoint, non-empty) list of [`TimeSpan`]s.

use crate::time::{Dur, TimeSpan, Ts};
use serde::{Deserialize, Serialize};

/// A normalized set of half-open time intervals: sorted by start,
/// pairwise disjoint, and free of empty intervals.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IntervalSet {
    spans: Vec<TimeSpan>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Builds a normalized set from arbitrary (possibly overlapping,
    /// unsorted, empty) spans: sorts, drops empties, and merges
    /// touching or overlapping spans.
    pub fn from_spans(mut spans: Vec<TimeSpan>) -> Self {
        spans.retain(|s| !s.is_empty());
        spans.sort();
        let mut merged: Vec<TimeSpan> = Vec::with_capacity(spans.len());
        for s in spans {
            match merged.last_mut() {
                Some(last) if s.start <= last.end => {
                    last.end = last.end.max(s.end);
                }
                _ => merged.push(s),
            }
        }
        IntervalSet { spans: merged }
    }

    /// The normalized spans.
    pub fn spans(&self) -> &[TimeSpan] {
        &self.spans
    }

    /// Returns `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of disjoint spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Sum of the lengths of all spans.
    pub fn total(&self) -> Dur {
        self.spans.iter().map(|s| s.duration()).sum()
    }

    /// Hull `[min start, max end)`, or `None` when empty.
    pub fn hull(&self) -> Option<TimeSpan> {
        match (self.spans.first(), self.spans.last()) {
            (Some(f), Some(l)) => Some(TimeSpan::new(f.start, l.end)),
            _ => None,
        }
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut all = self.spans.clone();
        all.extend_from_slice(&other.spans);
        IntervalSet::from_spans(all)
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.spans.len() && j < other.spans.len() {
            let (a, b) = (self.spans[i], other.spans[j]);
            if let Some(x) = a.intersect(&b) {
                out.push(x);
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { spans: out }
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let mut j = 0;
        for &a in &self.spans {
            let mut cursor = a.start;
            while j < other.spans.len() && other.spans[j].end <= cursor {
                j += 1;
            }
            let mut k = j;
            while k < other.spans.len() && other.spans[k].start < a.end {
                let b = other.spans[k];
                if b.start > cursor {
                    out.push(TimeSpan::new(cursor, b.start.min(a.end)));
                }
                cursor = cursor.max(b.end);
                if b.end >= a.end {
                    break;
                }
                k += 1;
            }
            if cursor < a.end {
                out.push(TimeSpan::new(cursor, a.end));
            }
        }
        IntervalSet { spans: out }
    }

    /// Complement of the set within `window` — the idle gaps.
    pub fn complement_within(&self, window: TimeSpan) -> IntervalSet {
        IntervalSet {
            spans: vec![window],
        }
        .subtract(self)
    }

    /// Total length of the overlap with `window`.
    pub fn total_within(&self, window: TimeSpan) -> Dur {
        self.spans
            .iter()
            .filter_map(|s| s.intersect(&window))
            .map(|s| s.duration())
            .sum()
    }

    /// Returns `true` if `ts` lies in one of the spans.
    pub fn contains(&self, ts: Ts) -> bool {
        // Binary search for the last span starting at or before ts.
        let idx = self.spans.partition_point(|s| s.start <= ts);
        idx > 0 && self.spans[idx - 1].contains(ts)
    }
}

impl FromIterator<TimeSpan> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = TimeSpan>>(iter: T) -> Self {
        IntervalSet::from_spans(iter.into_iter().collect())
    }
}

impl Extend<TimeSpan> for IntervalSet {
    fn extend<T: IntoIterator<Item = TimeSpan>>(&mut self, iter: T) {
        let mut all = std::mem::take(&mut self.spans);
        all.extend(iter);
        *self = IntervalSet::from_spans(all);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(spans: &[(u64, u64)]) -> IntervalSet {
        spans
            .iter()
            .map(|&(a, b)| TimeSpan::new(Ts(a), Ts(b)))
            .collect()
    }

    #[test]
    fn normalization_merges_and_sorts() {
        let s = set(&[(5, 10), (0, 3), (3, 6), (20, 20)]);
        assert_eq!(s.spans(), &[TimeSpan::new(Ts(0), Ts(10))]);
        assert_eq!(s.total(), Dur(10));
    }

    #[test]
    fn union_basic() {
        let a = set(&[(0, 5), (10, 15)]);
        let b = set(&[(3, 12)]);
        assert_eq!(a.union(&b), set(&[(0, 15)]));
    }

    #[test]
    fn intersect_basic() {
        let a = set(&[(0, 5), (10, 15)]);
        let b = set(&[(3, 12)]);
        assert_eq!(a.intersect(&b), set(&[(3, 5), (10, 12)]));
        assert_eq!(a.intersect(&IntervalSet::new()), IntervalSet::new());
    }

    #[test]
    fn subtract_basic() {
        let a = set(&[(0, 10)]);
        let b = set(&[(2, 4), (6, 8)]);
        assert_eq!(a.subtract(&b), set(&[(0, 2), (4, 6), (8, 10)]));
        // subtracting a superset leaves nothing
        assert_eq!(b.subtract(&a), IntervalSet::new());
    }

    #[test]
    fn subtract_spanning_multiple() {
        let a = set(&[(0, 3), (5, 9), (12, 14)]);
        let b = set(&[(2, 13)]);
        assert_eq!(a.subtract(&b), set(&[(0, 2), (13, 14)]));
    }

    #[test]
    fn complement_within_window() {
        let a = set(&[(2, 4), (6, 8)]);
        let w = TimeSpan::new(Ts(0), Ts(10));
        assert_eq!(a.complement_within(w), set(&[(0, 2), (4, 6), (8, 10)]));
        assert_eq!(IntervalSet::new().complement_within(w), set(&[(0, 10)]));
    }

    #[test]
    fn total_within_clips() {
        let a = set(&[(0, 10)]);
        assert_eq!(a.total_within(TimeSpan::new(Ts(5), Ts(20))), Dur(5));
        assert_eq!(a.total_within(TimeSpan::new(Ts(20), Ts(30))), Dur::ZERO);
    }

    #[test]
    fn contains_uses_half_open() {
        let a = set(&[(2, 4), (10, 12)]);
        assert!(!a.contains(Ts(1)));
        assert!(a.contains(Ts(2)));
        assert!(a.contains(Ts(3)));
        assert!(!a.contains(Ts(4)));
        assert!(a.contains(Ts(11)));
        assert!(!a.contains(Ts(12)));
    }

    #[test]
    fn hull_spans_everything() {
        let a = set(&[(2, 4), (10, 12)]);
        assert_eq!(a.hull(), Some(TimeSpan::new(Ts(2), Ts(12))));
        assert_eq!(IntervalSet::new().hull(), None);
    }

    #[test]
    fn extend_renormalizes() {
        let mut a = set(&[(0, 2)]);
        a.extend([TimeSpan::new(Ts(1), Ts(5))]);
        assert_eq!(a, set(&[(0, 5)]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_spans() -> impl Strategy<Value = Vec<TimeSpan>> {
        proptest::collection::vec((0u64..500, 0u64..50), 0..40).prop_map(|v| {
            v.into_iter()
                .map(|(s, len)| TimeSpan::new(Ts(s), Ts(s + len)))
                .collect()
        })
    }

    // Membership-based model: a timestamp is in the set iff it is in
    // any input span.
    fn model_contains(spans: &[TimeSpan], ts: Ts) -> bool {
        spans.iter().any(|s| s.contains(ts))
    }

    proptest! {
        #[test]
        fn normalization_preserves_membership(spans in arb_spans(), probe in 0u64..600) {
            let set = IntervalSet::from_spans(spans.clone());
            prop_assert_eq!(set.contains(Ts(probe)), model_contains(&spans, Ts(probe)));
        }

        #[test]
        fn union_is_pointwise_or(a in arb_spans(), b in arb_spans(), probe in 0u64..600) {
            let (sa, sb) = (IntervalSet::from_spans(a), IntervalSet::from_spans(b));
            let u = sa.union(&sb);
            prop_assert_eq!(
                u.contains(Ts(probe)),
                sa.contains(Ts(probe)) || sb.contains(Ts(probe))
            );
        }

        #[test]
        fn intersect_is_pointwise_and(a in arb_spans(), b in arb_spans(), probe in 0u64..600) {
            let (sa, sb) = (IntervalSet::from_spans(a), IntervalSet::from_spans(b));
            let i = sa.intersect(&sb);
            prop_assert_eq!(
                i.contains(Ts(probe)),
                sa.contains(Ts(probe)) && sb.contains(Ts(probe))
            );
        }

        #[test]
        fn subtract_is_pointwise_andnot(a in arb_spans(), b in arb_spans(), probe in 0u64..600) {
            let (sa, sb) = (IntervalSet::from_spans(a), IntervalSet::from_spans(b));
            let d = sa.subtract(&sb);
            prop_assert_eq!(
                d.contains(Ts(probe)),
                sa.contains(Ts(probe)) && !sb.contains(Ts(probe))
            );
        }

        #[test]
        fn inclusion_exclusion(a in arb_spans(), b in arb_spans()) {
            let (sa, sb) = (IntervalSet::from_spans(a), IntervalSet::from_spans(b));
            let union = sa.union(&sb).total();
            let inter = sa.intersect(&sb).total();
            prop_assert_eq!(union + inter, sa.total() + sb.total());
        }

        #[test]
        fn subtract_partitions(a in arb_spans(), b in arb_spans()) {
            let (sa, sb) = (IntervalSet::from_spans(a), IntervalSet::from_spans(b));
            prop_assert_eq!(
                sa.subtract(&sb).total() + sa.intersect(&sb).total(),
                sa.total()
            );
        }

        #[test]
        fn result_is_normalized(a in arb_spans(), b in arb_spans()) {
            let (sa, sb) = (IntervalSet::from_spans(a), IntervalSet::from_spans(b));
            for out in [sa.union(&sb), sa.intersect(&sb), sa.subtract(&sb)] {
                for w in out.spans().windows(2) {
                    prop_assert!(w[0].end < w[1].start);
                }
                for s in out.spans() {
                    prop_assert!(!s.is_empty());
                }
            }
        }
    }
}
