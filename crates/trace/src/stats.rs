//! Summary statistics over traces: event counts, kernel time by name,
//! top bottleneck kernels.

use crate::event::EventKind;
use crate::time::Dur;
use crate::trace::RankTrace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Aggregate statistics for one kernel name.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KernelStats {
    /// Invocation count.
    pub count: u64,
    /// Total device time.
    pub total: Dur,
    /// Longest single invocation.
    pub max: Dur,
}

impl KernelStats {
    /// Mean duration per invocation.
    pub fn mean(&self) -> Dur {
        if self.count == 0 {
            Dur::ZERO
        } else {
            self.total / self.count
        }
    }

    fn record(&mut self, dur: Dur) {
        self.count += 1;
        self.total += dur;
        self.max = self.max.max(dur);
    }
}

/// Event-population statistics for one rank trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of CPU operator events.
    pub cpu_ops: usize,
    /// Number of CUDA runtime events.
    pub runtime_calls: usize,
    /// Number of GPU kernel events.
    pub kernels: usize,
    /// Number of user annotations.
    pub annotations: usize,
    /// Total device time across compute kernels.
    pub compute_time: Dur,
    /// Total device time across communication kernels.
    pub comm_time: Dur,
    /// Per-kernel-name aggregates.
    pub by_kernel: HashMap<Arc<str>, KernelStats>,
}

impl TraceStats {
    /// Computes statistics for a rank trace.
    pub fn from_trace(trace: &RankTrace) -> Self {
        let mut stats = TraceStats::default();
        for e in trace.events() {
            match &e.kind {
                EventKind::CpuOp { .. } => stats.cpu_ops += 1,
                EventKind::CudaRuntime { .. } => stats.runtime_calls += 1,
                EventKind::UserAnnotation { .. } => stats.annotations += 1,
                EventKind::Kernel { .. } => {
                    stats.kernels += 1;
                    if e.is_comm_kernel() {
                        stats.comm_time += e.dur;
                    } else {
                        stats.compute_time += e.dur;
                    }
                    stats
                        .by_kernel
                        .entry(Arc::clone(&e.name))
                        .or_default()
                        .record(e.dur);
                }
            }
        }
        stats
    }

    /// Total number of events counted.
    pub fn total_events(&self) -> usize {
        self.cpu_ops + self.runtime_calls + self.kernels + self.annotations
    }

    /// The `k` kernel names with the largest total device time,
    /// descending — the paper's bottleneck-identification use case.
    pub fn top_kernels(&self, k: usize) -> Vec<(Arc<str>, KernelStats)> {
        let mut v: Vec<_> = self
            .by_kernel
            .iter()
            .map(|(n, s)| (Arc::clone(n), s.clone()))
            .collect();
        v.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CollectiveKind, CommMeta, CudaRuntimeKind, KernelClass, TraceEvent};
    use crate::time::Ts;
    use crate::trace::{StreamId, ThreadId};

    #[test]
    fn counts_by_kind() {
        let mut t = RankTrace::new(0);
        t.push(TraceEvent::cpu_op("aten::mm", Ts(0), Dur(5), ThreadId(1)));
        t.push(TraceEvent::cuda_runtime(
            CudaRuntimeKind::LaunchKernel,
            Ts(5),
            Dur(1),
            ThreadId(1),
        ));
        t.push(TraceEvent::kernel("gemm", Ts(10), Dur(100), StreamId(7)));
        t.push(TraceEvent::annotation("fwd", Ts(0), Dur(200), ThreadId(1)));
        let s = TraceStats::from_trace(&t);
        assert_eq!(s.cpu_ops, 1);
        assert_eq!(s.runtime_calls, 1);
        assert_eq!(s.kernels, 1);
        assert_eq!(s.annotations, 1);
        assert_eq!(s.total_events(), 4);
        assert_eq!(s.compute_time, Dur(100));
        assert_eq!(s.comm_time, Dur::ZERO);
    }

    #[test]
    fn comm_time_separated() {
        let mut t = RankTrace::new(0);
        t.push(
            TraceEvent::kernel("nccl", Ts(0), Dur(40), StreamId(13)).with_class(
                KernelClass::Collective(CommMeta {
                    kind: CollectiveKind::AllReduce,
                    group: 0,
                    seq: 0,
                    bytes: 8,
                }),
            ),
        );
        t.push(TraceEvent::kernel("gemm", Ts(0), Dur(60), StreamId(7)));
        let s = TraceStats::from_trace(&t);
        assert_eq!(s.comm_time, Dur(40));
        assert_eq!(s.compute_time, Dur(60));
    }

    #[test]
    fn top_kernels_ranked_by_total() {
        let mut t = RankTrace::new(0);
        for i in 0..3 {
            t.push(TraceEvent::kernel("small", Ts(i * 10), Dur(5), StreamId(7)));
        }
        t.push(TraceEvent::kernel("big", Ts(100), Dur(100), StreamId(7)));
        let s = TraceStats::from_trace(&t);
        let top = s.top_kernels(2);
        assert_eq!(&*top[0].0, "big");
        assert_eq!(top[0].1.count, 1);
        assert_eq!(&*top[1].0, "small");
        assert_eq!(top[1].1.count, 3);
        assert_eq!(top[1].1.total, Dur(15));
        assert_eq!(top[1].1.mean(), Dur(5));
        assert_eq!(top[1].1.max, Dur(5));
    }

    #[test]
    fn empty_kernel_stats_mean_is_zero() {
        assert_eq!(KernelStats::default().mean(), Dur::ZERO);
    }
}
