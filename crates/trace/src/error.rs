//! Error types for trace construction and I/O.

use crate::time::TimeSpan;
use crate::trace::{RankId, StreamId};
use std::error::Error;
use std::fmt;

/// Errors produced when validating or parsing traces.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// A GPU kernel's correlation id matches no work-launching runtime
    /// call.
    OrphanKernel {
        /// Rank the kernel was recorded on.
        rank: RankId,
        /// The unmatched correlation id.
        correlation: u64,
        /// Kernel name, for diagnostics.
        name: String,
    },
    /// A correlation id was used by more than one launching call.
    AmbiguousCorrelation {
        /// Rank the events were recorded on.
        rank: RankId,
        /// The duplicated correlation id.
        correlation: u64,
        /// Number of launching calls sharing the id.
        launches: usize,
    },
    /// Two kernels overlap on the same CUDA stream, which is
    /// impossible on real hardware (streams are FIFO).
    StreamOverlap {
        /// Rank the kernels were recorded on.
        rank: RankId,
        /// The stream in question.
        stream: StreamId,
        /// First kernel's interval.
        first: TimeSpan,
        /// Overlapping kernel's interval.
        second: TimeSpan,
    },
    /// Chrome Trace Format JSON could not be parsed.
    Json(serde_json::Error),
    /// A Chrome trace event was missing a required field.
    MalformedChromeEvent {
        /// Which field was missing or invalid.
        field: &'static str,
        /// Event index in the `traceEvents` array.
        index: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::OrphanKernel {
                rank,
                correlation,
                name,
            } => write!(
                f,
                "kernel `{name}` on {rank} has correlation id {correlation} with no matching launch"
            ),
            TraceError::AmbiguousCorrelation {
                rank,
                correlation,
                launches,
            } => write!(
                f,
                "correlation id {correlation} on {rank} is shared by {launches} launching calls"
            ),
            TraceError::StreamOverlap {
                rank,
                stream,
                first,
                second,
            } => write!(
                f,
                "kernels overlap on {rank} {stream}: {first} and {second}"
            ),
            TraceError::Json(e) => write!(f, "chrome trace JSON error: {e}"),
            TraceError::MalformedChromeEvent { field, index } => {
                write!(
                    f,
                    "chrome trace event #{index} has missing/invalid `{field}`"
                )
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TraceError::OrphanKernel {
            rank: RankId(3),
            correlation: 17,
            name: "gemm".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("gemm"));
        assert!(msg.contains("17"));
        assert!(msg.contains("rank3"));
    }

    #[test]
    fn error_trait_impl() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TraceError>();
    }
}
