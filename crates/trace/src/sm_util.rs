//! SM-utilization timelines (paper §4.2.3, Figure 6).
//!
//! The paper defines utilization as "the fraction of time, over 1 ms
//! intervals, during which at least one CUDA stream is actively
//! executing tasks", derived from kernel activity in profiled or
//! simulated traces.

use crate::event::TraceEvent;
use crate::interval::IntervalSet;
use crate::time::{Dur, TimeSpan, Ts};
use crate::trace::RankTrace;
use serde::{Deserialize, Serialize};

/// A binned SM-utilization timeline for one rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmUtilization {
    /// Bin width.
    pub bin: Dur,
    /// Start of the first bin.
    pub origin: Ts,
    /// Utilization in `[0, 1]` per bin.
    pub values: Vec<f64>,
}

impl SmUtilization {
    /// Number of bins.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when there are no bins.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean utilization across bins (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Mean absolute error against a reference timeline, comparing the
    /// overlapping prefix of bins and penalizing length mismatch by
    /// treating missing bins as zero.
    pub fn mae(&self, reference: &SmUtilization) -> f64 {
        let n = self.values.len().max(reference.values.len());
        if n == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..n {
            let a = self.values.get(i).copied().unwrap_or(0.0);
            let b = reference.values.get(i).copied().unwrap_or(0.0);
            sum += (a - b).abs();
        }
        sum / n as f64
    }
}

/// Computes the binned SM-utilization timeline of a rank trace.
///
/// `bin` is the bin width (the paper uses 1 ms). The timeline covers
/// the trace's own span, starting at its first event.
pub fn sm_utilization(trace: &RankTrace, bin: Dur) -> SmUtilization {
    assert!(!bin.is_zero(), "bin width must be positive");
    let Some(span) = trace.span() else {
        return SmUtilization {
            bin,
            origin: Ts::ZERO,
            values: Vec::new(),
        };
    };
    sm_utilization_within(trace.kernels(), bin, span)
}

/// Computes the binned utilization of GPU events within an explicit
/// window (used to align simulated and actual timelines).
pub fn sm_utilization_within<'a>(
    events: impl IntoIterator<Item = &'a TraceEvent>,
    bin: Dur,
    window: TimeSpan,
) -> SmUtilization {
    assert!(!bin.is_zero(), "bin width must be positive");
    let busy: IntervalSet = events
        .into_iter()
        .filter(|e| e.is_gpu())
        .filter_map(|e| e.span().intersect(&window))
        .collect();

    let total = window.duration().as_ns();
    let nbins = total.div_ceil(bin.as_ns()) as usize;
    let mut values = Vec::with_capacity(nbins);
    for i in 0..nbins {
        let b_start = window.start + Dur(bin.as_ns() * i as u64);
        let b_end = (b_start + bin).min(window.end);
        let w = TimeSpan::new(b_start, b_end);
        let active = busy.total_within(w);
        values.push(active.as_ns() as f64 / w.duration().as_ns() as f64);
    }
    SmUtilization {
        bin,
        origin: window.start,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::StreamId;

    fn kernel(ts: u64, dur: u64, stream: u32) -> TraceEvent {
        TraceEvent::kernel("k", Ts(ts), Dur(dur), StreamId(stream))
    }

    #[test]
    fn single_kernel_fills_bins() {
        let mut t = RankTrace::new(0);
        t.push(kernel(0, 100, 7));
        let u = sm_utilization(&t, Dur(50));
        assert_eq!(u.values, vec![1.0, 1.0]);
        assert_eq!(u.mean(), 1.0);
    }

    #[test]
    fn partial_bin_fraction() {
        let mut t = RankTrace::new(0);
        t.push(kernel(0, 25, 7));
        t.push(kernel(50, 50, 7));
        let u = sm_utilization_within(t.kernels(), Dur(50), TimeSpan::new(Ts(0), Ts(100)));
        assert_eq!(u.values, vec![0.5, 1.0]);
    }

    #[test]
    fn overlapping_streams_count_once() {
        let mut t = RankTrace::new(0);
        t.push(kernel(0, 50, 7));
        t.push(kernel(0, 50, 13));
        let u = sm_utilization_within(t.kernels(), Dur(50), TimeSpan::new(Ts(0), Ts(50)));
        assert_eq!(u.values, vec![1.0]);
    }

    #[test]
    fn ragged_final_bin_normalized_by_own_width() {
        let mut t = RankTrace::new(0);
        t.push(kernel(0, 75, 7));
        // window 75 ns, bins of 50: second bin is 25 wide, fully busy.
        let u = sm_utilization_within(t.kernels(), Dur(50), TimeSpan::new(Ts(0), Ts(75)));
        assert_eq!(u.values, vec![1.0, 1.0]);
    }

    #[test]
    fn empty_trace_empty_timeline() {
        let t = RankTrace::new(0);
        let u = sm_utilization(&t, Dur(50));
        assert!(u.is_empty());
        assert_eq!(u.mean(), 0.0);
    }

    #[test]
    fn mae_penalizes_length_mismatch() {
        let a = SmUtilization {
            bin: Dur(1),
            origin: Ts::ZERO,
            values: vec![1.0, 1.0],
        };
        let b = SmUtilization {
            bin: Dur(1),
            origin: Ts::ZERO,
            values: vec![1.0],
        };
        assert!((a.mae(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.mae(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bin_panics() {
        let t = RankTrace::new(0);
        let _ = sm_utilization(&t, Dur::ZERO);
    }
}
