//! Trace events: the vocabulary recorded by PyTorch-Kineto-style
//! profilers.
//!
//! Four kinds of events appear in a trace, mirroring Kineto:
//!
//! * **CPU ops** — framework operators (e.g. `aten::mm`) on a host
//!   thread;
//! * **CUDA runtime events** — host-side CUDA API calls
//!   (`cudaLaunchKernel`, `cudaEventRecord`, `cudaStreamWaitEvent`,
//!   `cudaStreamSynchronize`, …) carrying a *correlation id*;
//! * **GPU kernels** — device-side executions on a CUDA stream, tagged
//!   with the correlation id of the launching runtime call;
//! * **user annotations** — logical ranges (micro-batch / layer /
//!   phase markers) on the host timeline.
//!
//! Event names are shared `Arc<str>` so that a multi-million-event
//! cluster trace stores each distinct kernel name once.

use crate::time::{Dur, TimeSpan, Ts};
use crate::trace::{StreamId, ThreadId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a CUDA event object used by
/// `cudaEventRecord`/`cudaStreamWaitEvent` pairs.
pub type CudaEventId = u64;

/// Correlation id linking a CUDA runtime call to the GPU activity it
/// enqueued (Kineto's `correlation` field).
pub type CorrelationId = u64;

/// Identifier of a communicator / process group (one per TP group, DP
/// group, PP peer pair, …). Stable across ranks.
pub type CommGroupId = u64;

/// The collective communication algorithm a kernel implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Ring/tree all-reduce (sum).
    AllReduce,
    /// All-gather.
    AllGather,
    /// Reduce-scatter.
    ReduceScatter,
    /// One-to-all broadcast.
    Broadcast,
    /// Batched point-to-point send+recv (pipeline-parallel boundary
    /// exchange; behaves like a 2-member synchronizing collective).
    SendRecv,
    /// Pure synchronization barrier.
    Barrier,
}

impl CollectiveKind {
    /// NCCL-style kernel name for this collective.
    pub fn kernel_name(self) -> &'static str {
        match self {
            CollectiveKind::AllReduce => "ncclDevKernel_AllReduce_Sum",
            CollectiveKind::AllGather => "ncclDevKernel_AllGather",
            CollectiveKind::ReduceScatter => "ncclDevKernel_ReduceScatter_Sum",
            CollectiveKind::Broadcast => "ncclDevKernel_Broadcast",
            CollectiveKind::SendRecv => "ncclDevKernel_SendRecv",
            CollectiveKind::Barrier => "ncclDevKernel_AllReduce_Sum_barrier",
        }
    }
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CollectiveKind::AllReduce => "all_reduce",
            CollectiveKind::AllGather => "all_gather",
            CollectiveKind::ReduceScatter => "reduce_scatter",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::SendRecv => "send_recv",
            CollectiveKind::Barrier => "barrier",
        };
        f.write_str(s)
    }
}

/// Metadata describing one rank's participation in a collective
/// instance.
///
/// Instances are matched across ranks by `(group, seq)`: every member
/// of communicator `group` issues the collectives of that group in the
/// same order, so the `seq`-th issue on each member belongs to the same
/// instance (NCCL semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CommMeta {
    /// Which collective algorithm.
    pub kind: CollectiveKind,
    /// Communicator this instance runs on.
    pub group: CommGroupId,
    /// Issue index within the communicator.
    pub seq: u32,
    /// Payload bytes contributed by this rank.
    pub bytes: u64,
}

/// Coarse classification of a GPU kernel, carrying the shape
/// information needed to re-cost it under a modified configuration
/// (§3.4: "we modify the input tensor dimensions for the relevant
/// operators and kernels and update their execution times").
///
/// Kineto exposes the same information through kernel names plus
/// recorded operator input shapes; we keep it structured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// Dense matmul `C[m,n] += A[m,k] B[k,n]`.
    Gemm {
        /// Rows of the output.
        m: u64,
        /// Columns of the output.
        n: u64,
        /// Contraction dimension.
        k: u64,
    },
    /// Fused attention forward (FlashAttention-style).
    AttentionFwd {
        /// Batch size × heads on this rank.
        batch_heads: u64,
        /// Sequence length.
        seq: u64,
        /// Per-head dimension.
        head_dim: u64,
    },
    /// Fused attention backward.
    AttentionBwd {
        /// Batch size × heads on this rank.
        batch_heads: u64,
        /// Sequence length.
        seq: u64,
        /// Per-head dimension.
        head_dim: u64,
    },
    /// Single-query attention against a KV cache (inference decode).
    AttentionDecode {
        /// Batch size × heads on this rank.
        batch_heads: u64,
        /// KV-cache length attended over.
        kv_len: u64,
        /// Per-head dimension.
        head_dim: u64,
    },
    /// Pointwise kernel over `elems` elements (bias+GeLU, dropout,
    /// residual add, …).
    Elementwise {
        /// Element count.
        elems: u64,
    },
    /// LayerNorm / RMSNorm over `elems` elements.
    Norm {
        /// Element count.
        elems: u64,
    },
    /// Softmax + cross-entropy style reduction.
    Softmax {
        /// Element count.
        elems: u64,
    },
    /// Embedding lookup / gradient.
    Embedding {
        /// Element count gathered.
        elems: u64,
    },
    /// Fused optimizer step over `params` parameters (Adam).
    Optimizer {
        /// Parameters updated.
        params: u64,
    },
    /// Device-to-device / host-device copy.
    Memcpy {
        /// Bytes moved.
        bytes: u64,
    },
    /// Memset.
    Memset {
        /// Bytes set.
        bytes: u64,
    },
    /// Collective communication kernel.
    Collective(CommMeta),
    /// Anything else.
    Other,
}

impl KernelClass {
    /// Returns `true` for communication kernels — the paper's
    /// "communication" category in the execution breakdown.
    pub fn is_comm(&self) -> bool {
        matches!(self, KernelClass::Collective(_))
    }

    /// Returns the collective metadata if this is a communication
    /// kernel.
    pub fn comm_meta(&self) -> Option<&CommMeta> {
        match self {
            KernelClass::Collective(m) => Some(m),
            _ => None,
        }
    }

    /// Returns `true` for kernels whose runtime depends on tensor
    /// shapes in a way Lumos re-costs during manipulation (§4.3.2
    /// observes GEMM and communication kernels dominate the change).
    pub fn is_shape_sensitive(&self) -> bool {
        !matches!(self, KernelClass::Other)
    }
}

/// Host-side CUDA runtime API calls captured by the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CudaRuntimeKind {
    /// `cudaLaunchKernel` — enqueues the kernel with the same
    /// correlation id.
    LaunchKernel,
    /// `cudaMemcpyAsync` — enqueues a copy.
    MemcpyAsync,
    /// `cudaMemsetAsync` — enqueues a memset.
    MemsetAsync,
    /// `cudaEventRecord(event, stream)` — marks a sync point after all
    /// prior work on `stream`.
    EventRecord {
        /// CUDA event being recorded.
        event: CudaEventId,
        /// Stream the event is recorded on.
        stream: StreamId,
    },
    /// `cudaStreamWaitEvent(stream, event)` — all later work on
    /// `stream` waits for `event`.
    StreamWaitEvent {
        /// Stream that will wait.
        stream: StreamId,
        /// Event being waited on.
        event: CudaEventId,
    },
    /// `cudaEventSynchronize(event)` — host blocks until `event`.
    EventSynchronize {
        /// Event being waited on.
        event: CudaEventId,
    },
    /// `cudaStreamSynchronize(stream)` — host blocks until all work on
    /// `stream` completes.
    StreamSynchronize {
        /// Stream being drained.
        stream: StreamId,
    },
    /// `cudaDeviceSynchronize()` — host blocks on the whole device.
    DeviceSynchronize,
    /// Any other runtime call (mallocs, queries, …).
    Other,
}

impl CudaRuntimeKind {
    /// Conventional API name, as it appears in Kineto traces.
    pub fn api_name(&self) -> &'static str {
        match self {
            CudaRuntimeKind::LaunchKernel => "cudaLaunchKernel",
            CudaRuntimeKind::MemcpyAsync => "cudaMemcpyAsync",
            CudaRuntimeKind::MemsetAsync => "cudaMemsetAsync",
            CudaRuntimeKind::EventRecord { .. } => "cudaEventRecord",
            CudaRuntimeKind::StreamWaitEvent { .. } => "cudaStreamWaitEvent",
            CudaRuntimeKind::EventSynchronize { .. } => "cudaEventSynchronize",
            CudaRuntimeKind::StreamSynchronize { .. } => "cudaStreamSynchronize",
            CudaRuntimeKind::DeviceSynchronize => "cudaDeviceSynchronize",
            CudaRuntimeKind::Other => "cudaRuntimeOther",
        }
    }

    /// Returns `true` for calls that enqueue GPU work (and therefore
    /// carry a meaningful correlation id linking to a GPU event).
    pub fn launches_work(&self) -> bool {
        matches!(
            self,
            CudaRuntimeKind::LaunchKernel
                | CudaRuntimeKind::MemcpyAsync
                | CudaRuntimeKind::MemsetAsync
        )
    }

    /// Returns `true` for calls that block the host on GPU progress
    /// (the paper's GPU→CPU dependency class).
    pub fn blocks_host(&self) -> bool {
        matches!(
            self,
            CudaRuntimeKind::EventSynchronize { .. }
                | CudaRuntimeKind::StreamSynchronize { .. }
                | CudaRuntimeKind::DeviceSynchronize
        )
    }
}

/// Where an event executed and what it represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A framework operator on a host thread.
    CpuOp {
        /// Host thread.
        tid: ThreadId,
    },
    /// A CUDA runtime API call on a host thread.
    CudaRuntime {
        /// Host thread.
        tid: ThreadId,
        /// Which API.
        kind: CudaRuntimeKind,
        /// Correlation id (0 when the call enqueues no GPU work).
        correlation: CorrelationId,
    },
    /// A GPU kernel (or copy/memset) on a CUDA stream.
    Kernel {
        /// Stream the kernel ran on.
        stream: StreamId,
        /// Correlation id of the launching runtime call.
        correlation: CorrelationId,
        /// Shape-carrying classification.
        class: KernelClass,
    },
    /// A logical range on the host timeline (micro-batch / layer /
    /// phase marker).
    UserAnnotation {
        /// Host thread the range was recorded on.
        tid: ThreadId,
    },
}

impl EventKind {
    /// Host thread, for host-side events.
    pub fn tid(&self) -> Option<ThreadId> {
        match self {
            EventKind::CpuOp { tid }
            | EventKind::CudaRuntime { tid, .. }
            | EventKind::UserAnnotation { tid } => Some(*tid),
            EventKind::Kernel { .. } => None,
        }
    }

    /// CUDA stream, for device-side events.
    pub fn stream(&self) -> Option<StreamId> {
        match self {
            EventKind::Kernel { stream, .. } => Some(*stream),
            _ => None,
        }
    }

    /// Correlation id, if the event participates in launch linking.
    pub fn correlation(&self) -> Option<CorrelationId> {
        match self {
            EventKind::CudaRuntime { correlation, .. } if *correlation != 0 => Some(*correlation),
            EventKind::Kernel { correlation, .. } => Some(*correlation),
            _ => None,
        }
    }

    /// Returns `true` for device-side events.
    pub fn is_gpu(&self) -> bool {
        matches!(self, EventKind::Kernel { .. })
    }
}

/// One profiled event: a name, a kind, and a `[ts, ts+dur)` interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Display name (operator, API, or kernel name).
    pub name: Arc<str>,
    /// Classification and placement.
    pub kind: EventKind,
    /// Start timestamp.
    pub ts: Ts,
    /// Duration.
    pub dur: Dur,
}

impl TraceEvent {
    /// Creates a CPU operator event.
    pub fn cpu_op(name: impl Into<Arc<str>>, ts: Ts, dur: Dur, tid: ThreadId) -> Self {
        TraceEvent {
            name: name.into(),
            kind: EventKind::CpuOp { tid },
            ts,
            dur,
        }
    }

    /// Creates a CUDA runtime event. The name is derived from the API.
    pub fn cuda_runtime(kind: CudaRuntimeKind, ts: Ts, dur: Dur, tid: ThreadId) -> Self {
        TraceEvent {
            name: Arc::from(kind.api_name()),
            kind: EventKind::CudaRuntime {
                tid,
                kind,
                correlation: 0,
            },
            ts,
            dur,
        }
    }

    /// Creates a GPU kernel event with class [`KernelClass::Other`].
    /// Use [`TraceEvent::with_class`] to refine.
    pub fn kernel(name: impl Into<Arc<str>>, ts: Ts, dur: Dur, stream: StreamId) -> Self {
        TraceEvent {
            name: name.into(),
            kind: EventKind::Kernel {
                stream,
                correlation: 0,
                class: KernelClass::Other,
            },
            ts,
            dur,
        }
    }

    /// Creates a user annotation range.
    pub fn annotation(name: impl Into<Arc<str>>, ts: Ts, dur: Dur, tid: ThreadId) -> Self {
        TraceEvent {
            name: name.into(),
            kind: EventKind::UserAnnotation { tid },
            ts,
            dur,
        }
    }

    /// Sets the correlation id (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the event kind carries no correlation id.
    pub fn with_correlation(mut self, correlation: CorrelationId) -> Self {
        match &mut self.kind {
            EventKind::CudaRuntime { correlation: c, .. }
            | EventKind::Kernel { correlation: c, .. } => *c = correlation,
            _ => panic!("event kind {:?} has no correlation id", self.kind),
        }
        self
    }

    /// Sets the kernel class (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the event is not a kernel.
    pub fn with_class(mut self, class: KernelClass) -> Self {
        match &mut self.kind {
            EventKind::Kernel { class: c, .. } => *c = class,
            _ => panic!("event kind {:?} is not a kernel", self.kind),
        }
        self
    }

    /// The `[ts, ts+dur)` interval this event occupies.
    pub fn span(&self) -> TimeSpan {
        TimeSpan::from_start_dur(self.ts, self.dur)
    }

    /// End timestamp (`ts + dur`).
    pub fn end(&self) -> Ts {
        self.ts + self.dur
    }

    /// Returns `true` for device-side events.
    pub fn is_gpu(&self) -> bool {
        self.kind.is_gpu()
    }

    /// Returns `true` for communication kernels.
    pub fn is_comm_kernel(&self) -> bool {
        matches!(
            &self.kind,
            EventKind::Kernel { class, .. } if class.is_comm()
        )
    }

    /// Returns `true` for compute (non-communication) kernels.
    pub fn is_compute_kernel(&self) -> bool {
        matches!(
            &self.kind,
            EventKind::Kernel { class, .. } if !class.is_comm()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_classify() {
        let op = TraceEvent::cpu_op("aten::mm", Ts(0), Dur(10), ThreadId(1));
        assert_eq!(op.kind.tid(), Some(ThreadId(1)));
        assert!(!op.is_gpu());

        let k = TraceEvent::kernel("gemm", Ts(5), Dur(50), StreamId(7)).with_correlation(3);
        assert!(k.is_gpu());
        assert!(k.is_compute_kernel());
        assert_eq!(k.kind.stream(), Some(StreamId(7)));
        assert_eq!(k.kind.correlation(), Some(3));
        assert_eq!(k.end(), Ts(55));
    }

    #[test]
    fn comm_kernel_detection() {
        let meta = CommMeta {
            kind: CollectiveKind::AllReduce,
            group: 1,
            seq: 0,
            bytes: 1 << 20,
        };
        let k = TraceEvent::kernel(
            CollectiveKind::AllReduce.kernel_name(),
            Ts(0),
            Dur(10),
            StreamId(13),
        )
        .with_class(KernelClass::Collective(meta));
        assert!(k.is_comm_kernel());
        assert!(!k.is_compute_kernel());
        assert_eq!(
            k.kind,
            EventKind::Kernel {
                stream: StreamId(13),
                correlation: 0,
                class: KernelClass::Collective(meta)
            }
        );
    }

    #[test]
    fn runtime_kind_properties() {
        assert!(CudaRuntimeKind::LaunchKernel.launches_work());
        assert!(!CudaRuntimeKind::LaunchKernel.blocks_host());
        let sync = CudaRuntimeKind::StreamSynchronize {
            stream: StreamId(7),
        };
        assert!(sync.blocks_host());
        assert!(!sync.launches_work());
        assert_eq!(sync.api_name(), "cudaStreamSynchronize");
        assert!(CudaRuntimeKind::DeviceSynchronize.blocks_host());
    }

    #[test]
    fn zero_correlation_is_none() {
        let e = TraceEvent::cuda_runtime(
            CudaRuntimeKind::DeviceSynchronize,
            Ts(0),
            Dur(1),
            ThreadId(1),
        );
        assert_eq!(e.kind.correlation(), None);
    }

    #[test]
    #[should_panic(expected = "no correlation")]
    fn correlation_on_cpu_op_panics() {
        let _ = TraceEvent::cpu_op("x", Ts(0), Dur(0), ThreadId(1)).with_correlation(1);
    }

    #[test]
    fn collective_kind_names_distinct() {
        use CollectiveKind::*;
        let kinds = [AllReduce, AllGather, ReduceScatter, Broadcast, SendRecv];
        for (i, a) in kinds.iter().enumerate() {
            for b in kinds.iter().skip(i + 1) {
                assert_ne!(a.kernel_name(), b.kernel_name());
                assert_ne!(a.to_string(), b.to_string());
            }
        }
    }
}
