//! Trace events: the vocabulary recorded by PyTorch-Kineto-style
//! profilers.
//!
//! Four kinds of events appear in a trace, mirroring Kineto:
//!
//! * **CPU ops** — framework operators (e.g. `aten::mm`) on a host
//!   thread;
//! * **CUDA runtime events** — host-side CUDA API calls
//!   (`cudaLaunchKernel`, `cudaEventRecord`, `cudaStreamWaitEvent`,
//!   `cudaStreamSynchronize`, …) carrying a *correlation id*;
//! * **GPU kernels** — device-side executions on a CUDA stream, tagged
//!   with the correlation id of the launching runtime call;
//! * **user annotations** — logical ranges (micro-batch / layer /
//!   phase markers) on the host timeline.
//!
//! Event names are shared `Arc<str>` so that a multi-million-event
//! cluster trace stores each distinct kernel name once.

use crate::time::{Dur, TimeSpan, Ts};
use crate::trace::{StreamId, ThreadId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a CUDA event object used by
/// `cudaEventRecord`/`cudaStreamWaitEvent` pairs.
pub type CudaEventId = u64;

/// Correlation id linking a CUDA runtime call to the GPU activity it
/// enqueued (Kineto's `correlation` field).
pub type CorrelationId = u64;

/// Identifier of a communicator / process group (one per TP group, DP
/// group, PP peer pair, …). Stable across ranks.
pub type CommGroupId = u64;

/// The collective communication algorithm a kernel implements.
///
/// Serializes as a small integer (see the compact-encoding note on
/// [`TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Ring/tree all-reduce (sum).
    AllReduce,
    /// All-gather.
    AllGather,
    /// Reduce-scatter.
    ReduceScatter,
    /// One-to-all broadcast.
    Broadcast,
    /// Batched point-to-point send+recv (pipeline-parallel boundary
    /// exchange; behaves like a 2-member synchronizing collective).
    SendRecv,
    /// Pure synchronization barrier.
    Barrier,
}

impl CollectiveKind {
    /// NCCL-style kernel name for this collective.
    pub fn kernel_name(self) -> &'static str {
        match self {
            CollectiveKind::AllReduce => "ncclDevKernel_AllReduce_Sum",
            CollectiveKind::AllGather => "ncclDevKernel_AllGather",
            CollectiveKind::ReduceScatter => "ncclDevKernel_ReduceScatter_Sum",
            CollectiveKind::Broadcast => "ncclDevKernel_Broadcast",
            CollectiveKind::SendRecv => "ncclDevKernel_SendRecv",
            CollectiveKind::Barrier => "ncclDevKernel_AllReduce_Sum_barrier",
        }
    }
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CollectiveKind::AllReduce => "all_reduce",
            CollectiveKind::AllGather => "all_gather",
            CollectiveKind::ReduceScatter => "reduce_scatter",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::SendRecv => "send_recv",
            CollectiveKind::Barrier => "barrier",
        };
        f.write_str(s)
    }
}

/// Metadata describing one rank's participation in a collective
/// instance.
///
/// Instances are matched across ranks by `(group, seq)`: every member
/// of communicator `group` issues the collectives of that group in the
/// same order, so the `seq`-th issue on each member belongs to the same
/// instance (NCCL semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CommMeta {
    /// Which collective algorithm.
    pub kind: CollectiveKind,
    /// Communicator this instance runs on.
    pub group: CommGroupId,
    /// Issue index within the communicator.
    pub seq: u32,
    /// Payload bytes contributed by this rank.
    pub bytes: u64,
}

/// Coarse classification of a GPU kernel, carrying the shape
/// information needed to re-cost it under a modified configuration
/// (§3.4: "we modify the input tensor dimensions for the relevant
/// operators and kernels and update their execution times").
///
/// Kineto exposes the same information through kernel names plus
/// recorded operator input shapes; we keep it structured.
///
/// Serializes as a compact tagged array (see the note on
/// [`TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Dense matmul `C[m,n] += A[m,k] B[k,n]`.
    Gemm {
        /// Rows of the output.
        m: u64,
        /// Columns of the output.
        n: u64,
        /// Contraction dimension.
        k: u64,
    },
    /// Fused attention forward (FlashAttention-style).
    AttentionFwd {
        /// Batch size × heads on this rank.
        batch_heads: u64,
        /// Sequence length.
        seq: u64,
        /// Per-head dimension.
        head_dim: u64,
    },
    /// Fused attention backward.
    AttentionBwd {
        /// Batch size × heads on this rank.
        batch_heads: u64,
        /// Sequence length.
        seq: u64,
        /// Per-head dimension.
        head_dim: u64,
    },
    /// Single-query attention against a KV cache (inference decode).
    AttentionDecode {
        /// Batch size × heads on this rank.
        batch_heads: u64,
        /// KV-cache length attended over.
        kv_len: u64,
        /// Per-head dimension.
        head_dim: u64,
    },
    /// Pointwise kernel over `elems` elements (bias+GeLU, dropout,
    /// residual add, …).
    Elementwise {
        /// Element count.
        elems: u64,
    },
    /// LayerNorm / RMSNorm over `elems` elements.
    Norm {
        /// Element count.
        elems: u64,
    },
    /// Softmax + cross-entropy style reduction.
    Softmax {
        /// Element count.
        elems: u64,
    },
    /// Embedding lookup / gradient.
    Embedding {
        /// Element count gathered.
        elems: u64,
    },
    /// Fused optimizer step over `params` parameters (Adam).
    Optimizer {
        /// Parameters updated.
        params: u64,
    },
    /// Device-to-device / host-device copy.
    Memcpy {
        /// Bytes moved.
        bytes: u64,
    },
    /// Memset.
    Memset {
        /// Bytes set.
        bytes: u64,
    },
    /// Collective communication kernel.
    Collective(CommMeta),
    /// Anything else.
    Other,
}

impl KernelClass {
    /// Returns `true` for communication kernels — the paper's
    /// "communication" category in the execution breakdown.
    pub fn is_comm(&self) -> bool {
        matches!(self, KernelClass::Collective(_))
    }

    /// Returns the collective metadata if this is a communication
    /// kernel.
    pub fn comm_meta(&self) -> Option<&CommMeta> {
        match self {
            KernelClass::Collective(m) => Some(m),
            _ => None,
        }
    }

    /// Returns `true` for kernels whose runtime depends on tensor
    /// shapes in a way Lumos re-costs during manipulation (§4.3.2
    /// observes GEMM and communication kernels dominate the change).
    pub fn is_shape_sensitive(&self) -> bool {
        !matches!(self, KernelClass::Other)
    }
}

/// Host-side CUDA runtime API calls captured by the profiler.
///
/// Serializes as a compact tagged array (see the note on
/// [`TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CudaRuntimeKind {
    /// `cudaLaunchKernel` — enqueues the kernel with the same
    /// correlation id.
    LaunchKernel,
    /// `cudaMemcpyAsync` — enqueues a copy.
    MemcpyAsync,
    /// `cudaMemsetAsync` — enqueues a memset.
    MemsetAsync,
    /// `cudaEventRecord(event, stream)` — marks a sync point after all
    /// prior work on `stream`.
    EventRecord {
        /// CUDA event being recorded.
        event: CudaEventId,
        /// Stream the event is recorded on.
        stream: StreamId,
    },
    /// `cudaStreamWaitEvent(stream, event)` — all later work on
    /// `stream` waits for `event`.
    StreamWaitEvent {
        /// Stream that will wait.
        stream: StreamId,
        /// Event being waited on.
        event: CudaEventId,
    },
    /// `cudaEventSynchronize(event)` — host blocks until `event`.
    EventSynchronize {
        /// Event being waited on.
        event: CudaEventId,
    },
    /// `cudaStreamSynchronize(stream)` — host blocks until all work on
    /// `stream` completes.
    StreamSynchronize {
        /// Stream being drained.
        stream: StreamId,
    },
    /// `cudaDeviceSynchronize()` — host blocks on the whole device.
    DeviceSynchronize,
    /// Any other runtime call (mallocs, queries, …).
    Other,
}

impl CudaRuntimeKind {
    /// Conventional API name, as it appears in Kineto traces.
    pub fn api_name(&self) -> &'static str {
        match self {
            CudaRuntimeKind::LaunchKernel => "cudaLaunchKernel",
            CudaRuntimeKind::MemcpyAsync => "cudaMemcpyAsync",
            CudaRuntimeKind::MemsetAsync => "cudaMemsetAsync",
            CudaRuntimeKind::EventRecord { .. } => "cudaEventRecord",
            CudaRuntimeKind::StreamWaitEvent { .. } => "cudaStreamWaitEvent",
            CudaRuntimeKind::EventSynchronize { .. } => "cudaEventSynchronize",
            CudaRuntimeKind::StreamSynchronize { .. } => "cudaStreamSynchronize",
            CudaRuntimeKind::DeviceSynchronize => "cudaDeviceSynchronize",
            CudaRuntimeKind::Other => "cudaRuntimeOther",
        }
    }

    /// Returns `true` for calls that enqueue GPU work (and therefore
    /// carry a meaningful correlation id linking to a GPU event).
    pub fn launches_work(&self) -> bool {
        matches!(
            self,
            CudaRuntimeKind::LaunchKernel
                | CudaRuntimeKind::MemcpyAsync
                | CudaRuntimeKind::MemsetAsync
        )
    }

    /// Returns `true` for calls that block the host on GPU progress
    /// (the paper's GPU→CPU dependency class).
    pub fn blocks_host(&self) -> bool {
        matches!(
            self,
            CudaRuntimeKind::EventSynchronize { .. }
                | CudaRuntimeKind::StreamSynchronize { .. }
                | CudaRuntimeKind::DeviceSynchronize
        )
    }
}

/// Where an event executed and what it represents.
///
/// Serializes as a compact tagged array (see the note on
/// [`TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A framework operator on a host thread.
    CpuOp {
        /// Host thread.
        tid: ThreadId,
    },
    /// A CUDA runtime API call on a host thread.
    CudaRuntime {
        /// Host thread.
        tid: ThreadId,
        /// Which API.
        kind: CudaRuntimeKind,
        /// Correlation id (0 when the call enqueues no GPU work).
        correlation: CorrelationId,
    },
    /// A GPU kernel (or copy/memset) on a CUDA stream.
    Kernel {
        /// Stream the kernel ran on.
        stream: StreamId,
        /// Correlation id of the launching runtime call.
        correlation: CorrelationId,
        /// Shape-carrying classification.
        class: KernelClass,
    },
    /// A logical range on the host timeline (micro-batch / layer /
    /// phase marker).
    UserAnnotation {
        /// Host thread the range was recorded on.
        tid: ThreadId,
    },
}

impl EventKind {
    /// Host thread, for host-side events.
    pub fn tid(&self) -> Option<ThreadId> {
        match self {
            EventKind::CpuOp { tid }
            | EventKind::CudaRuntime { tid, .. }
            | EventKind::UserAnnotation { tid } => Some(*tid),
            EventKind::Kernel { .. } => None,
        }
    }

    /// CUDA stream, for device-side events.
    pub fn stream(&self) -> Option<StreamId> {
        match self {
            EventKind::Kernel { stream, .. } => Some(*stream),
            _ => None,
        }
    }

    /// Correlation id, if the event participates in launch linking.
    pub fn correlation(&self) -> Option<CorrelationId> {
        match self {
            EventKind::CudaRuntime { correlation, .. } if *correlation != 0 => Some(*correlation),
            EventKind::Kernel { correlation, .. } => Some(*correlation),
            _ => None,
        }
    }

    /// Returns `true` for device-side events.
    pub fn is_gpu(&self) -> bool {
        matches!(self, EventKind::Kernel { .. })
    }
}

/// One profiled event: a name, a kind, and a `[ts, ts+dur)` interval.
///
/// # Compact serialization
///
/// Events serialize as flat tagged arrays (`[name, ts, dur,
/// [kind...]]`), not as keyed objects: calibration artifacts persist
/// hundreds of thousands of events, and dropping the per-event field
/// keys roughly halves artifact size and parse time. The encoding
/// round-trips bit-exactly; it is private to this serde layer (Chrome
/// Trace Format I/O in [`crate::from_chrome_json`] is a separate,
/// Kineto-compatible schema).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Display name (operator, API, or kernel name).
    pub name: Arc<str>,
    /// Classification and placement.
    pub kind: EventKind,
    /// Start timestamp.
    pub ts: Ts,
    /// Duration.
    pub dur: Dur,
}

impl TraceEvent {
    /// Creates a CPU operator event.
    pub fn cpu_op(name: impl Into<Arc<str>>, ts: Ts, dur: Dur, tid: ThreadId) -> Self {
        TraceEvent {
            name: name.into(),
            kind: EventKind::CpuOp { tid },
            ts,
            dur,
        }
    }

    /// Creates a CUDA runtime event. The name is derived from the API.
    pub fn cuda_runtime(kind: CudaRuntimeKind, ts: Ts, dur: Dur, tid: ThreadId) -> Self {
        TraceEvent {
            name: Arc::from(kind.api_name()),
            kind: EventKind::CudaRuntime {
                tid,
                kind,
                correlation: 0,
            },
            ts,
            dur,
        }
    }

    /// Creates a GPU kernel event with class [`KernelClass::Other`].
    /// Use [`TraceEvent::with_class`] to refine.
    pub fn kernel(name: impl Into<Arc<str>>, ts: Ts, dur: Dur, stream: StreamId) -> Self {
        TraceEvent {
            name: name.into(),
            kind: EventKind::Kernel {
                stream,
                correlation: 0,
                class: KernelClass::Other,
            },
            ts,
            dur,
        }
    }

    /// Creates a user annotation range.
    pub fn annotation(name: impl Into<Arc<str>>, ts: Ts, dur: Dur, tid: ThreadId) -> Self {
        TraceEvent {
            name: name.into(),
            kind: EventKind::UserAnnotation { tid },
            ts,
            dur,
        }
    }

    /// Sets the correlation id (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the event kind carries no correlation id.
    pub fn with_correlation(mut self, correlation: CorrelationId) -> Self {
        match &mut self.kind {
            EventKind::CudaRuntime { correlation: c, .. }
            | EventKind::Kernel { correlation: c, .. } => *c = correlation,
            _ => panic!("event kind {:?} has no correlation id", self.kind),
        }
        self
    }

    /// Sets the kernel class (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the event is not a kernel.
    pub fn with_class(mut self, class: KernelClass) -> Self {
        match &mut self.kind {
            EventKind::Kernel { class: c, .. } => *c = class,
            _ => panic!("event kind {:?} is not a kernel", self.kind),
        }
        self
    }

    /// The `[ts, ts+dur)` interval this event occupies.
    pub fn span(&self) -> TimeSpan {
        TimeSpan::from_start_dur(self.ts, self.dur)
    }

    /// End timestamp (`ts + dur`).
    pub fn end(&self) -> Ts {
        self.ts + self.dur
    }

    /// Returns `true` for device-side events.
    pub fn is_gpu(&self) -> bool {
        self.kind.is_gpu()
    }

    /// Returns `true` for communication kernels.
    pub fn is_comm_kernel(&self) -> bool {
        matches!(
            &self.kind,
            EventKind::Kernel { class, .. } if class.is_comm()
        )
    }

    /// Returns `true` for compute (non-communication) kernels.
    pub fn is_compute_kernel(&self) -> bool {
        matches!(
            &self.kind,
            EventKind::Kernel { class, .. } if !class.is_comm()
        )
    }
}

// ---------------------------------------------------------------- //
// Compact serde encoding
//
// Hand-written (instead of derived) so the millions of events a
// calibration artifact persists encode as flat tagged arrays rather
// than keyed objects — roughly half the bytes and parse work. The
// encoding is bit-exact under round-trip and deterministic, which the
// artifact's digest/fingerprint checks rely on.
// ---------------------------------------------------------------- //

use serde::{de, Value};

fn tagged(tag: u64, mut fields: Vec<Value>) -> Value {
    let mut items = vec![tag.serialize_value()];
    items.append(&mut fields);
    Value::Array(items)
}

/// Splits a tagged array into its tag and field slice.
fn untag<'v>(v: &'v Value, what: &'static str) -> Result<(u64, &'v [Value]), de::Error> {
    match v {
        Value::Array(items) if !items.is_empty() => {
            let tag = items[0]
                .as_u64()
                .ok_or_else(|| de::Error::expected(what, v))?;
            Ok((tag, &items[1..]))
        }
        other => Err(de::Error::expected(what, other)),
    }
}

fn field(fields: &[Value], idx: usize, what: &'static str) -> Result<u64, de::Error> {
    fields
        .get(idx)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| de::Error::new(format!("{what}: missing field {idx}")))
}

impl Serialize for CollectiveKind {
    fn serialize_value(&self) -> Value {
        let tag: u64 = match self {
            CollectiveKind::AllReduce => 0,
            CollectiveKind::AllGather => 1,
            CollectiveKind::ReduceScatter => 2,
            CollectiveKind::Broadcast => 3,
            CollectiveKind::SendRecv => 4,
            CollectiveKind::Barrier => 5,
        };
        tag.serialize_value()
    }
}

impl Deserialize for CollectiveKind {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        Ok(match v.as_u64() {
            Some(0) => CollectiveKind::AllReduce,
            Some(1) => CollectiveKind::AllGather,
            Some(2) => CollectiveKind::ReduceScatter,
            Some(3) => CollectiveKind::Broadcast,
            Some(4) => CollectiveKind::SendRecv,
            Some(5) => CollectiveKind::Barrier,
            _ => return Err(de::Error::expected("collective kind tag", v)),
        })
    }
}

impl Serialize for KernelClass {
    fn serialize_value(&self) -> Value {
        let ser = |x: u64| x.serialize_value();
        match *self {
            KernelClass::Gemm { m, n, k } => tagged(0, vec![ser(m), ser(n), ser(k)]),
            KernelClass::AttentionFwd {
                batch_heads,
                seq,
                head_dim,
            } => tagged(1, vec![ser(batch_heads), ser(seq), ser(head_dim)]),
            KernelClass::AttentionBwd {
                batch_heads,
                seq,
                head_dim,
            } => tagged(2, vec![ser(batch_heads), ser(seq), ser(head_dim)]),
            KernelClass::AttentionDecode {
                batch_heads,
                kv_len,
                head_dim,
            } => tagged(3, vec![ser(batch_heads), ser(kv_len), ser(head_dim)]),
            KernelClass::Elementwise { elems } => tagged(4, vec![ser(elems)]),
            KernelClass::Norm { elems } => tagged(5, vec![ser(elems)]),
            KernelClass::Softmax { elems } => tagged(6, vec![ser(elems)]),
            KernelClass::Embedding { elems } => tagged(7, vec![ser(elems)]),
            KernelClass::Optimizer { params } => tagged(8, vec![ser(params)]),
            KernelClass::Memcpy { bytes } => tagged(9, vec![ser(bytes)]),
            KernelClass::Memset { bytes } => tagged(10, vec![ser(bytes)]),
            KernelClass::Collective(meta) => tagged(
                11,
                vec![
                    meta.kind.serialize_value(),
                    ser(meta.group),
                    ser(meta.seq as u64),
                    ser(meta.bytes),
                ],
            ),
            KernelClass::Other => tagged(12, vec![]),
        }
    }
}

impl Deserialize for KernelClass {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let (tag, f) = untag(v, "kernel class")?;
        let g = |i| field(f, i, "kernel class");
        Ok(match tag {
            0 => KernelClass::Gemm {
                m: g(0)?,
                n: g(1)?,
                k: g(2)?,
            },
            1 => KernelClass::AttentionFwd {
                batch_heads: g(0)?,
                seq: g(1)?,
                head_dim: g(2)?,
            },
            2 => KernelClass::AttentionBwd {
                batch_heads: g(0)?,
                seq: g(1)?,
                head_dim: g(2)?,
            },
            3 => KernelClass::AttentionDecode {
                batch_heads: g(0)?,
                kv_len: g(1)?,
                head_dim: g(2)?,
            },
            4 => KernelClass::Elementwise { elems: g(0)? },
            5 => KernelClass::Norm { elems: g(0)? },
            6 => KernelClass::Softmax { elems: g(0)? },
            7 => KernelClass::Embedding { elems: g(0)? },
            8 => KernelClass::Optimizer { params: g(0)? },
            9 => KernelClass::Memcpy { bytes: g(0)? },
            10 => KernelClass::Memset { bytes: g(0)? },
            11 => KernelClass::Collective(CommMeta {
                kind: CollectiveKind::deserialize_value(
                    f.first()
                        .ok_or_else(|| de::Error::new("collective: missing kind"))?,
                )?,
                group: g(1)?,
                seq: u32::try_from(g(2)?)
                    .map_err(|_| de::Error::new("collective seq out of range"))?,
                bytes: g(3)?,
            }),
            12 => KernelClass::Other,
            other => return Err(de::Error::new(format!("unknown kernel class tag {other}"))),
        })
    }
}

impl Serialize for CudaRuntimeKind {
    fn serialize_value(&self) -> Value {
        let ser = |x: u64| x.serialize_value();
        match *self {
            CudaRuntimeKind::LaunchKernel => tagged(0, vec![]),
            CudaRuntimeKind::MemcpyAsync => tagged(1, vec![]),
            CudaRuntimeKind::MemsetAsync => tagged(2, vec![]),
            CudaRuntimeKind::EventRecord { event, stream } => {
                tagged(3, vec![ser(event), ser(stream.0 as u64)])
            }
            CudaRuntimeKind::StreamWaitEvent { stream, event } => {
                tagged(4, vec![ser(stream.0 as u64), ser(event)])
            }
            CudaRuntimeKind::EventSynchronize { event } => tagged(5, vec![ser(event)]),
            CudaRuntimeKind::StreamSynchronize { stream } => tagged(6, vec![ser(stream.0 as u64)]),
            CudaRuntimeKind::DeviceSynchronize => tagged(7, vec![]),
            CudaRuntimeKind::Other => tagged(8, vec![]),
        }
    }
}

impl Deserialize for CudaRuntimeKind {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let (tag, f) = untag(v, "cuda runtime kind")?;
        let g = |i| field(f, i, "cuda runtime kind");
        let sid = |x: u64| {
            u32::try_from(x)
                .map(StreamId)
                .map_err(|_| de::Error::new("stream id out of range"))
        };
        Ok(match tag {
            0 => CudaRuntimeKind::LaunchKernel,
            1 => CudaRuntimeKind::MemcpyAsync,
            2 => CudaRuntimeKind::MemsetAsync,
            3 => CudaRuntimeKind::EventRecord {
                event: g(0)?,
                stream: sid(g(1)?)?,
            },
            4 => CudaRuntimeKind::StreamWaitEvent {
                stream: sid(g(0)?)?,
                event: g(1)?,
            },
            5 => CudaRuntimeKind::EventSynchronize { event: g(0)? },
            6 => CudaRuntimeKind::StreamSynchronize {
                stream: sid(g(0)?)?,
            },
            7 => CudaRuntimeKind::DeviceSynchronize,
            8 => CudaRuntimeKind::Other,
            other => {
                return Err(de::Error::new(format!(
                    "unknown cuda runtime kind tag {other}"
                )))
            }
        })
    }
}

impl Serialize for EventKind {
    fn serialize_value(&self) -> Value {
        let ser = |x: u64| x.serialize_value();
        match *self {
            EventKind::CpuOp { tid } => tagged(0, vec![ser(tid.0 as u64)]),
            EventKind::CudaRuntime {
                tid,
                kind,
                correlation,
            } => tagged(
                1,
                vec![ser(tid.0 as u64), ser(correlation), kind.serialize_value()],
            ),
            EventKind::Kernel {
                stream,
                correlation,
                class,
            } => tagged(
                2,
                vec![
                    ser(stream.0 as u64),
                    ser(correlation),
                    class.serialize_value(),
                ],
            ),
            EventKind::UserAnnotation { tid } => tagged(3, vec![ser(tid.0 as u64)]),
        }
    }
}

impl Deserialize for EventKind {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let (tag, f) = untag(v, "event kind")?;
        let g = |i| field(f, i, "event kind");
        let tid = |x: u64| {
            u32::try_from(x)
                .map(ThreadId)
                .map_err(|_| de::Error::new("thread id out of range"))
        };
        Ok(match tag {
            0 => EventKind::CpuOp { tid: tid(g(0)?)? },
            1 => EventKind::CudaRuntime {
                tid: tid(g(0)?)?,
                correlation: g(1)?,
                kind: CudaRuntimeKind::deserialize_value(
                    f.get(2)
                        .ok_or_else(|| de::Error::new("cuda runtime: missing kind"))?,
                )?,
            },
            2 => EventKind::Kernel {
                stream: u32::try_from(g(0)?)
                    .map(StreamId)
                    .map_err(|_| de::Error::new("stream id out of range"))?,
                correlation: g(1)?,
                class: KernelClass::deserialize_value(
                    f.get(2)
                        .ok_or_else(|| de::Error::new("kernel: missing class"))?,
                )?,
            },
            3 => EventKind::UserAnnotation { tid: tid(g(0)?)? },
            other => return Err(de::Error::new(format!("unknown event kind tag {other}"))),
        })
    }
}

impl Serialize for TraceEvent {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            Value::String(self.name.to_string()),
            self.ts.serialize_value(),
            self.dur.serialize_value(),
            self.kind.serialize_value(),
        ])
    }
}

impl Deserialize for TraceEvent {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) if items.len() == 4 => Ok(TraceEvent {
                name: match &items[0] {
                    Value::String(s) => Arc::from(s.as_str()),
                    other => return Err(de::Error::expected("event name", other)),
                },
                ts: Ts::deserialize_value(&items[1])?,
                dur: Dur::deserialize_value(&items[2])?,
                kind: EventKind::deserialize_value(&items[3])?,
            }),
            other => Err(de::Error::expected("event array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_classify() {
        let op = TraceEvent::cpu_op("aten::mm", Ts(0), Dur(10), ThreadId(1));
        assert_eq!(op.kind.tid(), Some(ThreadId(1)));
        assert!(!op.is_gpu());

        let k = TraceEvent::kernel("gemm", Ts(5), Dur(50), StreamId(7)).with_correlation(3);
        assert!(k.is_gpu());
        assert!(k.is_compute_kernel());
        assert_eq!(k.kind.stream(), Some(StreamId(7)));
        assert_eq!(k.kind.correlation(), Some(3));
        assert_eq!(k.end(), Ts(55));
    }

    #[test]
    fn comm_kernel_detection() {
        let meta = CommMeta {
            kind: CollectiveKind::AllReduce,
            group: 1,
            seq: 0,
            bytes: 1 << 20,
        };
        let k = TraceEvent::kernel(
            CollectiveKind::AllReduce.kernel_name(),
            Ts(0),
            Dur(10),
            StreamId(13),
        )
        .with_class(KernelClass::Collective(meta));
        assert!(k.is_comm_kernel());
        assert!(!k.is_compute_kernel());
        assert_eq!(
            k.kind,
            EventKind::Kernel {
                stream: StreamId(13),
                correlation: 0,
                class: KernelClass::Collective(meta)
            }
        );
    }

    #[test]
    fn runtime_kind_properties() {
        assert!(CudaRuntimeKind::LaunchKernel.launches_work());
        assert!(!CudaRuntimeKind::LaunchKernel.blocks_host());
        let sync = CudaRuntimeKind::StreamSynchronize {
            stream: StreamId(7),
        };
        assert!(sync.blocks_host());
        assert!(!sync.launches_work());
        assert_eq!(sync.api_name(), "cudaStreamSynchronize");
        assert!(CudaRuntimeKind::DeviceSynchronize.blocks_host());
    }

    #[test]
    fn zero_correlation_is_none() {
        let e = TraceEvent::cuda_runtime(
            CudaRuntimeKind::DeviceSynchronize,
            Ts(0),
            Dur(1),
            ThreadId(1),
        );
        assert_eq!(e.kind.correlation(), None);
    }

    #[test]
    #[should_panic(expected = "no correlation")]
    fn correlation_on_cpu_op_panics() {
        let _ = TraceEvent::cpu_op("x", Ts(0), Dur(0), ThreadId(1)).with_correlation(1);
    }

    #[test]
    fn collective_kind_names_distinct() {
        use CollectiveKind::*;
        let kinds = [AllReduce, AllGather, ReduceScatter, Broadcast, SendRecv];
        for (i, a) in kinds.iter().enumerate() {
            for b in kinds.iter().skip(i + 1) {
                assert_ne!(a.kernel_name(), b.kernel_name());
                assert_ne!(a.to_string(), b.to_string());
            }
        }
    }
}
