//! Chrome Trace Format (Kineto JSON) import and export.
//!
//! PyTorch Kineto writes traces in the Chrome Trace Format: a JSON
//! object with a `traceEvents` array of complete (`"ph": "X"`) events
//! carrying microsecond `ts`/`dur`, a `pid`/`tid` placement, a `cat`
//! category, and free-form `args`. This module writes Lumos traces in
//! that format (viewable in `chrome://tracing` / Perfetto) and reads
//! them back, preserving the structured kernel classification through
//! an `args.lumos` extension field.

use crate::error::TraceError;
use crate::event::{CudaRuntimeKind, EventKind, KernelClass, TraceEvent};
use crate::time::{Dur, Ts};
use crate::trace::{ClusterTrace, RankId, RankTrace, StreamId, ThreadId};
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// Options controlling Chrome Trace Format export.
#[derive(Debug, Clone)]
pub struct ChromeTraceOptions {
    /// Include the structured `args.lumos` extension so traces
    /// round-trip losslessly (default `true`).
    pub lossless: bool,
}

impl Default for ChromeTraceOptions {
    fn default() -> Self {
        ChromeTraceOptions { lossless: true }
    }
}

#[derive(Serialize, Deserialize)]
struct ChromeEvent {
    ph: String,
    name: String,
    cat: String,
    /// Microseconds (fractional), per the Chrome trace spec.
    ts: f64,
    dur: f64,
    pid: u64,
    tid: u64,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    args: Option<Value>,
}

#[derive(Serialize, Deserialize)]
struct ChromeDocument {
    #[serde(rename = "traceEvents")]
    trace_events: Vec<ChromeEvent>,
    #[serde(rename = "displayTimeUnit", default)]
    display_time_unit: Option<String>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    lumos_label: Option<String>,
}

const CAT_CPU_OP: &str = "cpu_op";
const CAT_RUNTIME: &str = "cuda_runtime";
const CAT_KERNEL: &str = "kernel";
const CAT_ANNOTATION: &str = "user_annotation";

fn event_to_chrome(rank: RankId, e: &TraceEvent, opts: &ChromeTraceOptions) -> ChromeEvent {
    let (cat, tid, args) = match &e.kind {
        EventKind::CpuOp { tid } => (CAT_CPU_OP, tid.0 as u64, None),
        EventKind::CudaRuntime {
            tid,
            kind,
            correlation,
        } => {
            let mut a = json!({ "correlation": correlation });
            if opts.lossless {
                a["lumos"] = serde_json::to_value(kind).expect("runtime kind serializes");
            }
            (CAT_RUNTIME, tid.0 as u64, Some(a))
        }
        EventKind::Kernel {
            stream,
            correlation,
            class,
        } => {
            let mut a = json!({ "correlation": correlation, "stream": stream.0 });
            if opts.lossless {
                a["lumos"] = serde_json::to_value(class).expect("kernel class serializes");
            }
            (CAT_KERNEL, stream.0 as u64, Some(a))
        }
        EventKind::UserAnnotation { tid } => (CAT_ANNOTATION, tid.0 as u64, None),
    };
    ChromeEvent {
        ph: "X".to_string(),
        name: e.name.to_string(),
        cat: cat.to_string(),
        ts: e.ts.as_us_f64(),
        dur: e.dur.as_us_f64(),
        pid: rank.0 as u64,
        tid,
        args,
    }
}

/// Checked microseconds → nanoseconds conversion: rejects non-finite,
/// negative, and u64-overflowing values instead of silently saturating
/// (`as u64` collapses negative Kineto timestamps to 0 and wraps huge
/// ones, corrupting every downstream interval).
fn ns_from_us(us: f64, field: &'static str, index: usize) -> Result<u64, TraceError> {
    let ns = (us * 1_000.0).round();
    if !ns.is_finite() || ns < 0.0 || ns >= u64::MAX as f64 {
        return Err(TraceError::MalformedChromeEvent { field, index });
    }
    Ok(ns as u64)
}

/// Checked 64-bit → 32-bit id conversion for pid/tid/stream fields.
fn id32(value: u64, field: &'static str, index: usize) -> Result<u32, TraceError> {
    u32::try_from(value).map_err(|_| TraceError::MalformedChromeEvent { field, index })
}

/// Converts one Chrome event. `base_us` is the document's timestamp
/// origin (the minimum `ts` when that minimum is negative, else 0):
/// subtracting it normalizes traces whose clock starts below zero
/// without disturbing already-normalized documents.
fn chrome_to_event(
    c: &ChromeEvent,
    index: usize,
    base_us: f64,
) -> Result<(RankId, TraceEvent), TraceError> {
    if !c.ts.is_finite() {
        return Err(TraceError::MalformedChromeEvent { field: "ts", index });
    }
    let ts = Ts(ns_from_us(c.ts - base_us, "ts", index)?);
    if !c.dur.is_finite() || c.dur < 0.0 {
        return Err(TraceError::MalformedChromeEvent {
            field: "dur",
            index,
        });
    }
    let dur = Dur(ns_from_us(c.dur, "dur", index)?);
    let rank = RankId(id32(c.pid, "pid", index)?);
    let correlation = c
        .args
        .as_ref()
        .and_then(|a| a.get("correlation"))
        .and_then(Value::as_u64)
        .unwrap_or(0);

    let kind = match c.cat.as_str() {
        CAT_CPU_OP => EventKind::CpuOp {
            tid: ThreadId(id32(c.tid, "tid", index)?),
        },
        CAT_ANNOTATION => EventKind::UserAnnotation {
            tid: ThreadId(id32(c.tid, "tid", index)?),
        },
        CAT_RUNTIME => {
            let rt_kind = match c.args.as_ref().and_then(|a| a.get("lumos")) {
                Some(v) => serde_json::from_value(v.clone())?,
                None => runtime_kind_from_name(&c.name),
            };
            EventKind::CudaRuntime {
                tid: ThreadId(id32(c.tid, "tid", index)?),
                kind: rt_kind,
                correlation,
            }
        }
        CAT_KERNEL => {
            let stream = c
                .args
                .as_ref()
                .and_then(|a| a.get("stream"))
                .and_then(Value::as_u64)
                .unwrap_or(c.tid);
            let class = match c.args.as_ref().and_then(|a| a.get("lumos")) {
                Some(v) => serde_json::from_value(v.clone())?,
                None => KernelClass::Other,
            };
            EventKind::Kernel {
                stream: StreamId(id32(stream, "stream", index)?),
                correlation,
                class,
            }
        }
        _ => {
            return Err(TraceError::MalformedChromeEvent {
                field: "cat",
                index,
            })
        }
    };
    Ok((
        rank,
        TraceEvent {
            name: c.name.as_str().into(),
            kind,
            ts,
            dur,
        },
    ))
}

/// Best-effort mapping from a Kineto runtime event name to a
/// structured kind, for traces produced by real Kineto (no `lumos`
/// extension args).
fn runtime_kind_from_name(name: &str) -> CudaRuntimeKind {
    match name {
        "cudaLaunchKernel" | "cuLaunchKernel" | "cudaLaunchKernelExC" => {
            CudaRuntimeKind::LaunchKernel
        }
        "cudaMemcpyAsync" => CudaRuntimeKind::MemcpyAsync,
        "cudaMemsetAsync" => CudaRuntimeKind::MemsetAsync,
        "cudaDeviceSynchronize" => CudaRuntimeKind::DeviceSynchronize,
        // Stream/event ids are not recoverable from the name alone;
        // importers of raw Kineto traces must reconstruct them from
        // args when available.
        "cudaStreamSynchronize" => CudaRuntimeKind::StreamSynchronize {
            stream: StreamId(0),
        },
        "cudaEventRecord" => CudaRuntimeKind::EventRecord {
            event: 0,
            stream: StreamId(0),
        },
        "cudaStreamWaitEvent" => CudaRuntimeKind::StreamWaitEvent {
            stream: StreamId(0),
            event: 0,
        },
        "cudaEventSynchronize" => CudaRuntimeKind::EventSynchronize { event: 0 },
        _ => CudaRuntimeKind::Other,
    }
}

/// Serializes a cluster trace to Chrome Trace Format JSON.
///
/// Every rank's events share one `traceEvents` array, distinguished by
/// `pid`. The output loads in `chrome://tracing` and Perfetto.
pub fn to_chrome_json(trace: &ClusterTrace, opts: &ChromeTraceOptions) -> String {
    let mut events = Vec::with_capacity(trace.total_events());
    for rank_trace in trace.ranks() {
        for e in rank_trace.events() {
            events.push(event_to_chrome(rank_trace.rank(), e, opts));
        }
    }
    let doc = ChromeDocument {
        trace_events: events,
        display_time_unit: Some("ms".to_string()),
        lumos_label: Some(trace.label.clone()),
    };
    serde_json::to_string(&doc).expect("chrome document serializes")
}

/// Parses Chrome Trace Format JSON into a cluster trace.
///
/// Accepts both Lumos-written traces (lossless) and raw Kineto traces
/// (kernel classes default to [`KernelClass::Other`], runtime kinds
/// are inferred from API names). Documents whose minimum timestamp is
/// negative — real Kineto clocks can start below the capture origin —
/// are normalized by that minimum, preserving every inter-event
/// interval; documents that already start at or above zero parse
/// unchanged.
///
/// # Errors
///
/// Returns [`TraceError::Json`] on malformed JSON and
/// [`TraceError::MalformedChromeEvent`] on events with unknown
/// categories, non-finite or overflowing `ts`/`dur`, or
/// `pid`/`tid`/stream ids that do not fit the 32-bit rank/thread/
/// stream id space.
pub fn from_chrome_json(json_text: &str) -> Result<ClusterTrace, TraceError> {
    let doc: ChromeDocument = serde_json::from_str(json_text)?;
    // Pass 1: the document's timestamp origin. Only a *negative*
    // minimum shifts the trace (so well-formed documents round-trip
    // bit-exactly); non-finite timestamps are reported with their
    // event index.
    let mut base_us = 0.0f64;
    for (i, ce) in doc.trace_events.iter().enumerate() {
        if ce.ph != "X" {
            continue;
        }
        if !ce.ts.is_finite() {
            return Err(TraceError::MalformedChromeEvent {
                field: "ts",
                index: i,
            });
        }
        base_us = base_us.min(ce.ts);
    }
    let mut cluster = ClusterTrace::new(doc.lumos_label.unwrap_or_default());
    let mut rank_order: Vec<RankId> = Vec::new();
    let mut per_rank: std::collections::HashMap<RankId, RankTrace> =
        std::collections::HashMap::new();
    for (i, ce) in doc.trace_events.iter().enumerate() {
        // Skip metadata events ("M") and other phases; only complete
        // events carry timing.
        if ce.ph != "X" {
            continue;
        }
        let (rank, event) = chrome_to_event(ce, i, base_us)?;
        per_rank
            .entry(rank)
            .or_insert_with(|| {
                rank_order.push(rank);
                RankTrace::new(rank)
            })
            .push(event);
    }
    rank_order.sort_unstable();
    for r in rank_order {
        if let Some(t) = per_rank.remove(&r) {
            cluster.push_rank(t);
        }
    }
    Ok(cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CollectiveKind, CommMeta};

    fn sample_cluster() -> ClusterTrace {
        let mut cluster = ClusterTrace::new("unit-test");
        for rank in 0..2u32 {
            let mut t = RankTrace::new(rank);
            t.push(TraceEvent::cpu_op(
                "aten::mm",
                Ts(1_000),
                Dur(500),
                ThreadId(1),
            ));
            t.push(
                TraceEvent::cuda_runtime(
                    CudaRuntimeKind::LaunchKernel,
                    Ts(1_200),
                    Dur(300),
                    ThreadId(1),
                )
                .with_correlation(7),
            );
            t.push(
                TraceEvent::kernel("sm90_gemm", Ts(2_000), Dur(10_000), StreamId(7))
                    .with_correlation(7)
                    .with_class(KernelClass::Gemm {
                        m: 64,
                        n: 64,
                        k: 64,
                    }),
            );
            t.push(
                TraceEvent::kernel("nccl_ar", Ts(15_000), Dur(5_000), StreamId(13)).with_class(
                    KernelClass::Collective(CommMeta {
                        kind: CollectiveKind::AllReduce,
                        group: 3,
                        seq: 1,
                        bytes: 1 << 20,
                    }),
                ),
            );
            t.push(TraceEvent::annotation(
                "fwd mb=0",
                Ts(900),
                Dur(12_000),
                ThreadId(1),
            ));
            cluster.push_rank(t);
        }
        cluster
    }

    #[test]
    fn round_trip_lossless() {
        let original = sample_cluster();
        let json = to_chrome_json(&original, &ChromeTraceOptions::default());
        let parsed = from_chrome_json(&json).expect("parse back");
        assert_eq!(parsed.label, original.label);
        assert_eq!(parsed.world_size(), original.world_size());
        for (a, b) in original.ranks().iter().zip(parsed.ranks()) {
            assert_eq!(a.rank(), b.rank());
            assert_eq!(a.events(), b.events());
        }
    }

    #[test]
    fn kineto_style_trace_parses() {
        // A trace as real Kineto would emit it: no lumos args.
        let json = r#"{
            "traceEvents": [
                {"ph":"X","name":"aten::linear","cat":"cpu_op","ts":10.5,"dur":20.0,"pid":0,"tid":1},
                {"ph":"X","name":"cudaLaunchKernel","cat":"cuda_runtime","ts":12.0,"dur":3.0,"pid":0,"tid":1,"args":{"correlation":42}},
                {"ph":"X","name":"volta_sgemm","cat":"kernel","ts":30.0,"dur":100.0,"pid":0,"tid":7,"args":{"correlation":42,"stream":7}},
                {"ph":"M","name":"process_name","cat":"__metadata","ts":0,"dur":0,"pid":0,"tid":0}
            ]
        }"#;
        let parsed = from_chrome_json(json).expect("kineto parse");
        assert_eq!(parsed.world_size(), 1);
        let t = parsed.rank(RankId(0)).unwrap();
        assert_eq!(t.len(), 3); // metadata event skipped
        let kernel = t.kernels().next().unwrap();
        assert_eq!(kernel.kind.stream(), Some(StreamId(7)));
        assert_eq!(kernel.kind.correlation(), Some(42));
        assert_eq!(kernel.ts, Ts(30_000));
        assert_eq!(kernel.dur, Dur(100_000));
    }

    #[test]
    fn unknown_category_is_error() {
        let json = r#"{"traceEvents":[
            {"ph":"X","name":"x","cat":"mystery","ts":0,"dur":1,"pid":0,"tid":0}
        ]}"#;
        assert!(matches!(
            from_chrome_json(json),
            Err(TraceError::MalformedChromeEvent { field: "cat", .. })
        ));
    }

    #[test]
    fn malformed_json_is_error() {
        assert!(matches!(
            from_chrome_json("not json"),
            Err(TraceError::Json(_))
        ));
    }

    #[test]
    fn negative_timestamps_normalize_to_document_origin() {
        // Real Kineto clocks can start below zero; `ts as u64` used to
        // collapse those events to 0. The document is shifted by its
        // (negative) minimum so all intervals survive.
        let json = r#"{"traceEvents":[
            {"ph":"X","name":"early","cat":"cpu_op","ts":-50.0,"dur":5.0,"pid":0,"tid":1},
            {"ph":"X","name":"late","cat":"cpu_op","ts":10.0,"dur":5.0,"pid":0,"tid":1}
        ]}"#;
        let parsed = from_chrome_json(json).expect("negative ts parses");
        let t = parsed.rank(RankId(0)).unwrap();
        let ts: Vec<Ts> = t.events().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![Ts(0), Ts(60_000)]); // 60 us apart, origin at 0
        assert!(t.events().iter().all(|e| e.dur == Dur(5_000)));
    }

    #[test]
    fn non_negative_documents_are_not_shifted() {
        let json = r#"{"traceEvents":[
            {"ph":"X","name":"op","cat":"cpu_op","ts":10.0,"dur":1.0,"pid":0,"tid":1}
        ]}"#;
        let parsed = from_chrome_json(json).unwrap();
        assert_eq!(parsed.rank(RankId(0)).unwrap().events()[0].ts, Ts(10_000));
    }

    #[test]
    fn overflowing_ids_are_typed_errors() {
        // pid / tid / stream beyond u32 must not wrap via `as u32`.
        for (json, field) in [
            (
                r#"{"traceEvents":[{"ph":"X","name":"x","cat":"cpu_op","ts":0,"dur":1,"pid":4294967296,"tid":0}]}"#,
                "pid",
            ),
            (
                r#"{"traceEvents":[{"ph":"X","name":"x","cat":"cpu_op","ts":0,"dur":1,"pid":0,"tid":4294967296}]}"#,
                "tid",
            ),
            (
                r#"{"traceEvents":[{"ph":"X","name":"k","cat":"kernel","ts":0,"dur":1,"pid":0,"tid":0,"args":{"stream":4294967296}}]}"#,
                "stream",
            ),
            (
                // Stream falls back to tid when args are missing; the
                // fallback must be checked too.
                r#"{"traceEvents":[{"ph":"X","name":"k","cat":"kernel","ts":0,"dur":1,"pid":0,"tid":4294967296}]}"#,
                "stream",
            ),
        ] {
            match from_chrome_json(json) {
                Err(TraceError::MalformedChromeEvent { field: f, index: 0 }) => {
                    assert_eq!(f, field, "wrong field for {json}")
                }
                other => panic!("expected MalformedChromeEvent({field}), got {other:?}"),
            }
        }
    }

    #[test]
    fn overflowing_and_negative_times_are_typed_errors() {
        // 1e18 us = 1e21 ns overflows u64; negative dur is nonsense
        // for a complete ("X") event.
        for (json, field) in [
            (
                r#"{"traceEvents":[{"ph":"X","name":"x","cat":"cpu_op","ts":1e18,"dur":1,"pid":0,"tid":0}]}"#,
                "ts",
            ),
            (
                r#"{"traceEvents":[{"ph":"X","name":"x","cat":"cpu_op","ts":0,"dur":-3.0,"pid":0,"tid":0}]}"#,
                "dur",
            ),
            (
                r#"{"traceEvents":[{"ph":"X","name":"x","cat":"cpu_op","ts":0,"dur":1e18,"pid":0,"tid":0}]}"#,
                "dur",
            ),
        ] {
            match from_chrome_json(json) {
                Err(TraceError::MalformedChromeEvent { field: f, .. }) => {
                    assert_eq!(f, field, "wrong field for {json}")
                }
                other => panic!("expected MalformedChromeEvent({field}), got {other:?}"),
            }
        }
    }

    #[test]
    fn runtime_name_inference() {
        assert_eq!(
            runtime_kind_from_name("cudaLaunchKernel"),
            CudaRuntimeKind::LaunchKernel
        );
        assert!(matches!(
            runtime_kind_from_name("cudaStreamSynchronize"),
            CudaRuntimeKind::StreamSynchronize { .. }
        ));
        assert_eq!(
            runtime_kind_from_name("cudaFuncGetAttributes"),
            CudaRuntimeKind::Other
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_event() -> impl Strategy<Value = TraceEvent> {
        let name = prop_oneof![
            Just("aten::mm"),
            Just("aten::layer_norm"),
            Just("ncclDevKernel_AllReduce_Sum"),
            Just("fused_adam"),
        ];
        (
            name,
            0u64..1_000_000,
            0u64..10_000,
            0u32..4,
            prop_oneof![Just(0u8), Just(1), Just(2), Just(3)],
        )
            .prop_map(|(name, ts, dur, id, kind)| {
                let (ts, dur) = (Ts(ts * 1000), Dur(dur * 1000));
                match kind {
                    0 => TraceEvent::cpu_op(name, ts, dur, ThreadId(id)),
                    1 => TraceEvent::cuda_runtime(
                        CudaRuntimeKind::LaunchKernel,
                        ts,
                        dur,
                        ThreadId(id),
                    )
                    .with_correlation(id as u64 + 1),
                    2 => TraceEvent::kernel(name, ts, dur, StreamId(id))
                        .with_correlation(id as u64 + 1)
                        .with_class(KernelClass::Gemm { m: 8, n: 16, k: 32 }),
                    _ => TraceEvent::annotation(name, ts, dur, ThreadId(id)),
                }
            })
    }

    proptest! {
        /// Raw Kineto-style ingestion (no lumos args) over adversarial
        /// inputs: negative timestamps, ids beyond u32, missing args.
        /// Parsing must never panic; in-range documents preserve every
        /// interval relative to the (possibly negative) document
        /// origin, out-of-range ids fail with a typed error.
        #[test]
        fn raw_ingestion_is_panic_free_and_interval_preserving(
            events in proptest::collection::vec(
                (
                    -1_000_000i64..1_000_000,
                    0u64..10_000,
                    proptest::prelude::prop_oneof![0u64..16, Just(u32::MAX as u64 + 7)],
                    0u8..3,
                    proptest::bool::ANY,
                ),
                1..40,
            )
        ) {
            let mut json_events = Vec::new();
            for &(ts, dur, id, kind, with_args) in &events {
                let (cat, name) = match kind {
                    0 => ("cpu_op", "aten::mm"),
                    1 => ("cuda_runtime", "cudaLaunchKernel"),
                    _ => ("kernel", "volta_sgemm"),
                };
                let mut ev = json!({
                    "ph": "X", "name": name, "cat": cat,
                    "ts": ts as f64, "dur": dur as f64,
                    "pid": 0, "tid": id,
                });
                if with_args {
                    ev["args"] = json!({ "correlation": 1 });
                }
                json_events.push(ev);
            }
            let doc = serde_json::to_string(&json!({ "traceEvents": json_events }))
                .expect("document serializes");
            let any_big = events.iter().any(|&(_, _, id, _, _)| id > u32::MAX as u64);
            match from_chrome_json(&doc) {
                Ok(trace) => {
                    prop_assert!(!any_big, "oversized id must not parse");
                    let parsed = trace.rank(RankId(0)).unwrap();
                    prop_assert_eq!(parsed.len(), events.len());
                    let origin = events.iter().map(|e| e.0).min().unwrap().min(0);
                    for (e, &(ts, dur, _, _, _)) in parsed.events().iter().zip(&events) {
                        prop_assert_eq!(e.ts.as_ns(), (ts - origin) as u64 * 1_000);
                        prop_assert_eq!(e.dur.as_ns(), dur * 1_000);
                    }
                }
                Err(TraceError::MalformedChromeEvent { field, .. }) => {
                    prop_assert!(any_big, "spurious malformed-event error on `{}`", field);
                    prop_assert!(field == "tid" || field == "stream");
                }
                Err(e) => {
                    return Err(proptest::test_runner::TestCaseError::fail(
                        format!("unexpected error kind: {e}"),
                    ));
                }
            }
        }

        #[test]
        fn chrome_round_trip(events in proptest::collection::vec(arb_event(), 0..50)) {
            let mut t = RankTrace::new(0);
            for e in events {
                t.push(e);
            }
            let mut cluster = ClusterTrace::new("prop");
            cluster.push_rank(t);
            let json = to_chrome_json(&cluster, &ChromeTraceOptions::default());
            let parsed = from_chrome_json(&json).unwrap();
            if cluster.ranks()[0].is_empty() {
                // An empty rank emits no events, so it cannot be
                // reconstructed from the event stream.
                prop_assert_eq!(parsed.world_size(), 0);
            } else {
                prop_assert_eq!(parsed.world_size(), 1);
                prop_assert_eq!(parsed.ranks()[0].events(), cluster.ranks()[0].events());
            }
        }
    }
}
