//! Per-rank and cluster-wide trace containers.

use crate::error::TraceError;
use crate::event::{CorrelationId, EventKind, TraceEvent};
use crate::time::{Dur, TimeSpan, Ts};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A GPU rank (one worker process / one GPU) in the training job.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct RankId(pub u32);

/// A host thread within a rank's process.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct ThreadId(pub u32);

/// A CUDA stream within a rank's GPU.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct StreamId(pub u32);

impl fmt::Display for RankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid{}", self.0)
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

/// The profiled timeline of a single rank: CPU ops, CUDA runtime
/// calls, GPU kernels, and annotations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RankTrace {
    rank: RankId,
    events: Vec<TraceEvent>,
}

impl RankTrace {
    /// Creates an empty trace for `rank`.
    pub fn new(rank: impl Into<RankId>) -> Self {
        RankTrace {
            rank: rank.into(),
            events: Vec::new(),
        }
    }

    /// The rank this trace belongs to.
    pub fn rank(&self) -> RankId {
        self.rank
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events in recorded order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Mutable access to the events (used by graph manipulation).
    pub fn events_mut(&mut self) -> &mut Vec<TraceEvent> {
        &mut self.events
    }

    /// Sorts events by `(ts, dur desc)` so that enclosing ranges come
    /// before the events they contain.
    pub fn sort(&mut self) {
        self.events
            .sort_by(|a, b| a.ts.cmp(&b.ts).then(b.dur.cmp(&a.dur)));
    }

    /// Iterator over GPU kernel events.
    pub fn kernels(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.is_gpu())
    }

    /// Iterator over host-side events (CPU ops, runtime calls,
    /// annotations).
    pub fn host_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| !e.is_gpu())
    }

    /// Iterator over user annotations.
    pub fn annotations(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::UserAnnotation { .. }))
    }

    /// The hull `[min ts, max end)` of all events, or `None` when
    /// empty.
    pub fn span(&self) -> Option<TimeSpan> {
        let start = self.events.iter().map(|e| e.ts).min()?;
        let end = self.events.iter().map(|e| e.end()).max()?;
        Some(TimeSpan::new(start, end))
    }

    /// Distinct CUDA streams appearing in the trace, sorted.
    pub fn streams(&self) -> Vec<StreamId> {
        let mut v: Vec<StreamId> = self.events.iter().filter_map(|e| e.kind.stream()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Distinct host threads appearing in the trace, sorted.
    pub fn threads(&self) -> Vec<ThreadId> {
        let mut v: Vec<ThreadId> = self.events.iter().filter_map(|e| e.kind.tid()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Checks structural invariants:
    ///
    /// * every GPU event's correlation id is matched by exactly one
    ///   work-launching runtime call;
    /// * kernels on the same stream do not overlap (streams are FIFO
    ///   execution queues).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut launches: HashMap<CorrelationId, usize> = HashMap::new();
        for e in &self.events {
            if let EventKind::CudaRuntime {
                kind, correlation, ..
            } = &e.kind
            {
                if kind.launches_work() {
                    *launches.entry(*correlation).or_default() += 1;
                }
            }
        }
        for e in &self.events {
            if let EventKind::Kernel { correlation, .. } = &e.kind {
                match launches.get(correlation) {
                    Some(1) => {}
                    Some(n) => {
                        return Err(TraceError::AmbiguousCorrelation {
                            rank: self.rank,
                            correlation: *correlation,
                            launches: *n,
                        })
                    }
                    None => {
                        return Err(TraceError::OrphanKernel {
                            rank: self.rank,
                            correlation: *correlation,
                            name: e.name.to_string(),
                        })
                    }
                }
            }
        }

        // Per-stream FIFO: sort kernel intervals per stream, check no
        // overlap.
        let mut per_stream: HashMap<StreamId, Vec<TimeSpan>> = HashMap::new();
        for e in self.kernels() {
            if let Some(s) = e.kind.stream() {
                per_stream.entry(s).or_default().push(e.span());
            }
        }
        for (stream, mut spans) in per_stream {
            spans.sort();
            for w in spans.windows(2) {
                if w[0].overlaps(&w[1]) {
                    return Err(TraceError::StreamOverlap {
                        rank: self.rank,
                        stream,
                        first: w[0],
                        second: w[1],
                    });
                }
            }
        }
        Ok(())
    }

    /// Shifts every event so the trace starts at `Ts::ZERO`.
    pub fn normalize(&mut self) {
        let Some(span) = self.span() else { return };
        let offset = span.start;
        for e in &mut self.events {
            e.ts = Ts(e.ts.0 - offset.0);
        }
    }
}

impl From<u32> for RankId {
    fn from(v: u32) -> Self {
        RankId(v)
    }
}

impl Extend<TraceEvent> for RankTrace {
    fn extend<T: IntoIterator<Item = TraceEvent>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

/// Traces from every rank of a distributed training job, for one
/// profiled iteration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterTrace {
    /// Free-form description of the run (model, parallelism, seed).
    pub label: String,
    ranks: Vec<RankTrace>,
}

impl ClusterTrace {
    /// Creates an empty cluster trace.
    pub fn new(label: impl Into<String>) -> Self {
        ClusterTrace {
            label: label.into(),
            ranks: Vec::new(),
        }
    }

    /// Adds a rank's trace.
    ///
    /// # Panics
    ///
    /// Panics if a trace for the same rank was already added.
    pub fn push_rank(&mut self, trace: RankTrace) {
        assert!(
            self.ranks.iter().all(|r| r.rank() != trace.rank()),
            "duplicate trace for {}",
            trace.rank()
        );
        self.ranks.push(trace);
    }

    /// Number of ranks.
    pub fn world_size(&self) -> usize {
        self.ranks.len()
    }

    /// All per-rank traces.
    pub fn ranks(&self) -> &[RankTrace] {
        &self.ranks
    }

    /// Mutable access to per-rank traces.
    pub fn ranks_mut(&mut self) -> &mut [RankTrace] {
        &mut self.ranks
    }

    /// The trace of a specific rank.
    pub fn rank(&self, rank: RankId) -> Option<&RankTrace> {
        self.ranks.iter().find(|r| r.rank() == rank)
    }

    /// Total number of events across all ranks.
    pub fn total_events(&self) -> usize {
        self.ranks.iter().map(|r| r.len()).sum()
    }

    /// Hull of all ranks' spans.
    pub fn span(&self) -> Option<TimeSpan> {
        self.ranks
            .iter()
            .filter_map(|r| r.span())
            .reduce(|a, b| a.hull(&b))
    }

    /// End-to-end makespan: latest end minus earliest start across all
    /// ranks — the per-iteration training time the paper reports.
    pub fn makespan(&self) -> Dur {
        self.span().map_or(Dur::ZERO, |s| s.duration())
    }

    /// Validates every rank trace.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), TraceError> {
        for r in &self.ranks {
            r.validate()?;
        }
        Ok(())
    }
}

impl FromIterator<RankTrace> for ClusterTrace {
    fn from_iter<T: IntoIterator<Item = RankTrace>>(iter: T) -> Self {
        let mut ct = ClusterTrace::new("");
        for r in iter {
            ct.push_rank(r);
        }
        ct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CudaRuntimeKind;

    fn launch_and_kernel(corr: u64, ts: u64) -> [TraceEvent; 2] {
        [
            TraceEvent::cuda_runtime(CudaRuntimeKind::LaunchKernel, Ts(ts), Dur(2), ThreadId(1))
                .with_correlation(corr),
            TraceEvent::kernel("k", Ts(ts + 5), Dur(10), StreamId(7)).with_correlation(corr),
        ]
    }

    #[test]
    fn span_and_makespan() {
        let mut t = RankTrace::new(0);
        t.push(TraceEvent::cpu_op("a", Ts(10), Dur(5), ThreadId(1)));
        t.push(TraceEvent::cpu_op("b", Ts(30), Dur(10), ThreadId(1)));
        assert_eq!(t.span().unwrap(), TimeSpan::new(Ts(10), Ts(40)));

        let mut c = ClusterTrace::new("test");
        c.push_rank(t);
        let mut t2 = RankTrace::new(1);
        t2.push(TraceEvent::cpu_op("c", Ts(0), Dur(5), ThreadId(1)));
        c.push_rank(t2);
        assert_eq!(c.makespan(), Dur(40));
        assert_eq!(c.world_size(), 2);
    }

    #[test]
    fn validate_accepts_matched_correlation() {
        let mut t = RankTrace::new(0);
        for e in launch_and_kernel(1, 0) {
            t.push(e);
        }
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_rejects_orphan_kernel() {
        let mut t = RankTrace::new(0);
        t.push(TraceEvent::kernel("k", Ts(0), Dur(1), StreamId(7)).with_correlation(99));
        assert!(matches!(
            t.validate(),
            Err(TraceError::OrphanKernel {
                correlation: 99,
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_stream_overlap() {
        let mut t = RankTrace::new(0);
        for e in launch_and_kernel(1, 0) {
            t.push(e);
        }
        // second kernel on same stream overlapping the first
        t.push(
            TraceEvent::cuda_runtime(CudaRuntimeKind::LaunchKernel, Ts(1), Dur(1), ThreadId(1))
                .with_correlation(2),
        );
        t.push(TraceEvent::kernel("k2", Ts(10), Dur(10), StreamId(7)).with_correlation(2));
        assert!(matches!(
            t.validate(),
            Err(TraceError::StreamOverlap { .. })
        ));
    }

    #[test]
    fn normalize_shifts_origin() {
        let mut t = RankTrace::new(3);
        t.push(TraceEvent::cpu_op("a", Ts(100), Dur(5), ThreadId(1)));
        t.normalize();
        assert_eq!(t.events()[0].ts, Ts::ZERO);
    }

    #[test]
    fn streams_and_threads_dedup() {
        let mut t = RankTrace::new(0);
        for e in launch_and_kernel(1, 0) {
            t.push(e);
        }
        for e in launch_and_kernel(2, 100) {
            t.push(e);
        }
        assert_eq!(t.streams(), vec![StreamId(7)]);
        assert_eq!(t.threads(), vec![ThreadId(1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate trace")]
    fn duplicate_rank_panics() {
        let mut c = ClusterTrace::new("t");
        c.push_rank(RankTrace::new(0));
        c.push_rank(RankTrace::new(0));
    }

    #[test]
    fn sort_orders_enclosing_first() {
        let mut t = RankTrace::new(0);
        t.push(TraceEvent::cpu_op("inner", Ts(10), Dur(5), ThreadId(1)));
        t.push(TraceEvent::annotation(
            "outer",
            Ts(10),
            Dur(50),
            ThreadId(1),
        ));
        t.sort();
        assert_eq!(&*t.events()[0].name, "outer");
    }
}
