//! Execution-time breakdown (paper §4.2.2, Figures 1, 5, 7, 8).
//!
//! An iteration decomposes into four components measured on the GPU
//! timeline of each rank:
//!
//! * **exposed compute** — computation not overlapping communication;
//! * **overlapped** — computation and communication running
//!   concurrently on different streams;
//! * **exposed communication** — communication not overlapping
//!   computation;
//! * **other** — periods where no stream is active (pipeline bubbles,
//!   host-bound gaps, synchronization stalls).

use crate::event::TraceEvent;
use crate::interval::IntervalSet;
use crate::time::{Dur, TimeSpan};
use crate::trace::{ClusterTrace, RankTrace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four-component execution-time breakdown of one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Breakdown {
    /// Compute-only time.
    pub exposed_compute: Dur,
    /// Compute and communication overlapping.
    pub overlapped: Dur,
    /// Communication-only time.
    pub exposed_comm: Dur,
    /// GPU-idle time within the window.
    pub other: Dur,
}

impl Breakdown {
    /// Computes the breakdown of a set of events within `window`.
    ///
    /// Only GPU events contribute; kernels are split into compute and
    /// communication by [`TraceEvent::is_comm_kernel`].
    pub fn from_events<'a>(
        events: impl IntoIterator<Item = &'a TraceEvent>,
        window: TimeSpan,
    ) -> Self {
        let mut compute_spans = Vec::new();
        let mut comm_spans = Vec::new();
        for e in events {
            if !e.is_gpu() {
                continue;
            }
            let Some(span) = e.span().intersect(&window) else {
                continue;
            };
            if e.is_comm_kernel() {
                comm_spans.push(span);
            } else {
                compute_spans.push(span);
            }
        }
        let compute = IntervalSet::from_spans(compute_spans);
        let comm = IntervalSet::from_spans(comm_spans);
        let busy = compute.union(&comm);
        Breakdown {
            exposed_compute: compute.subtract(&comm).total(),
            overlapped: compute.intersect(&comm).total(),
            exposed_comm: comm.subtract(&compute).total(),
            other: busy.complement_within(window).total(),
        }
    }

    /// Sum of all four components; equals the window length when
    /// computed by [`Breakdown::from_events`].
    pub fn total(&self) -> Dur {
        self.exposed_compute + self.overlapped + self.exposed_comm + self.other
    }

    /// Element-wise mean of several breakdowns (used to aggregate
    /// across ranks). Returns the zero breakdown for an empty input.
    pub fn mean<I: IntoIterator<Item = Breakdown>>(items: I) -> Breakdown {
        let mut acc = Breakdown::default();
        let mut n = 0u64;
        for b in items {
            acc.exposed_compute += b.exposed_compute;
            acc.overlapped += b.overlapped;
            acc.exposed_comm += b.exposed_comm;
            acc.other += b.other;
            n += 1;
        }
        if n == 0 {
            return acc;
        }
        Breakdown {
            exposed_compute: acc.exposed_compute / n,
            overlapped: acc.overlapped / n,
            exposed_comm: acc.exposed_comm / n,
            other: acc.other / n,
        }
    }

    /// Mean absolute relative error of each component against a
    /// reference breakdown, ignoring components that are zero in the
    /// reference.
    pub fn component_error(&self, reference: &Breakdown) -> f64 {
        let pairs = [
            (self.exposed_compute, reference.exposed_compute),
            (self.overlapped, reference.overlapped),
            (self.exposed_comm, reference.exposed_comm),
            (self.other, reference.other),
        ];
        let mut sum = 0.0;
        let mut n = 0;
        for (mine, theirs) in pairs {
            if theirs.is_zero() {
                continue;
            }
            sum += mine.relative_error(theirs);
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compute {:.1}ms | overlap {:.1}ms | comm {:.1}ms | other {:.1}ms (total {:.1}ms)",
            self.exposed_compute.as_ms_f64(),
            self.overlapped.as_ms_f64(),
            self.exposed_comm.as_ms_f64(),
            self.other.as_ms_f64(),
            self.total().as_ms_f64(),
        )
    }
}

/// Breakdown computation on trace containers.
pub trait BreakdownExt {
    /// Computes the execution breakdown within `window`, defaulting to
    /// the container's own span.
    fn breakdown_within(&self, window: Option<TimeSpan>) -> Breakdown;

    /// Breakdown over the container's full span.
    fn breakdown(&self) -> Breakdown {
        self.breakdown_within(None)
    }
}

impl BreakdownExt for RankTrace {
    fn breakdown_within(&self, window: Option<TimeSpan>) -> Breakdown {
        let Some(window) = window.or_else(|| self.span()) else {
            return Breakdown::default();
        };
        Breakdown::from_events(self.events(), window)
    }
}

impl BreakdownExt for ClusterTrace {
    /// Per-rank breakdowns (each within the *cluster* span, so "other"
    /// includes time waiting for peer ranks) averaged across ranks.
    fn breakdown_within(&self, window: Option<TimeSpan>) -> Breakdown {
        let Some(window) = window.or_else(|| self.span()) else {
            return Breakdown::default();
        };
        Breakdown::mean(
            self.ranks()
                .iter()
                .map(|r| Breakdown::from_events(r.events(), window)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CollectiveKind, CommMeta, KernelClass};
    use crate::time::Ts;
    use crate::trace::{StreamId, ThreadId};

    fn compute_kernel(ts: u64, dur: u64) -> TraceEvent {
        TraceEvent::kernel("gemm", Ts(ts), Dur(dur), StreamId(7))
    }

    fn comm_kernel(ts: u64, dur: u64) -> TraceEvent {
        TraceEvent::kernel("nccl", Ts(ts), Dur(dur), StreamId(13)).with_class(
            KernelClass::Collective(CommMeta {
                kind: CollectiveKind::AllReduce,
                group: 0,
                seq: 0,
                bytes: 0,
            }),
        )
    }

    #[test]
    fn four_way_split() {
        // window [0,100): compute [0,40), comm [30,70) -> exposed
        // compute 30, overlap 10, exposed comm 30, other 30.
        let events = [compute_kernel(0, 40), comm_kernel(30, 40)];
        let b = Breakdown::from_events(events.iter(), TimeSpan::new(Ts(0), Ts(100)));
        assert_eq!(b.exposed_compute, Dur(30));
        assert_eq!(b.overlapped, Dur(10));
        assert_eq!(b.exposed_comm, Dur(30));
        assert_eq!(b.other, Dur(30));
        assert_eq!(b.total(), Dur(100));
    }

    #[test]
    fn cpu_events_do_not_contribute() {
        let events = [
            TraceEvent::cpu_op("op", Ts(0), Dur(50), ThreadId(1)),
            compute_kernel(10, 10),
        ];
        let b = Breakdown::from_events(events.iter(), TimeSpan::new(Ts(0), Ts(20)));
        assert_eq!(b.exposed_compute, Dur(10));
        assert_eq!(b.other, Dur(10));
    }

    #[test]
    fn events_clipped_to_window() {
        let events = [compute_kernel(0, 100)];
        let b = Breakdown::from_events(events.iter(), TimeSpan::new(Ts(50), Ts(80)));
        assert_eq!(b.exposed_compute, Dur(30));
        assert_eq!(b.other, Dur::ZERO);
    }

    #[test]
    fn mean_aggregates() {
        let a = Breakdown {
            exposed_compute: Dur(10),
            overlapped: Dur(20),
            exposed_comm: Dur(30),
            other: Dur(40),
        };
        let b = Breakdown {
            exposed_compute: Dur(30),
            overlapped: Dur(0),
            exposed_comm: Dur(10),
            other: Dur(0),
        };
        let m = Breakdown::mean([a, b]);
        assert_eq!(m.exposed_compute, Dur(20));
        assert_eq!(m.overlapped, Dur(10));
        assert_eq!(m.exposed_comm, Dur(20));
        assert_eq!(m.other, Dur(20));
        assert_eq!(Breakdown::mean([]), Breakdown::default());
    }

    #[test]
    fn component_error_ignores_zero_reference() {
        let reference = Breakdown {
            exposed_compute: Dur(100),
            overlapped: Dur::ZERO,
            exposed_comm: Dur(100),
            other: Dur::ZERO,
        };
        let mine = Breakdown {
            exposed_compute: Dur(110),
            overlapped: Dur(50),
            exposed_comm: Dur(90),
            other: Dur(10),
        };
        let err = mine.component_error(&reference);
        assert!((err - 0.1).abs() < 1e-9);
    }

    #[test]
    fn rank_trace_breakdown_uses_own_span() {
        let mut t = RankTrace::new(0);
        t.push(compute_kernel(10, 20));
        t.push(comm_kernel(40, 10));
        let b = t.breakdown();
        // span [10,50): compute 20, idle 10, comm 10
        assert_eq!(b.exposed_compute, Dur(20));
        assert_eq!(b.exposed_comm, Dur(10));
        assert_eq!(b.other, Dur(10));
        assert_eq!(b.total(), Dur(40));
    }

    #[test]
    fn empty_trace_breakdown_is_zero() {
        let t = RankTrace::new(0);
        assert_eq!(t.breakdown(), Breakdown::default());
    }
}
