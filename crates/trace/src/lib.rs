//! Kineto-style runtime trace data model and analytics for Lumos.
//!
//! This crate defines the vocabulary shared by every other Lumos crate:
//! timestamps, trace events (CPU operators, CUDA runtime calls, GPU
//! kernels, user annotations), per-rank and cluster-wide trace
//! containers, Chrome Trace Format import/export, and the trace
//! analytics the paper reports on — execution-time breakdown
//! (exposed compute / exposed communication / overlapped / other,
//! §4.2.2) and SM-utilization timelines (§4.2.3).
//!
//! The event model mirrors what PyTorch Kineto records on a real
//! training job: every GPU kernel carries a CUDA stream id and a
//! correlation id linking it to the CPU-side `cudaLaunchKernel` call,
//! CUDA synchronization and event calls are first-class events, and
//! user annotations (e.g. `fwd mb=3 layer=7`) delimit logical phases.
//!
//! # Example
//!
//! ```
//! use lumos_trace::{RankTrace, TraceEvent, EventKind, Ts, Dur, StreamId, ThreadId};
//!
//! let mut trace = RankTrace::new(0);
//! trace.push(TraceEvent::cpu_op("aten::mm", Ts::from_us(10), Dur::from_us(5), ThreadId(1)));
//! trace.push(
//!     TraceEvent::kernel("sm90_gemm", Ts::from_us(20), Dur::from_us(100), StreamId(7))
//!         .with_correlation(42),
//! );
//! assert_eq!(trace.len(), 2);
//! assert_eq!(trace.span().unwrap().duration(), Dur::from_us(110));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breakdown;
mod chrome;
mod error;
mod event;
mod interval;
mod queue;
mod sm_util;
mod stats;
mod time;
mod trace;

pub use breakdown::{Breakdown, BreakdownExt};
pub use chrome::{from_chrome_json, to_chrome_json, ChromeTraceOptions};
pub use error::TraceError;
pub use event::{CollectiveKind, CommMeta, CudaRuntimeKind, EventKind, KernelClass, TraceEvent};
pub use interval::IntervalSet;
pub use queue::{queue_delays, stream_occupancy, QueueDelayStats, StreamOccupancy};
pub use sm_util::{sm_utilization, SmUtilization};
pub use stats::{KernelStats, TraceStats};
pub use time::{Dur, ScaleError, TimeSpan, Ts};
pub use trace::{ClusterTrace, RankId, RankTrace, StreamId, ThreadId};
