//! Nanosecond-precision timestamps and durations.
//!
//! Kineto traces store microseconds with fractional parts; we use
//! integer nanoseconds internally so that arithmetic is exact, `Ord`
//! and `Hash` are well-defined, and simulated replays are
//! bit-reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute timestamp in nanoseconds since the start of the trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Ts(pub u64);

/// A span of time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Dur(pub u64);

impl Ts {
    /// The zero timestamp (trace origin).
    pub const ZERO: Ts = Ts(0);
    /// The maximum representable timestamp.
    pub const MAX: Ts = Ts(u64::MAX);

    /// Creates a timestamp from whole microseconds.
    pub const fn from_us(us: u64) -> Self {
        Ts(us * 1_000)
    }

    /// Creates a timestamp from whole milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Ts(ms * 1_000_000)
    }

    /// Raw nanosecond value.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This timestamp expressed in (possibly fractional) microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This timestamp expressed in (possibly fractional) milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: Ts) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two timestamps.
    pub fn max(self, other: Ts) -> Ts {
        Ts(self.0.max(other.0))
    }

    /// Returns the earlier of two timestamps.
    pub fn min(self, other: Ts) -> Ts {
        Ts(self.0.min(other.0))
    }
}

impl Dur {
    /// The zero duration.
    pub const ZERO: Dur = Dur(0);

    /// Creates a duration from whole microseconds.
    pub const fn from_us(us: u64) -> Self {
        Dur(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the
    /// nearest nanosecond and saturating at zero for negative input.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return Dur::ZERO;
        }
        Dur((secs * 1e9).round() as u64)
    }

    /// Creates a duration from fractional microseconds (Kineto's unit).
    pub fn from_us_f64(us: f64) -> Self {
        Dur::from_secs_f64(us / 1e6)
    }

    /// Raw nanosecond value.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This duration in (possibly fractional) microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration in (possibly fractional) milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This duration in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales this duration by a non-negative factor, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite. Library callers
    /// handling untrusted factors should use [`Dur::try_scale`].
    pub fn scale(self, factor: f64) -> Dur {
        match self.try_scale(factor) {
            Ok(d) => d,
            Err(e) => panic!("duration {e}"),
        }
    }

    /// Fallible [`Dur::scale`]: rejects negative, NaN, and infinite
    /// factors instead of panicking, for factors that come from user
    /// input rather than library constants.
    ///
    /// # Errors
    ///
    /// Returns [`ScaleError`] when `factor` is negative or not finite.
    pub fn try_scale(self, factor: f64) -> Result<Dur, ScaleError> {
        if !(factor >= 0.0 && factor.is_finite()) {
            return Err(ScaleError { factor });
        }
        Ok(Dur((self.0 as f64 * factor).round() as u64))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// Relative difference `|self - other| / other`, used for replay
    /// error reporting. Returns 0 when both are zero.
    pub fn relative_error(self, reference: Dur) -> f64 {
        if reference.0 == 0 {
            if self.0 == 0 {
                return 0.0;
            }
            return f64::INFINITY;
        }
        (self.0 as f64 - reference.0 as f64).abs() / reference.0 as f64
    }
}

/// A rejected duration-scale factor (negative, NaN, or infinite).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleError {
    /// The offending factor.
    pub factor: f64,
}

impl fmt::Display for ScaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scale factor must be finite and non-negative, got {}",
            self.factor
        )
    }
}

impl std::error::Error for ScaleError {}

impl Add<Dur> for Ts {
    type Output = Ts;
    fn add(self, rhs: Dur) -> Ts {
        Ts(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Ts {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Ts {
    type Output = Ts;
    fn sub(self, rhs: Dur) -> Ts {
        Ts(self.0 - rhs.0)
    }
}

impl Sub<Ts> for Ts {
    type Output = Dur;
    fn sub(self, rhs: Ts) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        Dur(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A half-open time interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimeSpan {
    /// Inclusive start.
    pub start: Ts,
    /// Exclusive end.
    pub end: Ts,
}

impl TimeSpan {
    /// Creates a span. `end` must not precede `start`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: Ts, end: Ts) -> Self {
        assert!(end >= start, "TimeSpan end {end} precedes start {start}");
        TimeSpan { start, end }
    }

    /// Creates a span from a start time and a duration.
    pub fn from_start_dur(start: Ts, dur: Dur) -> Self {
        TimeSpan {
            start,
            end: start + dur,
        }
    }

    /// Length of the span.
    pub fn duration(&self) -> Dur {
        self.end - self.start
    }

    /// Returns `true` when the span is empty (`start == end`).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns `true` when `ts` falls within `[start, end)`.
    pub fn contains(&self, ts: Ts) -> bool {
        ts >= self.start && ts < self.end
    }

    /// Intersection with another span, if non-empty.
    pub fn intersect(&self, other: &TimeSpan) -> Option<TimeSpan> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(TimeSpan { start, end })
        } else {
            None
        }
    }

    /// Returns `true` when the two spans overlap in a region of
    /// positive length.
    pub fn overlaps(&self, other: &TimeSpan) -> bool {
        self.intersect(other).is_some()
    }

    /// Smallest span covering both inputs.
    pub fn hull(&self, other: &TimeSpan) -> TimeSpan {
        TimeSpan {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ts_arithmetic_roundtrips() {
        let t = Ts::from_us(5);
        let d = Dur::from_us(3);
        assert_eq!(t + d, Ts(8_000));
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn dur_conversions() {
        assert_eq!(Dur::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(Dur::from_us_f64(1.5).as_ns(), 1_500);
        assert!((Dur::from_secs_f64(0.25).as_secs_f64() - 0.25).abs() < 1e-12);
        assert_eq!(Dur::from_secs_f64(-1.0), Dur::ZERO);
    }

    #[test]
    fn dur_scale_rounds() {
        assert_eq!(Dur(100).scale(1.5), Dur(150));
        assert_eq!(Dur(3).scale(0.5), Dur(2)); // 1.5 rounds to 2
        assert_eq!(Dur(0).scale(10.0), Dur::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn dur_scale_rejects_negative() {
        let _ = Dur(1).scale(-1.0);
    }

    #[test]
    fn dur_try_scale_rejects_bad_factors_without_panicking() {
        for bad in [-1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Dur(100).try_scale(bad).unwrap_err();
            assert_eq!(err.factor.to_bits(), bad.to_bits());
            assert!(err.to_string().contains("non-negative"));
        }
        assert_eq!(Dur(100).try_scale(1.5), Ok(Dur(150)));
        assert_eq!(Dur(100).try_scale(0.0), Ok(Dur::ZERO));
    }

    #[test]
    fn relative_error_cases() {
        assert_eq!(Dur(110).relative_error(Dur(100)), 0.1);
        assert_eq!(Dur(90).relative_error(Dur(100)), 0.1);
        assert_eq!(Dur(0).relative_error(Dur(0)), 0.0);
        assert!(Dur(1).relative_error(Dur(0)).is_infinite());
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Ts(5).saturating_since(Ts(10)), Dur::ZERO);
        assert_eq!(Ts(10).saturating_since(Ts(4)), Dur(6));
    }

    #[test]
    fn span_intersection() {
        let a = TimeSpan::new(Ts(0), Ts(10));
        let b = TimeSpan::new(Ts(5), Ts(15));
        assert_eq!(a.intersect(&b), Some(TimeSpan::new(Ts(5), Ts(10))));
        let c = TimeSpan::new(Ts(10), Ts(20));
        assert_eq!(a.intersect(&c), None); // half-open: touching is empty
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn span_hull_and_contains() {
        let a = TimeSpan::new(Ts(2), Ts(4));
        let b = TimeSpan::new(Ts(8), Ts(9));
        let h = a.hull(&b);
        assert_eq!(h, TimeSpan::new(Ts(2), Ts(9)));
        assert!(h.contains(Ts(2)));
        assert!(!h.contains(Ts(9)));
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn span_rejects_inverted() {
        let _ = TimeSpan::new(Ts(5), Ts(1));
    }

    #[test]
    fn dur_sum_and_ops() {
        let total: Dur = [Dur(1), Dur(2), Dur(3)].into_iter().sum();
        assert_eq!(total, Dur(6));
        assert_eq!(Dur(6) / 2, Dur(3));
        assert_eq!(Dur(6) * 2, Dur(12));
        assert_eq!(Dur(6).saturating_sub(Dur(10)), Dur::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dur(500).to_string(), "500ns");
        assert_eq!(Dur::from_us(2).to_string(), "2.000us");
        assert_eq!(Dur::from_ms(3).to_string(), "3.000ms");
        assert_eq!(Ts::from_us(1).to_string(), "1.000us");
    }
}
