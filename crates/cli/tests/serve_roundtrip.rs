//! The byte-identity anchor between the daemon and the CLI: a running
//! `lumos serve` daemon must answer `predict` and `search` requests
//! with the exact bytes `lumos predict --json` / `lumos search --json`
//! print for the same artifact — one shared response schema, two
//! transports. Also covers the `lumos query` client and the artifact
//! branch of `lumos info`.

use lumos_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

fn run_cli(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    lumos_cli::run(&args, &mut buf).unwrap_or_else(|e| panic!("lumos {args:?} failed: {e}"));
    String::from_utf8(buf).expect("utf8 output")
}

fn ask(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    writeln!(stream, "{request}").unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    line
}

#[test]
fn daemon_responses_are_byte_identical_to_cli_json() {
    let dir = std::env::temp_dir().join(format!("lumos-cli-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = dir.join("registry");
    std::fs::create_dir_all(&registry).unwrap();
    let trace = dir.join("t.json");
    let trace = trace.to_str().unwrap();
    let artifact = registry.join("t.calib.json");
    let artifact = artifact.to_str().unwrap();

    run_cli(&[
        "synth", "--model", "tiny", "--tp", "1", "--pp", "2", "--dp", "1", "--out", trace,
    ]);
    run_cli(&["calibrate", trace, "--out", artifact]);

    // The artifact branch of `lumos info` names the registry key.
    let info = run_cli(&["info", artifact]);
    assert!(info.contains("calibration artifact"), "{info}");
    assert!(info.contains("digest:    0x"), "{info}");
    assert!(info.contains("fingerprint"), "{info}");
    let digest = info
        .lines()
        .find_map(|l| l.strip_prefix("digest:"))
        .unwrap()
        .trim()
        .to_string();

    let config = ServeConfig::new("127.0.0.1:0", &registry);
    let (server, outcome) = Server::bind(&config).unwrap();
    assert_eq!(outcome.loaded, vec![digest.clone()]);
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run().unwrap());

    // predict: daemon line == CLI --json line, byte for byte.
    let from_daemon = ask(
        addr,
        &format!(r#"{{"kind":"predict","artifact":"{digest}","dp":2,"microbatches":8}}"#),
    );
    let from_cli = run_cli(&[
        "predict",
        "--calib",
        artifact,
        "--dp",
        "2",
        "--microbatches",
        "8",
        "--json",
    ]);
    assert_eq!(from_daemon, from_cli);

    // search (refined phase included): same identity.
    let from_daemon = ask(
        addr,
        &format!(
            r#"{{"kind":"search","artifact":"{digest}","dp":[1,2,4],"microbatches":[2,4],"top":3,"refine_sim":true}}"#
        ),
    );
    let from_cli = run_cli(&[
        "search",
        "--calib",
        artifact,
        "--dp",
        "1,2,4",
        "--microbatches",
        "2,4",
        "--top",
        "3",
        "--refine-sim",
        "--json",
    ]);
    assert_eq!(from_daemon, from_cli);

    // `lumos query` is a faithful transport: its stdout is the daemon
    // line unmodified.
    let addr_str = addr.to_string();
    let request = format!(r#"{{"kind":"predict","artifact":"{digest}","dp":2}}"#);
    let via_query = run_cli(&["query", "--addr", &addr_str, &request]);
    assert_eq!(via_query, ask(addr, &request));

    // The JSON flag composes badly with text-only options — loudly.
    let args: Vec<String> = [
        "predict", "--calib", artifact, "--dp", "2", "--json", "--out", "x.json",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let err = lumos_cli::run(&args, &mut Vec::new()).unwrap_err();
    assert!(err.to_string().contains("--out"), "{err}");
    let args: Vec<String> = [
        "predict",
        "--calib",
        artifact,
        "--scale-gemms",
        "0.5",
        "--json",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let err = lumos_cli::run(&args, &mut Vec::new()).unwrap_err();
    assert!(err.to_string().contains("--scale"), "{err}");

    ask(addr, r#"{"kind":"shutdown"}"#);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn info_still_handles_plain_traces() {
    let dir = std::env::temp_dir().join(format!("lumos-cli-info-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.json");
    let trace = trace.to_str().unwrap();
    run_cli(&[
        "synth", "--model", "tiny", "--tp", "1", "--pp", "1", "--dp", "1", "--out", trace,
    ]);
    let info = run_cli(&["info", trace]);
    assert!(info.contains("breakdown"), "{info}");
    assert!(!info.contains("calibration artifact"), "{info}");
    std::fs::remove_dir_all(&dir).ok();
}
