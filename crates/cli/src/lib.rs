//! The `lumos` command-line interface.
//!
//! Wraps the toolkit's workflow (Figure 2) in subcommands:
//!
//! | command | purpose |
//! |---|---|
//! | `synth` | profile a training iteration on the ground-truth cluster |
//! | `synth-infer` | profile an inference request batch |
//! | `info` | trace dimensions, breakdown, heaviest kernels |
//! | `calibrate` | fit a reusable calibration artifact from a trace |
//! | `replay` | replay through Algorithm 1 (`--dpro` for the baseline) |
//! | `predict` | graph manipulation + simulation for what-if configs |
//! | `search` | parallel what-if search over a configuration space |
//! | `faults` | explain a fault-scenario spec and its sampling |
//! | `lint` | statically verify lowered programs deadlock-free |
//! | `sm-util` | §4.2.3 SM-utilization timeline |
//! | `critical-path` | longest dependency chain + bottleneck kernels |
//! | `mfu` | MFU/HFU and memory feasibility (§5 future-work metrics) |
//! | `serve` | persistent estimation daemon over calibration artifacts |
//! | `query` | one-shot client for a running `serve` daemon |
//!
//! `replay`, `predict`, `search`, and `mfu` accept `--calib
//! <artifact>` (the output of `lumos calibrate`) to skip trace
//! ingestion entirely — the calibrate-once, query-many workflow.
//!
//! The binary is a thin wrapper over [`run`], which writes to any
//! `Write` so tests can drive it in-process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod common;
mod error;

pub use args::{ArgSet, ArgSpec};
pub use error::CliError;

use std::io::Write;

const GENERAL_HELP: &str = "lumos — trace-driven performance modeling for LLM training\n\
\n\
usage: lumos <command> [args]\n\
\n\
commands:\n\
  synth          generate a ground-truth training trace\n\
  synth-infer    generate a ground-truth inference trace\n\
  info           summarize a trace\n\
  calibrate      fit a reusable calibration artifact from a trace\n\
  replay         replay a trace through the simulator\n\
  predict        estimate performance for a modified configuration\n\
  search         rank a whole configuration space from one trace\n\
  faults         explain a fault-scenario spec and its sampling\n\
  lint           statically verify lowered programs deadlock-free\n\
  sm-util        SM-utilization timeline\n\
  critical-path  critical path and bottleneck kernels\n\
  mfu            FLOPS utilization and memory feasibility\n\
  serve          run the persistent estimation daemon\n\
  query          send one request to a running daemon\n\
  help           this message (or `lumos help <command>`)\n";

/// Dispatches one CLI invocation (`args` excludes the binary name).
///
/// # Errors
///
/// Returns usage errors (unknown command/option) and tool failures.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some((command, rest)) = args.split_first() else {
        writeln!(out, "{GENERAL_HELP}")?;
        return Ok(());
    };
    match command.as_str() {
        "synth" => commands::synth::run(&ArgSet::parse(rest, &commands::synth::SPEC)?, out),
        "synth-infer" => {
            commands::synth::run_infer(&ArgSet::parse(rest, &commands::synth::INFER_SPEC)?, out)
        }
        "info" => commands::info::run(&ArgSet::parse(rest, &commands::info::SPEC)?, out),
        "calibrate" => {
            commands::calibrate::run(&ArgSet::parse(rest, &commands::calibrate::SPEC)?, out)
        }
        "replay" => commands::replay::run(&ArgSet::parse(rest, &commands::replay::SPEC)?, out),
        "predict" => commands::predict::run(&ArgSet::parse(rest, &commands::predict::SPEC)?, out),
        "search" => commands::search::run(&ArgSet::parse(rest, &commands::search::SPEC)?, out),
        "faults" => commands::faults::run(&ArgSet::parse(rest, &commands::faults::SPEC)?, out),
        "lint" => commands::lint::run(&ArgSet::parse(rest, &commands::lint::SPEC)?, out),
        "sm-util" => commands::smutil::run(&ArgSet::parse(rest, &commands::smutil::SPEC)?, out),
        "critical-path" => {
            commands::critical::run(&ArgSet::parse(rest, &commands::critical::SPEC)?, out)
        }
        "mfu" => commands::mfu::run(&ArgSet::parse(rest, &commands::mfu::SPEC)?, out),
        "serve" => commands::serve::run(&ArgSet::parse(rest, &commands::serve::SPEC)?, out),
        "query" => commands::query::run(&ArgSet::parse(rest, &commands::query::SPEC)?, out),
        "help" | "--help" | "-h" => {
            match rest.first().map(String::as_str) {
                Some("synth") => writeln!(out, "{}", commands::synth::HELP)?,
                Some("synth-infer") => writeln!(out, "{}", commands::synth::INFER_HELP)?,
                Some("info") => writeln!(out, "{}", commands::info::HELP)?,
                Some("calibrate") => writeln!(out, "{}", commands::calibrate::HELP)?,
                Some("replay") => writeln!(out, "{}", commands::replay::HELP)?,
                Some("predict") => writeln!(out, "{}", commands::predict::HELP)?,
                Some("search") => writeln!(out, "{}", commands::search::HELP)?,
                Some("faults") => writeln!(out, "{}", commands::faults::HELP)?,
                Some("lint") => writeln!(out, "{}", commands::lint::HELP)?,
                Some("sm-util") => writeln!(out, "{}", commands::smutil::HELP)?,
                Some("critical-path") => writeln!(out, "{}", commands::critical::HELP)?,
                Some("mfu") => writeln!(out, "{}", commands::mfu::HELP)?,
                Some("serve") => writeln!(out, "{}", commands::serve::HELP)?,
                Some("query") => writeln!(out, "{}", commands::query::HELP)?,
                Some(other) => return Err(CliError::Usage(format!("unknown command `{other}`"))),
                None => writeln!(out, "{GENERAL_HELP}")?,
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}` (try `lumos help`)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn no_args_prints_help() {
        let out = run_to_string(&[]).unwrap();
        assert!(out.contains("usage: lumos"));
    }

    #[test]
    fn help_routes_to_command_help() {
        let out = run_to_string(&["help", "predict"]).unwrap();
        assert!(out.contains("--dp"));
        assert!(run_to_string(&["help", "nope"]).is_err());
        assert!(run_to_string(&["help"]).unwrap().contains("sm-util"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let err = run_to_string(&["frobnicate"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn synth_requires_model_and_out() {
        let err = run_to_string(&["synth"]).unwrap_err();
        assert!(err.to_string().contains("--model"));
    }

    #[test]
    fn end_to_end_synth_info_replay_predict() {
        let dir = std::env::temp_dir().join(format!("lumos-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.json");
        let trace = trace.to_str().unwrap();

        let out = run_to_string(&[
            "synth", "--model", "tiny", "--tp", "2", "--pp", "1", "--dp", "1", "--out", trace,
        ])
        .unwrap();
        assert!(out.contains("profiled tiny @ 2x1x1"));

        let out = run_to_string(&["info", trace]).unwrap();
        assert!(out.contains("ranks:     2"));
        assert!(out.contains("breakdown"));

        let out = run_to_string(&["replay", trace]).unwrap();
        assert!(out.contains("error:"));
        let out_dpro = run_to_string(&["replay", trace, "--dpro"]).unwrap();
        assert!(out_dpro.contains("dPRO"));

        let out = run_to_string(&["predict", trace, "--microbatches", "4"]).unwrap();
        assert!(out.contains("predicted:"));

        // Operator-level what-ifs route through the fallible scaling
        // APIs: valid factors report an adjusted estimate, bad ones
        // are usage errors instead of panics.
        let out = run_to_string(&[
            "predict",
            trace,
            "--scale-gemms",
            "0.5",
            "--scale-host",
            "0.5",
        ])
        .unwrap();
        assert!(out.contains("what-if:"), "{out}");
        assert!(out.contains("scaled"), "{out}");
        let err = run_to_string(&["predict", trace, "--scale-comms", "-1"]).unwrap_err();
        assert!(err.to_string().contains("non-negative"), "{err}");
        let err = run_to_string(&["predict", trace, "--scale-comms", "NaN"]).unwrap_err();
        assert!(err.to_string().contains("non-negative"), "{err}");

        let out = run_to_string(&["sm-util", trace]).unwrap();
        assert!(out.contains("mean utilization"));

        let out = run_to_string(&["critical-path", trace, "--top", "3"]).unwrap();
        assert!(out.contains("bottleneck kernels"));

        let out = run_to_string(&["mfu", trace]).unwrap();
        assert!(out.contains("MFU"));
        assert!(out.contains("peak memory"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn search_from_synth_trace_and_from_model() {
        let dir = std::env::temp_dir().join(format!("lumos-cli-search-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("s.json");
        let trace = trace.to_str().unwrap();

        run_to_string(&[
            "synth", "--model", "tiny", "--tp", "1", "--pp", "2", "--dp", "1", "--out", trace,
        ])
        .unwrap();

        // Trace-file mode with axis flags.
        let out = run_to_string(&[
            "search",
            trace,
            "--dp",
            "1,2,4",
            "--microbatches",
            "2,4",
            "--top",
            "3",
        ])
        .unwrap();
        assert!(out.contains("grid points"), "{out}");
        assert!(out.contains("tok/s/GPU"), "{out}");
        assert!(out.contains("objective"), "{out}");

        // Space-file mode layered under a flag override.
        let spec = dir.join("space.toml");
        std::fs::write(
            &spec,
            "dp = [1, 2]\nmicrobatches = [2]\nobjective = \"makespan\"\ntop-k = 2\n",
        )
        .unwrap();
        let out = run_to_string(&[
            "search",
            trace,
            "--space",
            spec.to_str().unwrap(),
            "--dp",
            "1,2,4",
        ])
        .unwrap();
        assert!(out.contains("objective: makespan"), "{out}");

        // Trace-less mode profiles the base itself.
        let out = run_to_string(&[
            "search",
            "--model",
            "tiny",
            "--base-pp",
            "2",
            "--dp",
            "1,2",
            "--microbatches",
            "2",
        ])
        .unwrap();
        assert!(out.contains("profiling base"), "{out}");
        assert!(out.contains("rank"), "{out}");

        // Streaming knobs: --keep-all retains the full ranking,
        // --progress only writes to stderr (stdout table unchanged).
        let out = run_to_string(&[
            "search",
            trace,
            "--dp",
            "1,2,4",
            "--microbatches",
            "2,4",
            "--top",
            "2",
            "--keep-all",
            "--progress",
        ])
        .unwrap();
        assert!(out.contains("rank"), "{out}");

        // Usage errors stay loud.
        assert!(run_to_string(&["search"]).is_err());
        assert!(run_to_string(&["search", trace, "--dp", "x"]).is_err());
        assert!(run_to_string(&["search", trace, "--model", "tiny"]).is_err());
        assert!(run_to_string(&["help", "search"])
            .unwrap()
            .contains("--space"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn calibrate_once_query_many_byte_identical() {
        let dir = std::env::temp_dir().join(format!("lumos-cli-calib-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("c.json");
        let trace = trace.to_str().unwrap();
        let art = dir.join("c.calib.json");
        let art = art.to_str().unwrap();

        run_to_string(&[
            "synth", "--model", "tiny", "--tp", "1", "--pp", "2", "--dp", "1", "--out", trace,
        ])
        .unwrap();
        let out = run_to_string(&["calibrate", trace, "--out", art]).unwrap();
        assert!(out.contains("calibrated tiny @ 1x2x1"), "{out}");
        assert!(out.contains("compute shapes"), "{out}");

        // predict: the calibrated path must reproduce the
        // fit-on-the-fly output byte for byte.
        let fresh = run_to_string(&["predict", trace, "--dp", "2", "--microbatches", "4"]).unwrap();
        let calibrated = run_to_string(&[
            "predict",
            "--calib",
            art,
            "--dp",
            "2",
            "--microbatches",
            "4",
        ])
        .unwrap();
        assert_eq!(fresh, calibrated);

        // search: same byte-identity, including the refinement phase.
        let search_args = [
            "--dp",
            "1,2,4",
            "--microbatches",
            "2,4",
            "--top",
            "3",
            "--refine-sim",
        ];
        let mut fresh_args = vec!["search", trace];
        fresh_args.extend_from_slice(&search_args);
        let mut calib_args = vec!["search", "--calib", art];
        calib_args.extend_from_slice(&search_args);
        let fresh = run_to_string(&fresh_args).unwrap();
        let calibrated = run_to_string(&calib_args).unwrap();
        assert_eq!(fresh, calibrated);

        // mfu from the artifact alone.
        let out = run_to_string(&["mfu", "--calib", art]).unwrap();
        assert!(out.contains("MFU"), "{out}");
        assert!(out.contains("tiny @ 1x2x1"), "{out}");

        // replay from the artifact alone (identity reassembly).
        let out = run_to_string(&["replay", "--calib", art]).unwrap();
        assert!(out.contains("replayed:"), "{out}");
        assert!(out.contains("recorded:"), "{out}");

        // Passing the matching trace alongside --calib is allowed
        // (fingerprint check passes)...
        let out = run_to_string(&["predict", trace, "--calib", art, "--dp", "2"]).unwrap();
        assert!(out.contains("predicted:"), "{out}");

        // ...but a different trace is rejected with a fingerprint
        // error.
        let other = dir.join("other.json");
        let other = other.to_str().unwrap();
        run_to_string(&[
            "synth", "--model", "tiny", "--tp", "1", "--pp", "2", "--dp", "1", "--seed", "7",
            "--out", other,
        ])
        .unwrap();
        let err = run_to_string(&["predict", other, "--calib", art, "--dp", "2"]).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");

        // Tampered artifacts are rejected on load (digest check), and
        // wrong versions are rejected by name.
        let mut doc = std::fs::read_to_string(art).unwrap();
        doc = doc.replace("\"hardware\":\"h100\"", "\"hardware\":\"h999\"");
        let tampered = dir.join("tampered.json");
        std::fs::write(&tampered, doc.replace("\"version\":1", "\"version\":99")).unwrap();
        let err = run_to_string(&[
            "predict",
            "--calib",
            tampered.to_str().unwrap(),
            "--dp",
            "2",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_verifies_setups_spaces_and_jobs() {
        // Single-setup mode.
        let out = run_to_string(&[
            "lint", "--model", "tiny", "--tp", "2", "--pp", "2", "--dp", "1",
        ])
        .unwrap();
        assert!(out.contains("deadlock-free"), "{out}");

        // Space-file mode walks the whole grid.
        let dir = std::env::temp_dir().join(format!("lumos-cli-lint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("space.toml");
        std::fs::write(
            &spec,
            "tp = [1, 2]\npp = [1, 2]\ndp = [1]\nmicrobatches = [2, 4]\n",
        )
        .unwrap();
        let out = run_to_string(&["lint", spec.to_str().unwrap(), "--model", "tiny"]).unwrap();
        assert!(out.contains("all deadlock-free"), "{out}");
        assert!(out.contains("candidate(s)"), "{out}");

        // Job mode rejects the committed deadlock fixture with a
        // named cycle.
        let fixture = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/fixtures/deadlock.json"
        );
        let err = run_to_string(&["lint", "--job", fixture]).unwrap_err();
        assert!(err.to_string().contains("static deadlock"), "{err}");
        assert!(err.to_string().contains("cycle repeats"), "{err}");

        // Usage errors: no input at all, job + space file together.
        assert!(run_to_string(&["lint"]).is_err());
        assert!(run_to_string(&["lint", spec.to_str().unwrap(), "--job", fixture]).is_err());
        assert!(run_to_string(&["help", "lint"]).unwrap().contains("--job"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn search_verify_gate_and_byte_identity() {
        // --verify requires the refinement phase.
        let err = run_to_string(&["search", "--verify"]).unwrap_err();
        assert!(err.to_string().contains("--verify only applies"), "{err}");

        // Verification never changes results for clean programs.
        let dir = std::env::temp_dir().join(format!("lumos-cli-sverify-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("v.json");
        let trace = trace.to_str().unwrap();
        run_to_string(&[
            "synth", "--model", "tiny", "--tp", "1", "--pp", "2", "--dp", "1", "--out", trace,
        ])
        .unwrap();
        let base = run_to_string(&[
            "search",
            trace,
            "--dp",
            "1,2",
            "--microbatches",
            "2",
            "--refine-sim",
        ])
        .unwrap();
        let verified = run_to_string(&[
            "search",
            trace,
            "--dp",
            "1,2",
            "--microbatches",
            "2",
            "--refine-sim",
            "--verify",
        ])
        .unwrap();
        assert_eq!(base, verified);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faults_explain_summarizes_spec_and_sampling() {
        let dir = std::env::temp_dir().join(format!("lumos-cli-fexpl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("mix.toml");
        std::fs::write(
            &spec,
            "version = 1\n\
             [[straggler]]\nprobability = 0.9\nslowdown = 1.5\n\
             [[degradation]]\nprobability = 0.5\nscope = \"dp\"\nbandwidth_factor = 0.25\n\
             [[failure]]\nprobability = 0.3\nelastic = true\n",
        )
        .unwrap();
        let out = run_to_string(&["faults", "explain", spec.to_str().unwrap()]).unwrap();
        assert!(
            out.contains("1 straggler, 1 degradation, 1 failure"),
            "{out}"
        );
        assert!(out.contains("1.50x slowdown"), "{out}");
        assert!(out.contains("dp collectives"), "{out}");
        assert!(out.contains("elastic re-shard"), "{out}");
        assert!(out.contains("replica   0:"), "{out}");
        assert!(out.contains("replica(s) clean"), "{out}");

        // Sampling is deterministic and seed-sensitive.
        let again = run_to_string(&["faults", "explain", spec.to_str().unwrap()]).unwrap();
        assert_eq!(out, again);
        let reseeded =
            run_to_string(&["faults", "explain", spec.to_str().unwrap(), "--seed", "7"]).unwrap();
        assert_ne!(out, reseeded);

        // An empty spec says so instead of sampling clean replicas.
        let empty = dir.join("empty.toml");
        std::fs::write(&empty, "version = 1\n").unwrap();
        let out = run_to_string(&["faults", "explain", empty.to_str().unwrap()]).unwrap();
        assert!(
            out.contains("byte-identical to plain --refine-sim"),
            "{out}"
        );

        // Usage errors: missing path, unknown action.
        assert!(run_to_string(&["faults"]).is_err());
        let err = run_to_string(&["faults", "frob", spec.to_str().unwrap()]).unwrap_err();
        assert!(err.to_string().contains("unknown action"), "{err}");
        assert!(run_to_string(&["help", "faults"])
            .unwrap()
            .contains("--replicas"));

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite guarantee: every malformed fault-spec field fails as
    /// a usage error (exit code 2 at the binary boundary) whose
    /// message names both the offending file and the offending key.
    #[test]
    fn malformed_fault_specs_name_path_and_key() {
        let dir = std::env::temp_dir().join(format!("lumos-cli-fbad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // One case per malformed field: (spec text, named key/table).
        let cases: &[(&str, &str)] = &[
            ("version = 9", "version"),
            ("version = 1.5", "version"),
            ("[[gremlin]]\n", "gremlin"),
            ("[straggler]\n", "array-of-tables"),
            ("not a key value line\n", "line 1"),
            (
                "[[straggler]]\nslowdown = 1.5\nprobability = 2.0",
                "probability",
            ),
            (
                "[[straggler]]\nprobability = 0.5\nslowdown = 1.5\nranks = 0",
                "ranks",
            ),
            ("[[straggler]]\nprobability = 0.5", "slowdown"),
            (
                "[[straggler]]\nprobability = 0.5\nslowdown = 0.5",
                "slowdown",
            ),
            (
                "[[straggler]]\nprobability = 0.5\nslowdown = 1.5\nfoo = 1",
                "foo",
            ),
            (
                "[[degradation]]\nprobability = 0.5\nbandwidth_factor = 0.5\nscope = \"np\"",
                "scope",
            ),
            ("[[degradation]]\nprobability = 0.5", "bandwidth_factor"),
            (
                "[[degradation]]\nprobability = 0.5\nbandwidth_factor = 0.0",
                "bandwidth_factor",
            ),
            (
                "[[degradation]]\nprobability = 0.5\nbandwidth_factor = 0.5\nstart_frac = -1",
                "start_frac",
            ),
            (
                "[[degradation]]\nprobability = 0.5\nbandwidth_factor = 0.5\nend_frac = 0.0",
                "end_frac",
            ),
            (
                "[[failure]]\nprobability = 0.5\ncheckpoint_interval = 0.5",
                "checkpoint_interval",
            ),
            (
                "[[failure]]\nprobability = 0.5\nrestart_latency_s = -1",
                "restart_latency_s",
            ),
            (
                "[[failure]]\nprobability = 0.5\nreshard_cost_s = -1",
                "reshard_cost_s",
            ),
            ("[[failure]]\nprobability = 0.5\nelastic = 1", "elastic"),
        ];
        for (i, (text, key)) in cases.iter().enumerate() {
            let path = dir.join(format!("bad{i}.toml"));
            std::fs::write(&path, text).unwrap();
            let path = path.to_str().unwrap();
            let err = run_to_string(&["faults", "explain", path]).unwrap_err();
            assert!(
                matches!(err, CliError::Usage(_)),
                "case {i}: expected a usage error (exit 2), got {err}"
            );
            let msg = err.to_string();
            assert!(msg.contains(path), "case {i}: path missing from `{msg}`");
            assert!(msg.contains(key), "case {i}: `{key}` missing from `{msg}`");
            // The search-side loader wraps the same parser the same way.
            let err = run_to_string(&["search", "--model", "tiny", "--faults", path]).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "case {i}: {err}");
            assert!(err.to_string().contains(key), "case {i}: {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn search_faults_gates_columns_and_empty_spec_identity() {
        // Replica/seed knobs require a spec to apply to.
        let err = run_to_string(&["search", "--fault-replicas", "4"]).unwrap_err();
        assert!(
            err.to_string().contains("--fault-replicas only applies"),
            "{err}"
        );
        let err = run_to_string(&["search", "--fault-seed", "7"]).unwrap_err();
        assert!(
            err.to_string().contains("--fault-seed only applies"),
            "{err}"
        );

        let dir = std::env::temp_dir().join(format!("lumos-cli-frun-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("f.json");
        let trace = trace.to_str().unwrap();
        run_to_string(&[
            "synth", "--model", "tiny", "--tp", "1", "--pp", "2", "--dp", "1", "--out", trace,
        ])
        .unwrap();

        // An empty spec is byte-identical to plain --refine-sim.
        let empty = dir.join("empty.toml");
        std::fs::write(&empty, "version = 1\n").unwrap();
        let plain = run_to_string(&[
            "search",
            trace,
            "--dp",
            "1,2",
            "--microbatches",
            "2",
            "--refine-sim",
        ])
        .unwrap();
        let with_empty = run_to_string(&[
            "search",
            trace,
            "--dp",
            "1,2",
            "--microbatches",
            "2",
            "--faults",
            empty.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(plain, with_empty);

        // A real spec adds the robustness columns (--faults implies
        // the refinement pass on its own).
        let spec = dir.join("slow.toml");
        std::fs::write(
            &spec,
            "version = 1\n[[straggler]]\nprobability = 1.0\nslowdown = 2.0\n",
        )
        .unwrap();
        let out = run_to_string(&[
            "search",
            trace,
            "--dp",
            "1,2",
            "--microbatches",
            "2",
            "--faults",
            spec.to_str().unwrap(),
            "--fault-replicas",
            "3",
            "--fault-seed",
            "11",
        ])
        .unwrap();
        assert!(
            out.contains("expected makespan under injected faults"),
            "{out}"
        );
        assert!(out.contains("expected (ms)"), "{out}");
        assert!(out.contains("robust"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn synth_infer_produces_trace() {
        let dir = std::env::temp_dir().join(format!("lumos-cli-inf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("inf.json");
        let trace = trace.to_str().unwrap();
        let out = run_to_string(&[
            "synth-infer",
            "--model",
            "tiny",
            "--tp",
            "2",
            "--batch",
            "2",
            "--prompt",
            "64",
            "--decode",
            "2",
            "--out",
            trace,
        ])
        .unwrap();
        assert!(out.contains("serve"));
        let out = run_to_string(&["replay", trace]).unwrap();
        assert!(out.contains("replayed:"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predict_rejects_empty_transform_set() {
        let err = run_to_string(&["predict", "nonexistent.json"]).unwrap_err();
        // Fails on the missing sidecar before transform validation;
        // both are user-visible errors.
        assert!(!err.to_string().is_empty());
    }
}
