//! Helpers shared by subcommands: preset parsing, trace/setup I/O,
//! and duration formatting.

use crate::error::CliError;
use lumos_calib::CalibrationArtifact;
use lumos_model::{ModelConfig, TrainingSetup};
use lumos_trace::{from_chrome_json, to_chrome_json, ChromeTraceOptions, ClusterTrace, Dur};
use std::fs;
use std::path::Path;

/// Resolves a model preset name (Table 1 / Table 2 / `tiny`) via the
/// shared [`ModelConfig::from_preset`] resolver.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown names.
pub fn parse_model(name: &str) -> Result<ModelConfig, CliError> {
    ModelConfig::from_preset(name).map_err(|e| CliError::Usage(e.to_string()))
}

/// Resolves a pipeline-schedule name against the schedule registry
/// (`1f1b`, `gpipe`, `zb-h1`, plus anything registered at runtime).
///
/// # Errors
///
/// Returns [`CliError::Usage`] listing the registry's known set.
pub fn parse_schedule(name: &str) -> Result<lumos_model::ScheduleKind, CliError> {
    lumos_model::ScheduleBuilder::from_name(name)
        .build()
        .map_err(|e| CliError::Usage(e.to_string()))
}

/// Reads a Chrome-Trace-Format (Kineto-style) trace file.
///
/// # Errors
///
/// Returns I/O and parse failures, always naming `path`.
pub fn load_trace(path: &str) -> Result<ClusterTrace, CliError> {
    let text = fs::read_to_string(path).map_err(|e| CliError::file(path, e))?;
    from_chrome_json(&text).map_err(|e| CliError::file(path, format!("trace error: {e}")))
}

/// Writes a trace as Chrome-Trace-Format JSON.
///
/// # Errors
///
/// Returns I/O failures, always naming `path`.
pub fn save_trace(trace: &ClusterTrace, path: &str) -> Result<(), CliError> {
    let json = to_chrome_json(trace, &ChromeTraceOptions::default());
    fs::write(path, json).map_err(|e| CliError::file(path, e))
}

/// Reads a [`TrainingSetup`] sidecar JSON (written by `lumos synth`).
///
/// # Errors
///
/// Returns I/O and parse failures, always naming `path`.
pub fn load_setup(path: &str) -> Result<TrainingSetup, CliError> {
    let text = fs::read_to_string(path).map_err(|e| CliError::file(path, e))?;
    serde_json::from_str(&text).map_err(|e| CliError::file(path, format!("setup error: {e}")))
}

/// Writes a [`TrainingSetup`] sidecar JSON.
///
/// # Errors
///
/// Returns I/O failures, always naming `path`.
pub fn save_setup(setup: &TrainingSetup, path: &str) -> Result<(), CliError> {
    let json = serde_json::to_string_pretty(setup)?;
    fs::write(path, json).map_err(|e| CliError::file(path, e))
}

/// Loads and validates a calibration artifact (`lumos calibrate`
/// output); the version and content-digest checks happen inside
/// [`CalibrationArtifact::load`].
///
/// # Errors
///
/// Returns load/validation failures, always naming `path`.
pub fn load_artifact(path: &str) -> Result<CalibrationArtifact, CliError> {
    CalibrationArtifact::load(path).map_err(CliError::from)
}

/// Everything a `--calib` invocation supplies up front: the validated
/// artifact, the fallback cost model its `hardware` preset names, and
/// the fingerprint-checked trace when one was also given.
pub struct CalibratedInput {
    /// The loaded artifact.
    pub artifact: lumos_calib::CalibrationArtifact,
    /// The fallback the calibration assumed for unseen shapes.
    pub fallback: lumos_cost::AnalyticalCostModel,
    /// The trace positional, loaded and verified, when present.
    pub trace: Option<ClusterTrace>,
}

/// The shared `--calib` prologue: rejects options the artifact
/// already carries (`conflicting`), rejects surplus positionals,
/// loads + validates the artifact, resolves its hardware preset, and
/// fingerprint-checks the optional trace positional. `Ok(None)` when
/// `--calib` was not given.
///
/// # Errors
///
/// Returns usage, load/validation, and fingerprint failures.
pub fn calibrated_input(
    args: &crate::args::ArgSet,
    conflicting: &[&str],
) -> Result<Option<CalibratedInput>, CliError> {
    let Some(calib_path) = args.get("calib") else {
        return Ok(None);
    };
    for opt in conflicting {
        if args.get(opt).is_some() {
            return Err(CliError::Usage(format!(
                "--{opt} does not apply with --calib (the artifact already carries it)"
            )));
        }
    }
    if args.positionals().len() > 1 {
        return Err(CliError::Usage(
            "--calib takes at most one trace file (used only for a fingerprint check)".to_string(),
        ));
    }
    let artifact = load_artifact(calib_path)?;
    let fallback =
        lumos_cost::AnalyticalCostModel::from_preset(&artifact.hardware).ok_or_else(|| {
            CliError::Tool(format!(
                "calibration artifact names unknown hardware preset `{}` \
                 (this build knows h100 and a100)",
                artifact.hardware
            ))
        })?;
    let trace = match args.positionals().first() {
        Some(path) => {
            let trace = load_trace(path)?;
            artifact.verify_trace(&trace)?;
            Some(trace)
        }
        None => None,
    };
    Ok(Some(CalibratedInput {
        artifact,
        fallback,
        trace,
    }))
}

/// Derives the conventional sidecar path `<trace>.setup.json`.
pub fn sidecar_path(trace_path: &str) -> String {
    let p = Path::new(trace_path);
    match p.extension().and_then(|e| e.to_str()) {
        Some("json") => {
            let stem = p.with_extension("");
            format!("{}.setup.json", stem.display())
        }
        _ => format!("{trace_path}.setup.json"),
    }
}

/// Formats a duration as milliseconds with two decimals.
pub fn ms(d: Dur) -> String {
    format!("{:.2} ms", d.as_ms_f64())
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_presets_resolve() {
        assert_eq!(parse_model("tiny").unwrap().name, "tiny");
        assert_eq!(parse_model("175B").unwrap().num_layers, 96);
        assert!(parse_model("9000b").is_err());
    }

    #[test]
    fn schedule_names_resolve_via_registry() {
        assert_eq!(
            parse_schedule("zb-h1").unwrap(),
            lumos_model::ScheduleKind::ZbH1
        );
        let err = parse_schedule("dualpipe").unwrap_err().to_string();
        assert!(err.contains("dualpipe") && err.contains("1f1b"), "{err}");
    }

    #[test]
    fn io_errors_name_the_file() {
        for err in [
            load_trace("no-such-trace.json").unwrap_err(),
            load_setup("no-such-setup.json").unwrap_err(),
            load_artifact("no-such-artifact.json").unwrap_err(),
            save_trace(&lumos_trace::ClusterTrace::new("x"), "/no/such/dir/t.json").unwrap_err(),
        ] {
            assert!(err.to_string().contains("no-such") || err.to_string().contains("/no/such"));
        }
        // Parse failures name the file too, not just I/O ones.
        let dir = std::env::temp_dir().join(format!("lumos-cli-common-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{ not json").unwrap();
        let err = load_setup(bad.to_str().unwrap()).unwrap_err();
        assert!(err.to_string().contains("bad.json"), "{err}");
        let err = load_trace(bad.to_str().unwrap()).unwrap_err();
        assert!(err.to_string().contains("bad.json"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sidecar_naming() {
        assert_eq!(sidecar_path("a/b/trace.json"), "a/b/trace.setup.json");
        assert_eq!(sidecar_path("trace.bin"), "trace.bin.setup.json");
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(Dur::from_us(1500)), "1.50 ms");
        assert_eq!(pct(0.0334), "3.3%");
    }
}
