//! Helpers shared by subcommands: preset parsing, trace/setup I/O,
//! and duration formatting.

use crate::error::CliError;
use lumos_model::{ModelConfig, TrainingSetup};
use lumos_trace::{from_chrome_json, to_chrome_json, ChromeTraceOptions, ClusterTrace, Dur};
use std::fs;
use std::path::Path;

/// Resolves a model preset name (Table 1 / Table 2 / `tiny`).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown names.
pub fn parse_model(name: &str) -> Result<ModelConfig, CliError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "tiny" => ModelConfig::tiny(),
        "15b" => ModelConfig::gpt3_15b(),
        "44b" => ModelConfig::gpt3_44b(),
        "117b" => ModelConfig::gpt3_117b(),
        "175b" => ModelConfig::gpt3_175b(),
        "v1" => ModelConfig::gpt3_v1(),
        "v2" => ModelConfig::gpt3_v2(),
        "v3" => ModelConfig::gpt3_v3(),
        "v4" => ModelConfig::gpt3_v4(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown model `{other}` (expected tiny, 15b, 44b, 117b, 175b, or v1–v4)"
            )))
        }
    })
}

/// Reads a Chrome-Trace-Format (Kineto-style) trace file.
///
/// # Errors
///
/// Returns I/O and parse failures.
pub fn load_trace(path: &str) -> Result<ClusterTrace, CliError> {
    let text = fs::read_to_string(path)?;
    Ok(from_chrome_json(&text)?)
}

/// Writes a trace as Chrome-Trace-Format JSON.
///
/// # Errors
///
/// Returns I/O failures.
pub fn save_trace(trace: &ClusterTrace, path: &str) -> Result<(), CliError> {
    let json = to_chrome_json(trace, &ChromeTraceOptions::default());
    fs::write(path, json)?;
    Ok(())
}

/// Reads a [`TrainingSetup`] sidecar JSON (written by `lumos synth`).
///
/// # Errors
///
/// Returns I/O and parse failures.
pub fn load_setup(path: &str) -> Result<TrainingSetup, CliError> {
    let text = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&text)?)
}

/// Writes a [`TrainingSetup`] sidecar JSON.
///
/// # Errors
///
/// Returns I/O failures.
pub fn save_setup(setup: &TrainingSetup, path: &str) -> Result<(), CliError> {
    fs::write(path, serde_json::to_string_pretty(setup)?)?;
    Ok(())
}

/// Derives the conventional sidecar path `<trace>.setup.json`.
pub fn sidecar_path(trace_path: &str) -> String {
    let p = Path::new(trace_path);
    match p.extension().and_then(|e| e.to_str()) {
        Some("json") => {
            let stem = p.with_extension("");
            format!("{}.setup.json", stem.display())
        }
        _ => format!("{trace_path}.setup.json"),
    }
}

/// Formats a duration as milliseconds with two decimals.
pub fn ms(d: Dur) -> String {
    format!("{:.2} ms", d.as_ms_f64())
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_presets_resolve() {
        assert_eq!(parse_model("tiny").unwrap().name, "tiny");
        assert_eq!(parse_model("175B").unwrap().num_layers, 96);
        assert!(parse_model("9000b").is_err());
    }

    #[test]
    fn sidecar_naming() {
        assert_eq!(sidecar_path("a/b/trace.json"), "a/b/trace.setup.json");
        assert_eq!(sidecar_path("trace.bin"), "trace.bin.setup.json");
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(Dur::from_us(1500)), "1.50 ms");
        assert_eq!(pct(0.0334), "3.3%");
    }
}
