//! Binary entry point: dispatch to [`lumos_cli::run`] and map errors
//! to exit codes (2 = usage, 1 = tool failure).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match lumos_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e @ lumos_cli::CliError::Usage(_)) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
