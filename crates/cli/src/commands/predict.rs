//! `lumos predict` — the §3.4 what-if workflow: apply configuration
//! transforms to a profiled trace and estimate the new performance
//! through simulation, without touching hardware.

use crate::args::{ArgSet, ArgSpec};
use crate::common::{load_setup, load_trace, ms, save_trace, sidecar_path};
use crate::error::CliError;
use lumos_core::manipulate::Transform;
use lumos_core::Lumos;
use lumos_cost::AnalyticalCostModel;
use lumos_trace::BreakdownExt;
use std::io::Write;

/// Options of `lumos predict`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &[
        "setup",
        "dp",
        "pp",
        "tp",
        "layers",
        "hidden",
        "ffn",
        "seq",
        "microbatches",
        "out",
    ],
    flags: &["dpro"],
};

/// Usage text.
pub const HELP: &str = "lumos predict <trace.json> [--setup setup.json]\n\
    [--dp N] [--pp N] [--tp N] [--layers N] [--hidden N --ffn N]\n\
    [--seq N] [--microbatches N] [--out predicted.json]\n\
  Manipulates the execution graph for the requested configuration\n\
  changes (§3.4) and predicts the new iteration time by simulation.\n\
  The setup sidecar defaults to <trace>.setup.json.";

/// Builds the transform list from the parsed flags.
///
/// # Errors
///
/// Returns [`CliError::Usage`] when no transform was requested or
/// `--hidden`/`--ffn` are not given together.
pub fn transforms_from(args: &ArgSet) -> Result<Vec<Transform>, CliError> {
    let mut transforms = Vec::new();
    if let Some(tp) = args.get_num_opt::<u32>("tp")? {
        transforms.push(Transform::TensorParallel { tp });
    }
    if let Some(pp) = args.get_num_opt::<u32>("pp")? {
        transforms.push(Transform::PipelineParallel { pp });
    }
    if let Some(dp) = args.get_num_opt::<u32>("dp")? {
        transforms.push(Transform::DataParallel { dp });
    }
    if let Some(layers) = args.get_num_opt::<u32>("layers")? {
        transforms.push(Transform::NumLayers { layers });
    }
    match (
        args.get_num_opt::<u64>("hidden")?,
        args.get_num_opt::<u64>("ffn")?,
    ) {
        (Some(hidden), Some(ffn)) => transforms.push(Transform::HiddenSize { hidden, ffn }),
        (None, None) => {}
        _ => {
            return Err(CliError::Usage(
                "--hidden and --ffn must be given together".to_string(),
            ))
        }
    }
    if let Some(seq_len) = args.get_num_opt::<u64>("seq")? {
        transforms.push(Transform::SeqLen { seq_len });
    }
    if let Some(num) = args.get_num_opt::<u32>("microbatches")? {
        transforms.push(Transform::Microbatches { num });
    }
    if transforms.is_empty() {
        return Err(CliError::Usage(
            "no transform requested (pass --dp/--pp/--tp/--layers/--hidden+--ffn/--seq/--microbatches)"
                .to_string(),
        ));
    }
    Ok(transforms)
}

/// Runs `lumos predict`.
///
/// # Errors
///
/// Returns usage, I/O, parse, transform, and simulation failures.
pub fn run(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.one_positional("trace file")?;
    let setup_path = match args.get("setup") {
        Some(p) => p.to_string(),
        None => sidecar_path(path),
    };
    let setup = load_setup(&setup_path)?;
    let trace = load_trace(path)?;
    let transforms = transforms_from(args)?;

    let toolkit = if args.has("dpro") {
        Lumos::dpro_baseline()
    } else {
        Lumos::new()
    };
    let prediction = toolkit.predict(&trace, &setup, &transforms, AnalyticalCostModel::h100())?;

    writeln!(out, "base:      {}", setup.label())?;
    writeln!(out, "target:    {}", prediction.setup.label())?;
    writeln!(out, "recorded:  {}", ms(trace.makespan()))?;
    writeln!(out, "predicted: {}", ms(prediction.makespan()))?;
    let b = prediction.replayed.trace.breakdown();
    writeln!(out)?;
    writeln!(out, "predicted breakdown:")?;
    for (name, d) in [
        ("exposed compute", b.exposed_compute),
        ("overlapped", b.overlapped),
        ("exposed comm", b.exposed_comm),
        ("other", b.other),
    ] {
        writeln!(out, "  {name:<15} {:>12}", ms(d))?;
    }
    if let Some(out_path) = args.get("out") {
        save_trace(&prediction.trace, out_path)?;
        writeln!(out)?;
        writeln!(out, "predicted trace: {out_path}")?;
    }
    Ok(())
}
