//! `lumos predict` — the §3.4 what-if workflow: apply configuration
//! transforms to a profiled trace and estimate the new performance
//! through simulation, without touching hardware.

use crate::args::{ArgSet, ArgSpec};
use crate::common::{calibrated_input, load_setup, load_trace, ms, save_trace, sidecar_path};
use crate::error::CliError;
use lumos_core::manipulate::Transform;
use lumos_core::Lumos;
use lumos_cost::AnalyticalCostModel;
use lumos_trace::BreakdownExt;
use std::io::Write;

/// Options of `lumos predict`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &[
        "setup",
        "calib",
        "dp",
        "pp",
        "tp",
        "layers",
        "hidden",
        "ffn",
        "seq",
        "microbatches",
        "scale-gemms",
        "scale-comms",
        "scale-host",
        "out",
    ],
    flags: &["dpro", "json"],
};

/// Usage text.
pub const HELP: &str = "lumos predict <trace.json> [--setup setup.json]\n\
    [--calib artifact.json]\n\
    [--dp N] [--pp N] [--tp N] [--layers N] [--hidden N --ffn N]\n\
    [--seq N] [--microbatches N]\n\
    [--scale-gemms F] [--scale-comms F] [--scale-host F]\n\
    [--out predicted.json] [--json]\n\
  Manipulates the execution graph for the requested configuration\n\
  changes (§3.4) and predicts the new iteration time by simulation.\n\
  With --calib (a `lumos calibrate` artifact) the trace file is\n\
  optional and never re-ingested: the artifact supplies the fitted\n\
  cost tables, block library, and base setup, and the prediction is\n\
  byte-identical to the fit-on-the-fly path. If a trace file is also\n\
  given it is only fingerprint-checked against the artifact.\n\
  The --scale-* factors run an operator-level what-if on top (0.5 =\n\
  twice as fast); factors must be finite and non-negative.\n\
  --json emits the prediction as one JSON object on stdout — the\n\
  exact response a `lumos serve` daemon returns for the same request\n\
  against the same artifact (it excludes --scale-*/--out).\n\
  The setup sidecar defaults to <trace>.setup.json.";

/// One operator-level scale request: (report label, factor, apply).
type ScaleOp = (
    &'static str,
    f64,
    fn(&mut lumos_core::ExecutionGraph, f64) -> Result<usize, lumos_core::CoreError>,
);

/// Parses the `--scale-*` what-if factors. Validation of the factor's
/// *value* happens in the fallible `try_scale_*` APIs so that CLI
/// input can never hit the panicking variants.
fn scales_from(args: &ArgSet) -> Result<Vec<ScaleOp>, CliError> {
    use lumos_core::manipulate::whatif;
    let mut scales: Vec<ScaleOp> = Vec::new();
    if let Some(f) = args.get_num_opt::<f64>("scale-gemms")? {
        scales.push(("GEMMs", f, whatif::try_scale_gemms));
    }
    if let Some(f) = args.get_num_opt::<f64>("scale-comms")? {
        scales.push(("collectives", f, whatif::try_scale_comms));
    }
    if let Some(f) = args.get_num_opt::<f64>("scale-host")? {
        scales.push(("host tasks", f, whatif::try_scale_host));
    }
    // Reject every bad factor up front (via the same fallible scaling
    // check the graph edit uses) so a later invalid factor cannot
    // leave a half-reported what-if transcript on stdout.
    for (label, factor, _) in &scales {
        if let Err(e) = lumos_trace::Dur::ZERO.try_scale(*factor) {
            return Err(CliError::Usage(format!("option --scale ({label}): {e}")));
        }
    }
    Ok(scales)
}

/// Builds the transform list from the parsed flags.
///
/// # Errors
///
/// Returns [`CliError::Usage`] when `--hidden`/`--ffn` are not given
/// together.
pub fn transforms_from(args: &ArgSet) -> Result<Vec<Transform>, CliError> {
    let mut transforms = Vec::new();
    if let Some(tp) = args.get_num_opt::<u32>("tp")? {
        transforms.push(Transform::TensorParallel { tp });
    }
    if let Some(pp) = args.get_num_opt::<u32>("pp")? {
        transforms.push(Transform::PipelineParallel { pp });
    }
    if let Some(dp) = args.get_num_opt::<u32>("dp")? {
        transforms.push(Transform::DataParallel { dp });
    }
    if let Some(layers) = args.get_num_opt::<u32>("layers")? {
        transforms.push(Transform::NumLayers { layers });
    }
    match (
        args.get_num_opt::<u64>("hidden")?,
        args.get_num_opt::<u64>("ffn")?,
    ) {
        (Some(hidden), Some(ffn)) => transforms.push(Transform::HiddenSize { hidden, ffn }),
        (None, None) => {}
        _ => {
            return Err(CliError::Usage(
                "--hidden and --ffn must be given together".to_string(),
            ))
        }
    }
    if let Some(seq_len) = args.get_num_opt::<u64>("seq")? {
        transforms.push(Transform::SeqLen { seq_len });
    }
    if let Some(num) = args.get_num_opt::<u32>("microbatches")? {
        transforms.push(Transform::Microbatches { num });
    }
    Ok(transforms)
}

/// Runs `lumos predict`.
///
/// # Errors
///
/// Returns usage, I/O, parse, transform, and simulation failures.
pub fn run(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    let transforms = transforms_from(args)?;
    let scales = scales_from(args)?;
    let json = args.has("json");
    if json {
        // The JSON schema is the serve protocol's predict response;
        // operator-level scaling and trace export have no place in it.
        if !scales.is_empty() {
            return Err(CliError::Usage(
                "--scale-* does not apply with --json (the serve protocol has no \
                 operator-scaling fields)"
                    .to_string(),
            ));
        }
        if args.get("out").is_some() {
            return Err(CliError::Usage(
                "--out does not apply with --json".to_string(),
            ));
        }
    }
    if transforms.is_empty() && scales.is_empty() {
        return Err(CliError::Usage(
            "no transform requested (pass --dp/--pp/--tp/--layers/--hidden+--ffn/--seq/\
             --microbatches, or an operator-level --scale-* factor)"
                .to_string(),
        ));
    }

    let toolkit = if args.has("dpro") {
        Lumos::dpro_baseline()
    } else {
        Lumos::new()
    };
    // Calibrated path: the artifact supplies everything ingestion
    // would have produced — a trace positional is only used for a
    // fingerprint check. Fit-on-the-fly path: parse the trace and fit
    // from scratch.
    let (base_label, recorded, mut prediction) =
        if let Some(ci) = calibrated_input(args, &["setup"])? {
            let lookup = ci.artifact.cost_model(ci.fallback);
            let prediction = toolkit.predict_with_library(
                &ci.artifact.library,
                &ci.artifact.setup,
                &transforms,
                &lookup,
            )?;
            (
                ci.artifact.setup.label(),
                ci.artifact.fingerprint.makespan,
                prediction,
            )
        } else {
            let path = args.one_positional("trace file")?;
            let setup_path = match args.get("setup") {
                Some(p) => p.to_string(),
                None => sidecar_path(path),
            };
            let setup = load_setup(&setup_path)?;
            let trace = load_trace(path)?;
            let prediction =
                toolkit.predict(&trace, &setup, &transforms, AnalyticalCostModel::h100())?;
            (setup.label(), trace.makespan(), prediction)
        };

    if json {
        // One shared schema with the daemon: both sides encode through
        // `response_line` on the same response struct, which is what
        // keeps the two byte-identical.
        let response = lumos_serve::protocol::predict_response(&base_label, recorded, &prediction);
        writeln!(out, "{}", lumos_serve::protocol::response_line(&response))?;
        return Ok(());
    }

    writeln!(out, "base:      {base_label}")?;
    writeln!(out, "target:    {}", prediction.setup.label())?;
    writeln!(out, "recorded:  {}", ms(recorded))?;
    writeln!(out, "predicted: {}", ms(prediction.makespan()))?;
    if !scales.is_empty() {
        // Operator-level what-if on the graph the prediction already
        // built (its replay is re-done below), routed through the
        // fallible scaling APIs so bad factors are usage errors.
        let mut graph = prediction.replayed.graph;
        for (label, factor, apply) in &scales {
            let touched = apply(&mut graph, *factor)
                .map_err(|e| CliError::Usage(format!("--scale option: {e}")))?;
            writeln!(out, "scaled {touched} {label} by {factor}")?;
        }
        prediction.replayed = toolkit.replay_graph(graph, &prediction.trace.label.clone())?;
        writeln!(out, "what-if:   {}", ms(prediction.makespan()))?;
    }
    let b = prediction.replayed.trace.breakdown();
    writeln!(out)?;
    writeln!(out, "predicted breakdown:")?;
    for (name, d) in [
        ("exposed compute", b.exposed_compute),
        ("overlapped", b.overlapped),
        ("exposed comm", b.exposed_comm),
        ("other", b.other),
    ] {
        writeln!(out, "  {name:<15} {:>12}", ms(d))?;
    }
    if let Some(out_path) = args.get("out") {
        // With --scale-* applied, the honest artifact is the scaled
        // replay — the synthesized pre-scale trace would contradict
        // the what-if numbers just printed.
        let trace_to_save = if scales.is_empty() {
            &prediction.trace
        } else {
            &prediction.replayed.trace
        };
        save_trace(trace_to_save, out_path)?;
        writeln!(out)?;
        writeln!(out, "predicted trace: {out_path}")?;
    }
    Ok(())
}
