//! `lumos query` — thin client for a running `lumos serve` daemon:
//! send one JSON request line over TCP, print the one-line response.

use crate::args::{ArgSet, ArgSpec};
use crate::error::CliError;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Options of `lumos query`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &["addr"],
    flags: &[],
};

/// Usage text.
pub const HELP: &str = "lumos query --addr HOST:PORT '<request json>'\n\
  Sends one request line to a running `lumos serve` daemon and prints\n\
  its one-line JSON response. The request is passed through verbatim,\n\
  e.g.:\n\
    lumos query --addr 127.0.0.1:7700 \\\n\
      '{\"kind\":\"predict\",\"artifact\":\"0x…\",\"dp\":2}'\n\
    lumos query --addr 127.0.0.1:7700 '{\"kind\":\"stats\"}'";

/// Runs `lumos query`.
///
/// # Errors
///
/// Returns usage and connection failures; protocol-level errors come
/// back as the daemon's own JSON error response, printed normally.
pub fn run(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    let addr = args.require("addr")?;
    let request = args.one_positional("request (one JSON object)")?;
    if request.contains('\n') {
        return Err(CliError::Usage(
            "the request must be a single line (the protocol is one object per line)".to_string(),
        ));
    }
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| CliError::Tool(format!("connecting to {addr}: {e}")))?;
    writeln!(stream, "{request}")
        .map_err(|e| CliError::Tool(format!("sending request to {addr}: {e}")))?;
    let mut response = String::new();
    BufReader::new(stream)
        .read_line(&mut response)
        .map_err(|e| CliError::Tool(format!("reading response from {addr}: {e}")))?;
    if response.is_empty() {
        return Err(CliError::Tool(format!(
            "daemon at {addr} closed the connection without responding"
        )));
    }
    write!(out, "{response}")?;
    if !response.ends_with('\n') {
        writeln!(out)?;
    }
    Ok(())
}
