//! `lumos synth` — generate a ground-truth trace (the stand-in for
//! profiling a real cluster with Kineto) and its setup sidecar.
//! `lumos synth-infer` — same for an inference (prefill + decode)
//! request batch.

use crate::args::{ArgSet, ArgSpec};
use crate::common::{parse_model, save_setup, save_trace, sidecar_path};
use crate::error::CliError;
use lumos_cluster::{profile, profile_inference};
use lumos_model::{BatchConfig, InferenceSetup, Parallelism, TrainingSetup};
use std::io::Write;

/// Options of `lumos synth`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &[
        "model",
        "tp",
        "pp",
        "dp",
        "seq",
        "microbatch-size",
        "microbatches",
        "schedule",
        "seed",
        "out",
    ],
    flags: &[],
};

/// Usage text for `lumos synth`.
pub const HELP: &str = "lumos synth --model <tiny|15b|44b|117b|175b|v1..v4> --out <trace.json>\n\
    [--tp N] [--pp N] [--dp N] [--seq N] [--microbatch-size N]\n\
    [--microbatches N] [--schedule <name>] [--seed N]\n\
  Profiles one training iteration on the ground-truth cluster and\n\
  writes a Kineto-style JSON trace plus a <trace>.setup.json sidecar.";

/// Runs `lumos synth`.
///
/// # Errors
///
/// Returns usage, configuration, and I/O failures.
pub fn run(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    let model = parse_model(args.require("model")?)?;
    let tp = args.get_num("tp", 1u32)?;
    let pp = args.get_num("pp", 1u32)?;
    let dp = args.get_num("dp", 1u32)?;
    let parallelism = Parallelism::new(tp, pp, dp)?;
    let mut setup = TrainingSetup::new(model, parallelism);
    setup.batch = BatchConfig {
        seq_len: args.get_num("seq", setup.batch.seq_len)?,
        microbatch_size: args.get_num("microbatch-size", setup.batch.microbatch_size)?,
        num_microbatches: args.get_num("microbatches", setup.batch.num_microbatches)?,
    };
    setup.schedule = crate::common::parse_schedule(args.get("schedule").unwrap_or("1f1b"))?;
    let seed = args.get_num("seed", 0u64)?;
    let out_path = args.require("out")?;

    let trace = profile(&setup, seed)?;
    save_trace(&trace, out_path)?;
    let setup_path = sidecar_path(out_path);
    save_setup(&setup, &setup_path)?;
    writeln!(
        out,
        "profiled {} ({} ranks, {} events, makespan {:.2} ms)",
        setup.label(),
        trace.world_size(),
        trace.total_events(),
        trace.makespan().as_ms_f64()
    )?;
    writeln!(out, "trace: {out_path}")?;
    writeln!(out, "setup: {setup_path}")?;
    Ok(())
}

/// Options of `lumos synth-infer`.
pub const INFER_SPEC: ArgSpec = ArgSpec {
    options: &["model", "tp", "batch", "prompt", "decode", "seed", "out"],
    flags: &[],
};

/// Usage text for `lumos synth-infer`.
pub const INFER_HELP: &str = "lumos synth-infer --model <preset> --out <trace.json>\n\
    [--tp N] [--batch N] [--prompt N] [--decode N] [--seed N]\n\
  Profiles one inference request batch (prefill + decode steps).";

/// Runs `lumos synth-infer`.
///
/// # Errors
///
/// Returns usage, configuration, and I/O failures.
pub fn run_infer(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    let mut setup = InferenceSetup::new(
        parse_model(args.require("model")?)?,
        args.get_num("tp", 1u32)?,
    );
    setup.batch_size = args.get_num("batch", setup.batch_size)?;
    setup.prompt_len = args.get_num("prompt", setup.prompt_len)?;
    setup.decode_tokens = args.get_num("decode", setup.decode_tokens)?;
    let seed = args.get_num("seed", 0u64)?;
    let out_path = args.require("out")?;

    let trace = profile_inference(&setup, seed)?;
    save_trace(&trace, out_path)?;
    writeln!(
        out,
        "profiled {} ({} ranks, {} events, makespan {:.2} ms)",
        setup.label(),
        trace.world_size(),
        trace.total_events(),
        trace.makespan().as_ms_f64()
    )?;
    writeln!(out, "trace: {out_path}")?;
    Ok(())
}
