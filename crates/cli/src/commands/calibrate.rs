//! `lumos calibrate` — fit the lookup cost tables and reassembly
//! block library from a profiled trace once, and persist them as a
//! versioned calibration artifact. Every query subcommand (`predict`,
//! `search`, `replay`, `mfu`) accepts the artifact via `--calib` and
//! then answers without re-ingesting the trace.

use crate::args::{ArgSet, ArgSpec};
use crate::common::{load_setup, load_trace, ms, sidecar_path};
use crate::error::CliError;
use lumos_calib::CalibrationArtifact;
use std::io::Write;

/// Options of `lumos calibrate`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &["setup", "out", "gpus-per-node", "hardware"],
    flags: &[],
};

/// Usage text.
pub const HELP: &str = "lumos calibrate <trace.json> --out <artifact.json>\n\
    [--setup setup.json] [--gpus-per-node N] [--hardware h100|a100]\n\
  Fits the full calibration from one profiled trace — the lookup cost\n\
  tables (every kernel observation) and the reassembly block library\n\
  (every annotation range) — and writes a versioned artifact bundling\n\
  them with the base setup, the hardware preset for unseen-shape\n\
  fallback costs, and a trace fingerprint. Pass the artifact to\n\
  predict/search/replay/mfu via --calib to answer what-if queries\n\
  without re-parsing or re-fitting the trace; with the defaults\n\
  (--hardware h100, --gpus-per-node 8) results are byte-identical to\n\
  the fit-on-the-fly paths, while other values deliberately change\n\
  the fallback pricing / collective-topology classification. The\n\
  setup sidecar defaults to <trace>.setup.json.";

/// Runs `lumos calibrate`.
///
/// # Errors
///
/// Returns usage, I/O, parse, and extraction failures.
pub fn run(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.one_positional("trace file")?;
    let out_path = args.require("out")?;
    let setup_path = match args.get("setup") {
        Some(p) => p.to_string(),
        None => sidecar_path(path),
    };
    let hardware = match args.get("hardware").unwrap_or("h100") {
        hw @ ("h100" | "a100") => hw,
        other => {
            return Err(CliError::Usage(format!(
                "unknown hardware preset `{other}` (expected h100 or a100)"
            )))
        }
    };
    let gpus_per_node = args.get_num("gpus-per-node", 8u32)?;
    if gpus_per_node == 0 {
        return Err(CliError::Usage(
            "--gpus-per-node must be at least 1".to_string(),
        ));
    }

    let setup = load_setup(&setup_path)?;
    let trace = load_trace(path)?;
    let artifact = CalibrationArtifact::calibrate(&trace, &setup, hardware, gpus_per_node)?;
    artifact.save(out_path)?;

    writeln!(out, "calibrated {}", setup.label())?;
    writeln!(
        out,
        "trace:      {} events / {} ranks / {}",
        artifact.fingerprint.events,
        artifact.fingerprint.ranks,
        ms(artifact.fingerprint.makespan)
    )?;
    writeln!(
        out,
        "tables:     {} compute shapes, {} collective keys",
        artifact.tables.compute_entries(),
        artifact.tables.collective_entries()
    )?;
    writeln!(out, "library:    {} blocks", artifact.library.len())?;
    writeln!(
        out,
        "hardware:   {} (digest {:#018x})",
        artifact.hardware, artifact.digest
    )?;
    writeln!(out, "artifact:   {out_path}")?;
    Ok(())
}
