//! `lumos faults` — inspect fault-scenario specifications: parse a
//! versioned spec, summarize its scenarios, and replay the exact
//! deterministic per-replica sampling a `lumos search --faults` run
//! draws from it.

use crate::args::{ArgSet, ArgSpec};
use crate::error::CliError;
use lumos_cluster::{FaultSpec, Realization};
use std::io::Write;

/// Options of `lumos faults`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &["seed", "replicas", "world"],
    flags: &[],
};

/// Usage text.
pub const HELP: &str = "lumos faults explain <spec.toml> [--seed N] [--replicas N] [--world N]\n\
  Parses a versioned fault-scenario spec (the file `lumos search\n\
  --faults` takes), lists its scenarios, and replays the\n\
  deterministic per-replica sampling: for each replica it prints\n\
  which scenarios fire and with what draws — the same realizations a\n\
  robust search evaluates, because sampling depends only on\n\
  (seed, replica, scenario), never on thread count or evaluation\n\
  order. --seed matches `lumos search --fault-seed` (default 2025),\n\
  --replicas matches --fault-replicas (default 8 here), and --world\n\
  is the GPU count realizations are sampled against (default 8).\n\
  Malformed specs fail with the offending file, table, and key named\n\
  (exit code 2). See docs/fault-scenarios.md for the format.";

/// One-line human summary of a sampled replica.
fn describe(real: &Realization) -> String {
    if real.is_clean() {
        return "clean".to_string();
    }
    let mut parts = Vec::new();
    for &(rank, mult) in &real.stragglers {
        parts.push(format!("straggler rank {rank} x{mult:.2}"));
    }
    for w in &real.windows {
        let scope = w.scope.map_or("all", |s| s.name());
        parts.push(format!(
            "{scope} window [{:.0}%, {:.0}%) at {:.1}% bw",
            w.start_frac * 100.0,
            w.end_frac * 100.0,
            w.bandwidth_factor * 100.0
        ));
    }
    if let Some(f) = &real.failure {
        let recovery = if f.elastic {
            format!("elastic re-shard, {:.0}s", f.recovery.reshard_cost_s)
        } else {
            format!("checkpoint restart, {:.0}s", f.recovery.restart_latency_s)
        };
        parts.push(format!(
            "failure rank {} (lost frac {:.2}; {recovery})",
            f.rank, f.frac
        ));
    }
    parts.join("; ")
}

/// Runs `lumos faults`.
///
/// # Errors
///
/// Returns usage errors (bad action, malformed spec) and I/O failures.
pub fn run(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    let (action, path) = match args.positionals() {
        [action, path] => (action.as_str(), path.as_str()),
        _ => {
            return Err(CliError::Usage(
                "expected `lumos faults explain <spec.toml>`".to_string(),
            ))
        }
    };
    if action != "explain" {
        return Err(CliError::Usage(format!(
            "unknown action `{action}` (only `explain` exists)"
        )));
    }
    let text = std::fs::read_to_string(path).map_err(|e| CliError::file(path, e))?;
    let spec = FaultSpec::parse(&text)
        .map_err(|e| CliError::Usage(format!("fault spec `{path}`: {e}")))?;

    writeln!(
        out,
        "fault spec `{path}`: {} straggler, {} degradation, {} failure scenario(s)",
        spec.stragglers.len(),
        spec.degradations.len(),
        spec.failures.len()
    )?;
    for (i, s) in spec.stragglers.iter().enumerate() {
        writeln!(
            out,
            "  [[straggler]] #{}: p={:.2}  {} rank(s) at {:.2}x slowdown",
            i + 1,
            s.probability,
            s.ranks,
            s.slowdown
        )?;
    }
    for (i, d) in spec.degradations.iter().enumerate() {
        writeln!(
            out,
            "  [[degradation]] #{}: p={:.2}  {} collectives at {:.1}% bandwidth over \
             [{:.0}%, {:.0}%) of the clean makespan",
            i + 1,
            d.probability,
            d.scope.map_or("all", |s| s.name()),
            d.bandwidth_factor * 100.0,
            d.start_frac * 100.0,
            d.end_frac * 100.0
        )?;
    }
    for (i, f) in spec.failures.iter().enumerate() {
        let how = if f.elastic {
            format!(
                "elastic re-shard to dp-1 ({:.0}s reshard",
                f.recovery.reshard_cost_s
            )
        } else {
            format!(
                "checkpoint restart ({:.0}s restart",
                f.recovery.restart_latency_s
            )
        };
        writeln!(
            out,
            "  [[failure]] #{}: p={:.2}  {how}, {}-iteration checkpoint interval)",
            i + 1,
            f.probability,
            f.recovery.checkpoint_interval_iters
        )?;
    }
    if spec.is_empty() {
        writeln!(
            out,
            "empty spec: every replica is clean; `lumos search --faults` output is \
             byte-identical to plain --refine-sim"
        )?;
        return Ok(());
    }

    let seed = args.get_num("seed", 2025u64)?;
    let replicas = args.get_num("replicas", 8u32)?;
    let world = args.get_num("world", 8u32)?;
    if world == 0 {
        return Err(CliError::Usage("--world must be at least 1".to_string()));
    }
    writeln!(out)?;
    writeln!(
        out,
        "sampling {replicas} replica(s) at seed {seed}, world {world}:"
    )?;
    let mut clean = 0u32;
    for replica in 0..replicas {
        let real = spec.realize(seed, replica, world);
        if real.is_clean() {
            clean += 1;
        }
        writeln!(out, "  replica {replica:>3}: {}", describe(&real))?;
    }
    if replicas > 0 {
        writeln!(
            out,
            "{clean}/{replicas} replica(s) clean ({:.0}%)",
            f64::from(clean) / f64::from(replicas) * 100.0
        )?;
    }
    Ok(())
}
