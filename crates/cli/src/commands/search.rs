//! `lumos search` — parallel what-if configuration search: enumerate a
//! (TP, PP, DP, micro-batch, interleave, GPU-count) space, prune
//! memory-infeasible configs before simulation, evaluate the rest in
//! parallel from one profiled trace, and print a ranked report.

use crate::args::{ArgSet, ArgSpec};
use crate::common::{calibrated_input, load_setup, load_trace, parse_model, sidecar_path};
use crate::error::CliError;
use lumos_cost::{AnalyticalCostModel, GpuSpec};
use lumos_model::{Parallelism, TrainingSetup};
use lumos_search::{search_calibrated, SearchCalibration, SearchOptions, SpaceSpec, SpecFile};
use std::io::Write;

/// Options of `lumos search`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &[
        "setup",
        "calib",
        "space",
        "model",
        "base-tp",
        "base-pp",
        "base-dp",
        "seed",
        "tp",
        "pp",
        "dp",
        "microbatches",
        "interleave",
        "schedules",
        "gpus",
        "max-gpus",
        "objective",
        "top",
        "memory-gib",
        "threads",
        "jitter-replicas",
        "jitter-seed",
        "faults",
        "fault-replicas",
        "fault-seed",
        "budget",
    ],
    flags: &[
        "progress",
        "keep-all",
        "refine-sim",
        "verify",
        "json",
        "adaptive",
    ],
};

/// Usage text.
pub const HELP: &str = "lumos search [<trace.json>] [--setup setup.json] [--space spec.toml]\n\
    [--calib artifact.json]\n\
    [--model NAME --base-tp N --base-pp N --base-dp N [--seed N]]\n\
    [--tp 1,2,4] [--pp 1,2] [--dp 1,2,4,8] [--microbatches 4,8]\n\
    [--interleave 1,2] [--schedules 1f1b,gpipe,zb-h1]\n\
    [--gpus 8,16,32] [--max-gpus N]\n\
    [--objective makespan|throughput|mfu] [--top K]\n\
    [--memory-gib N] [--threads N] [--progress] [--keep-all]\n\
    [--refine-sim [--verify]] [--jitter-replicas N] [--jitter-seed N]\n\
    [--faults spec.toml [--fault-replicas N] [--fault-seed N]]\n\
    [--adaptive [--budget N] [--seed N]] [--json]\n\
  Searches a what-if configuration space from one profiled trace:\n\
  candidates are enumerated lazily over the axis grids\n\
  (comma-separated values, or a TOML space file; flags override the\n\
  file), pruned by the memory-feasibility model before any\n\
  simulation, skipped outright when a memoized analytic lower bound\n\
  proves they cannot reach the top K, evaluated in parallel via graph\n\
  manipulation with a shared trace-fitted cost model, and ranked by\n\
  the objective. Memory stays proportional to --top (pass --keep-all\n\
  to retain every result instead, disabling bound skipping). With\n\
  --model instead of a trace file, the base iteration is profiled on\n\
  the ground-truth cluster first; --progress reports completion to\n\
  stderr. The setup sidecar defaults to <trace>.setup.json.\n\
  With --calib (a `lumos calibrate` artifact) the trace file is\n\
  optional and never re-ingested: the artifact's fitted tables and\n\
  block library are shared across the whole search, byte-identically\n\
  to the fit-on-the-fly path (a trace file given alongside is only\n\
  fingerprint-checked).\n\
  --refine-sim adds a second phase: each finalist is lowered to a\n\
  full multi-rank program and executed through the discrete-event\n\
  engine (overlap, host dispatch, and collective rendezvous\n\
  included), the finals are re-ranked by simulated makespan, and the\n\
  report gains analytic-vs-simulated delta columns. Refinement runs\n\
  the engine in its metrics-only mode (each finalist is lowered and\n\
  prepared once, shared across jitter replicas; no trace events are\n\
  materialized) — output is byte-identical to full-trace execution,\n\
  several times faster. `lumos replay`/`synth` keep full traces.\n\
  --verify statically checks each finalist's lowered program\n\
  (collective consistency, send/recv matching, deadlock freedom —\n\
  see `lumos help lint`) before the engine runs it; a violation\n\
  aborts the search with the named cycle. Clean programs are\n\
  unaffected: results are byte-identical with and without it.\n\
  --jitter-replicas N (implies --refine-sim) additionally executes N\n\
  deterministic variance replicas per finalist and re-ranks by the\n\
  jittered mean, adding mean/p95/stability robustness columns\n\
  (--jitter-seed fixes the variance model's seed).\n\
  --faults <spec.toml> (implies --refine-sim) ranks the finals for\n\
  robustness instead: each finalist is re-executed under\n\
  --fault-replicas (default 32) deterministic fault scenarios sampled\n\
  from the spec (persistent stragglers, transient network-degradation\n\
  windows, rank failures with checkpoint-restart or elastic\n\
  re-sharding recovery), the finals are re-ranked by expected\n\
  makespan under faults, and the report gains expected/p95/\n\
  degradation/robustness columns. An empty spec is byte-identical to\n\
  plain --refine-sim. --fault-seed fixes the sampling seed; see\n\
  `lumos help faults` and docs/fault-scenarios.md.\n\
  --adaptive swaps exhaustive enumeration for the corpus-guided\n\
  engine: deterministic seed probes, a power-scheduled mutation\n\
  frontier (neighbor moves + divisibility-lattice jumps), and — on\n\
  spaces small enough — a screened verification sweep that proves the\n\
  result equals the exhaustive top-K. --budget caps how many\n\
  candidates are fully simulated (default 4096); exhausting it\n\
  reports a typed partial result, never an error. --seed makes the\n\
  run replayable (fixed seed => byte-identical report). The setting\n\
  for spaces far too large to enumerate.\n\
  --json emits the ranked report as one JSON object on stdout — the\n\
  exact response a `lumos serve` daemon returns for the same request\n\
  against the same artifact (only deterministic report fields are\n\
  included; --progress still goes to stderr).";

/// Comma-separated integer list (`--tp 1,2,4`).
fn parse_axis(args: &ArgSet, name: &str) -> Result<Option<Vec<u32>>, CliError> {
    match args.get(name) {
        None => Ok(None),
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim().parse::<u32>().map_err(|_| {
                    CliError::Usage(format!("option --{name}: cannot parse `{s}` in `{raw}`"))
                })
            })
            .collect::<Result<Vec<u32>, CliError>>()
            .map(Some),
    }
}

/// Builds the space: TOML file first (if any), then flag overrides.
fn space_from(args: &ArgSet) -> Result<SpecFile, CliError> {
    let mut file = match args.get("space") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| CliError::file(path, e))?;
            SpecFile::parse(&text)
                .map_err(|e| CliError::Usage(format!("space file `{path}`: {e}")))?
        }
        None => SpecFile {
            space: SpaceSpec::empty(),
            ..SpecFile::default()
        },
    };
    if let Some(v) = parse_axis(args, "tp")? {
        file.space.tp = v;
    }
    if let Some(v) = parse_axis(args, "pp")? {
        file.space.pp = v;
    }
    if let Some(v) = parse_axis(args, "dp")? {
        file.space.dp = v;
    }
    if let Some(v) = parse_axis(args, "microbatches")? {
        file.space.microbatches = v;
    }
    if let Some(v) = parse_axis(args, "interleave")? {
        file.space.interleave = v;
    }
    if let Some(raw) = args.get("schedules") {
        file.space.schedules = raw
            .split(',')
            .map(|s| crate::common::parse_schedule(s.trim()))
            .collect::<Result<Vec<_>, CliError>>()?;
    }
    if let Some(v) = parse_axis(args, "gpus")? {
        file.space.gpus = Some(v);
    }
    if let Some(v) = args.get_num_opt::<u32>("max-gpus")? {
        file.space.max_gpus = v;
    }
    Ok(file)
}

/// The shared calibration the search runs against: cloned out of a
/// `--calib` artifact (no trace ingestion), or fitted on the fly from
/// the base trace/`--model` profile.
fn calibration_from(
    args: &ArgSet,
    out: &mut dyn Write,
    gpus_per_node: u32,
) -> Result<SearchCalibration<AnalyticalCostModel>, CliError> {
    // `--seed` is the adaptive RNG seed too, so it stays legal
    // alongside `--calib` when `--adaptive` is set.
    let reject: &[&str] = if args.has("adaptive") {
        &["model", "setup", "base-tp", "base-pp", "base-dp"]
    } else {
        &["model", "setup", "base-tp", "base-pp", "base-dp", "seed"]
    };
    if let Some(ci) = calibrated_input(args, reject)? {
        Ok(SearchCalibration::from_artifact(&ci.artifact, ci.fallback))
    } else {
        let (trace, setup) = base_from(args, out)?;
        Ok(SearchCalibration::fit(
            &trace,
            &setup,
            AnalyticalCostModel::h100(),
            gpus_per_node,
        )?)
    }
}

/// The base (trace, setup) pair: loaded from disk, or synthesized via
/// `--model`.
fn base_from(
    args: &ArgSet,
    out: &mut dyn Write,
) -> Result<(lumos_trace::ClusterTrace, TrainingSetup), CliError> {
    if let Some(model) = args.get("model") {
        if !args.positionals().is_empty() {
            return Err(CliError::Usage(
                "give either a trace file or --model, not both".to_string(),
            ));
        }
        let model = parse_model(model)?;
        let par = Parallelism::new(
            args.get_num("base-tp", 1)?,
            args.get_num("base-pp", 1)?,
            args.get_num("base-dp", 1)?,
        )
        .map_err(|e| CliError::Usage(e.to_string()))?;
        let setup = TrainingSetup::new(model, par);
        let seed = args.get_num("seed", 2025u64)?;
        writeln!(out, "profiling base {} (seed {seed}) ...", setup.label())?;
        let trace = lumos_search::profile_base(&setup, seed)?;
        Ok((trace, setup))
    } else {
        for flag in ["base-tp", "base-pp", "base-dp"] {
            if args.get(flag).is_some() {
                return Err(CliError::Usage(format!(
                    "--{flag} only applies with --model (trace-file mode takes the \
                     base from the setup sidecar)"
                )));
            }
        }
        // `--seed` doubles as the adaptive RNG seed; without --model
        // and without --adaptive it has nothing to seed.
        if args.get("seed").is_some() && !args.has("adaptive") {
            return Err(CliError::Usage(
                "--seed only applies with --model (base-profile seed) or \
                 --adaptive (search RNG seed)"
                    .to_string(),
            ));
        }
        let path = args.one_positional("trace file (or use --model)")?;
        let setup_path = match args.get("setup") {
            Some(p) => p.to_string(),
            None => sidecar_path(path),
        };
        Ok((load_trace(path)?, load_setup(&setup_path)?))
    }
}

/// Runs `lumos search`.
///
/// # Errors
///
/// Returns usage, I/O, parse, and search failures.
pub fn run(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    let file = space_from(args)?;
    let mut opts = SearchOptions::default();
    if let Some(objective) = args.get("objective") {
        opts.objective = objective.parse().map_err(|e: String| CliError::Usage(e))?;
    } else if let Some(objective) = file.objective {
        opts.objective = objective;
    }
    let memory_gib = match args.get_num_opt::<u32>("memory-gib")? {
        Some(v) => Some(v),
        None => file.gpu_memory_gib,
    };
    if let Some(gib) = memory_gib {
        if gib == 0 {
            return Err(CliError::Usage(
                "gpu memory capacity must be positive (--memory-gib / gpu-memory-gib)".to_string(),
            ));
        }
        opts.gpu = GpuSpec {
            memory_gib: gib,
            ..opts.gpu
        };
    }
    opts.threads = args.get_num_opt::<usize>("threads")?;
    let top = match args.get_num_opt::<usize>("top")? {
        Some(k) => k,
        None => file.top_k.unwrap_or(10),
    };
    if top == 0 {
        return Err(CliError::Usage(
            "--top must be at least 1 (a zero-length report retains nothing)".to_string(),
        ));
    }
    // Streaming retention: keep only the top K in memory (and arm
    // lower-bound skipping) unless the user wants the full ranking.
    if !args.has("keep-all") {
        opts.top_k = Some(top);
    }
    // Phase two: engine-simulated refinement of the finals.
    opts.refine_sim = args.has("refine-sim");
    if let Some(replicas) = args.get_num_opt::<u32>("jitter-replicas")? {
        opts.jitter_replicas = replicas;
        if replicas > 0 {
            opts.refine_sim = true; // robustness requires the refinement pass
        }
    }
    if let Some(seed) = args.get_num_opt::<u64>("jitter-seed")? {
        if !opts.refine_sim {
            return Err(CliError::Usage(
                "--jitter-seed only applies with --refine-sim / --jitter-replicas".to_string(),
            ));
        }
        opts.jitter_seed = seed;
    }
    if let Some(path) = args.get("faults") {
        let text = std::fs::read_to_string(path).map_err(|e| CliError::file(path, e))?;
        let spec = lumos_cluster::FaultSpec::parse(&text)
            .map_err(|e| CliError::Usage(format!("fault spec `{path}`: {e}")))?;
        opts.fault_spec = Some(spec);
        opts.refine_sim = true; // robustness requires the refinement pass
    }
    if let Some(replicas) = args.get_num_opt::<u32>("fault-replicas")? {
        if opts.fault_spec.is_none() {
            return Err(CliError::Usage(
                "--fault-replicas only applies with --faults".to_string(),
            ));
        }
        opts.fault_replicas = replicas;
    }
    if let Some(seed) = args.get_num_opt::<u64>("fault-seed")? {
        if opts.fault_spec.is_none() {
            return Err(CliError::Usage(
                "--fault-seed only applies with --faults".to_string(),
            ));
        }
        opts.fault_seed = seed;
    }
    if args.has("verify") {
        if !opts.refine_sim {
            return Err(CliError::Usage(
                "--verify only applies with --refine-sim / --jitter-replicas".to_string(),
            ));
        }
        opts.verify = true;
    }
    opts.adaptive = args.has("adaptive");
    if let Some(budget) = args.get_num_opt::<usize>("budget")? {
        if !opts.adaptive {
            return Err(CliError::Usage(
                "--budget only applies with --adaptive".to_string(),
            ));
        }
        opts.budget = Some(budget);
    }
    if let Some(seed) = args.get_num_opt::<u64>("seed")? {
        opts.seed = seed;
    }
    if args.has("progress") {
        opts.progress = Some(lumos_search::ProgressSink::new(|p| {
            eprintln!(
                "  ... {}/{} grid points ({} evaluated, {} memory-pruned, {} bound-skipped)",
                p.claimed, p.grid_points, p.evaluated, p.memory_pruned, p.bound_skipped
            );
        }));
    }

    let calib = calibration_from(args, out, opts.gpus_per_node)?;
    let report = search_calibrated(&calib, &file.space, &opts)?;
    if args.has("json") {
        // One shared schema with the daemon: both sides encode through
        // `response_line` on the same response struct, which is what
        // keeps the two byte-identical.
        let response = lumos_serve::protocol::search_response(&report, top);
        writeln!(out, "{}", lumos_serve::protocol::response_line(&response))?;
    } else {
        write!(out, "{}", report.format_top(top))?;
    }
    Ok(())
}
