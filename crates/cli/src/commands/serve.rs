//! `lumos serve` — run the persistent what-if estimation daemon: load
//! every calibration artifact in a registry directory and answer
//! `predict` / `search` / `refine` requests over line-delimited JSON
//! on TCP.

use crate::args::{ArgSet, ArgSpec};
use crate::error::CliError;
use lumos_serve::{ServeConfig, Server};
use std::io::Write;

/// Options of `lumos serve`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &["registry", "addr", "workers", "queue", "search-threads"],
    flags: &[],
};

/// Usage text.
pub const HELP: &str = "lumos serve --registry DIR [--addr HOST:PORT]\n\
    [--workers N] [--queue N] [--search-threads N]\n\
  Starts the estimation daemon: every `*.json` calibration artifact in\n\
  the registry directory is loaded at startup (keyed by its content\n\
  digest), then the daemon answers one JSON request object per line\n\
  with one JSON response object per line, in request order per\n\
  connection. Compute requests (`predict`, `search`, `refine`) run on\n\
  a bounded worker pool (--workers, default 2) behind a bounded queue\n\
  (--queue, default 32); a full queue sheds load with a typed\n\
  `overloaded` error, and a request's `deadline_ms` covers queue wait\n\
  plus service, cancelling running searches cooperatively. Admin\n\
  requests are answered inline: `stats` (uptime, queue depth, memo\n\
  hit rates, latency quantiles), `reload` (atomically rescans the\n\
  registry without disturbing in-flight work), `shutdown`.\n\
  --addr defaults to 127.0.0.1:7700; port 0 picks a free port (the\n\
  bound address is printed as `listening on HOST:PORT`).\n\
  Responses are byte-identical to `lumos predict --json` /\n\
  `lumos search --json` against the same artifact.";

/// Runs `lumos serve` (blocks until a `shutdown` request).
///
/// # Errors
///
/// Returns usage errors, bind failures, and registry-scan failures.
pub fn run(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    if !args.positionals().is_empty() {
        return Err(CliError::Usage(
            "serve takes no positional arguments (artifacts come from --registry)".to_string(),
        ));
    }
    let mut config = ServeConfig::new(
        args.get("addr").unwrap_or("127.0.0.1:7700"),
        args.require("registry")?,
    );
    config.workers = args.get_num("workers", config.workers)?;
    config.queue_capacity = args.get_num("queue", config.queue_capacity)?;
    config.search_threads = args.get_num_opt::<usize>("search-threads")?;
    if config.workers == 0 {
        return Err(CliError::Usage("--workers must be at least 1".to_string()));
    }
    if config.queue_capacity == 0 {
        return Err(CliError::Usage("--queue must be at least 1".to_string()));
    }

    let (server, outcome) = Server::bind(&config).map_err(|e| CliError::Tool(e.to_string()))?;
    for digest in &outcome.loaded {
        writeln!(out, "loaded {digest}")?;
    }
    for (path, detail) in &outcome.rejected {
        writeln!(out, "rejected {path}: {detail}")?;
    }
    if outcome.loaded.is_empty() {
        writeln!(
            out,
            "warning: no artifacts loaded from {} (serve answers admin requests only \
             until `reload` finds some)",
            config.registry_dir.display()
        )?;
    }
    let local = server
        .local_addr()
        .map_err(|e| CliError::Tool(e.to_string()))?;
    writeln!(out, "listening on {local}")?;
    // The daemon blocks from here on; make sure the address line is
    // visible to whoever is waiting to connect (CI greps for it).
    out.flush()?;
    server.run().map_err(|e| CliError::Tool(e.to_string()))
}
