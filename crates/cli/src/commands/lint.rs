//! `lumos lint` — static verification of lowered multi-rank programs:
//! lower every candidate of a configuration space (or one setup, or a
//! serialized job) and prove it deadlock-free *without* running the
//! engine, via [`lumos_cluster::verify`].

use crate::args::{ArgSet, ArgSpec};
use crate::common::parse_model;
use crate::error::CliError;
use lumos_cluster::{lower, verify, PortableJob, VerifyReport};
use lumos_model::{ModelConfig, Parallelism, TrainingSetup};
use lumos_search::SpecFile;
use std::io::Write;

/// Options of `lumos lint`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &[
        "model",
        "tp",
        "pp",
        "dp",
        "microbatches",
        "schedules",
        "max-gpus",
        "threads",
        "job",
    ],
    flags: &[],
};

/// Usage text.
pub const HELP: &str = "lumos lint [<space.toml>] [--model NAME] [--max-gpus N] [--threads N]\n\
    lumos lint --model NAME --tp N --pp N --dp N [--microbatches N]\n\
    lumos lint --job job.json\n\
  Statically verifies lowered multi-rank programs without running the\n\
  engine: referential integrity, collective consistency (every member\n\
  of a communicator issues every (group, seq) instance with matching\n\
  kind and payload), point-to-point send/recv matching, and deadlock\n\
  freedom via a cross-rank wait-for graph. Violations are reported as\n\
  named cycles (`rank 0 stream 13 waits on ... -> cycle repeats`) and\n\
  exit nonzero; see docs/verify-checks.md for the full catalogue.\n\
  With a space file, every candidate in the grid (tp x pp x dp x\n\
  microbatches x schedules x arch; the interleave axis is ignored —\n\
  chunk lowering replays as 1F1B) that passes shape validation and\n\
  the GPU budget is\n\
  lowered and verified in parallel (--threads caps workers); the\n\
  architecture defaults to --model (default 15b). With --tp/--pp/--dp\n\
  a single setup is checked. With --job, a JSON-serialized portable\n\
  job (programs + communicator groups) is verified as-is — the format\n\
  `lumos_cluster::PortableJob` uses, handy for regression fixtures.";

/// One candidate's display label: setup label plus the micro-batch
/// count (which the setup label omits) and, when it departs from the
/// 1F1B default, the schedule name.
fn label(setup: &TrainingSetup) -> String {
    let mut s = format!("{} mb{}", setup.label(), setup.batch.num_microbatches);
    if setup.schedule != lumos_model::ScheduleKind::OneFOneB {
        s.push_str(&format!(" s={}", setup.schedule.name()));
    }
    s
}

/// Enumerates the space file's grid into concrete setups, skipping
/// shape-invalid and over-budget points (same lattice the search
/// rejects, minus trace-reachability — lint has no base trace, so
/// `tp = 1 <-> tp > 1` moves are fine here).
fn space_candidates(args: &ArgSet, file: &SpecFile) -> Result<Vec<TrainingSetup>, CliError> {
    let space = file.space.normalized();
    let base = parse_model(args.get("model").unwrap_or("15b"))?;
    let max_gpus = args
        .get_num_opt::<u32>("max-gpus")?
        .unwrap_or(space.max_gpus);
    let axis = |v: &[u32]| if v.is_empty() { vec![1] } else { v.to_vec() };
    let models: Vec<ModelConfig> = if space.arch.is_empty() {
        vec![base]
    } else {
        space
            .arch
            .iter()
            .map(|a| {
                let mut m = base.clone();
                m.name = a.label.clone();
                m.num_layers = a.layers;
                m.hidden_size = a.hidden;
                m.ffn_size = a.ffn;
                m
            })
            .collect()
    };
    // The schedule axis: CLI flag overrides the file; neither means
    // the 1F1B default.
    let schedules: Vec<lumos_model::ScheduleKind> = match args.get("schedules") {
        Some(raw) => raw
            .split(',')
            .map(|s| crate::common::parse_schedule(s.trim()))
            .collect::<Result<Vec<_>, CliError>>()?,
        None if space.schedules.is_empty() => vec![lumos_model::ScheduleKind::OneFOneB],
        None => space.schedules.clone(),
    };
    let mut out = Vec::new();
    for model in &models {
        for &tp in &axis(&space.tp) {
            for &pp in &axis(&space.pp) {
                for &dp in &axis(&space.dp) {
                    let world = u64::from(tp) * u64::from(pp) * u64::from(dp);
                    if world > u64::from(max_gpus) {
                        continue;
                    }
                    if let Some(gpus) = &space.gpus {
                        if !gpus.contains(&(world as u32)) {
                            continue;
                        }
                    }
                    let Ok(par) = Parallelism::new(tp, pp, dp) else {
                        continue;
                    };
                    let microbatches = if space.microbatches.is_empty() {
                        vec![2 * pp]
                    } else {
                        space.microbatches.clone()
                    };
                    for &mb in &microbatches {
                        for &schedule in &schedules {
                            let mut setup = TrainingSetup::new(model.clone(), par);
                            setup.batch.num_microbatches = mb;
                            setup.schedule = schedule;
                            if setup.validate().is_ok() {
                                out.push(setup);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// One candidate's labeled verification outcome.
type Outcome = (String, Result<VerifyReport, String>);

/// Lowers and verifies every setup in parallel. Returns per-candidate
/// outcomes in enumeration order.
fn verify_all(setups: &[TrainingSetup], threads: Option<usize>) -> Vec<Outcome> {
    let workers = lumos_search::parallel::effective_threads(threads, setups.len());
    let per_worker = lumos_search::parallel::run_claimed(workers, setups.len(), |_t, claims| {
        let mut out: Vec<(usize, Outcome)> = Vec::new();
        while let Some(i) = claims.next() {
            let setup = &setups[i];
            let outcome = match lower(setup) {
                Ok(job) => verify(&job).map_err(|e| e.to_string()),
                Err(e) => Err(format!("lowering failed: {e}")),
            };
            out.push((i, (label(setup), outcome)));
        }
        out
    });
    let mut results: Vec<(usize, Outcome)> = per_worker.into_iter().flatten().collect();
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, outcome)| outcome).collect()
}

/// Prints the aggregate summary or collects failures into one
/// [`CliError::Tool`] (stderr, nonzero exit).
fn summarize(outcomes: Vec<Outcome>, out: &mut dyn Write) -> Result<(), CliError> {
    let mut total = VerifyReport::default();
    let mut failures = Vec::new();
    let checked = outcomes.len();
    for (label, outcome) in outcomes {
        match outcome {
            Ok(report) => {
                total.programs += report.programs;
                total.ops += report.ops;
                total.collectives += report.collectives;
                total.sendrecv += report.sendrecv;
            }
            Err(detail) => failures.push(format!("{label}: {detail}")),
        }
    }
    if failures.is_empty() {
        writeln!(
            out,
            "linted {checked} candidate(s): {} programs, {} ops, \
             {} collective(s), {} send/recv — all deadlock-free",
            total.programs, total.ops, total.collectives, total.sendrecv
        )?;
        Ok(())
    } else {
        Err(CliError::Tool(format!(
            "{} of {checked} candidate(s) failed verification:\n  {}",
            failures.len(),
            failures.join("\n  ")
        )))
    }
}

/// Runs `lumos lint`.
///
/// # Errors
///
/// Returns usage and I/O failures, and [`CliError::Tool`] when any
/// candidate fails verification.
pub fn run(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    // Mode 3: a serialized portable job, verified as-is.
    if let Some(path) = args.get("job") {
        if !args.positionals().is_empty() {
            return Err(CliError::Usage(
                "--job takes no space file (the job is already lowered)".to_string(),
            ));
        }
        let text = std::fs::read_to_string(path).map_err(|e| CliError::file(path, e))?;
        let portable: PortableJob = serde_json::from_str(&text)
            .map_err(|e| CliError::file(path, format!("job error: {e}")))?;
        let job = portable.into_job();
        return match verify(&job) {
            Ok(report) => {
                writeln!(out, "{path}: {report} — deadlock-free")?;
                Ok(())
            }
            Err(e) => Err(CliError::Tool(format!("{path}: {e}"))),
        };
    }

    // Mode 1: a space file — enumerate, lower, and verify the grid.
    if let Some(path) = args.positionals().first() {
        let text = std::fs::read_to_string(path).map_err(|e| CliError::file(path, e))?;
        let file = SpecFile::parse(&text)
            .map_err(|e| CliError::Usage(format!("space file `{path}`: {e}")))?;
        let setups = space_candidates(args, &file)?;
        if setups.is_empty() {
            return Err(CliError::Tool(format!(
                "space file `{path}` admits no valid candidates to lint"
            )));
        }
        let outcomes = verify_all(&setups, args.get_num_opt::<usize>("threads")?);
        return summarize(outcomes, out);
    }

    // Mode 2: one explicit setup.
    if args.get("tp").is_none() && args.get("pp").is_none() && args.get("dp").is_none() {
        return Err(CliError::Usage(
            "give a space file, --job <job.json>, or an explicit setup \
             (--model --tp --pp --dp)"
                .to_string(),
        ));
    }
    let model = parse_model(args.get("model").unwrap_or("15b"))?;
    let par = Parallelism::new(
        args.get_num("tp", 1)?,
        args.get_num("pp", 1)?,
        args.get_num("dp", 1)?,
    )
    .map_err(|e| CliError::Usage(e.to_string()))?;
    let mut setup = TrainingSetup::new(model, par);
    if let Some(mb) = args.get_num_opt::<u32>("microbatches")? {
        setup.batch.num_microbatches = mb;
    }
    if let Some(name) = args.get("schedules") {
        setup.schedule = crate::common::parse_schedule(name.trim())?;
    }
    setup
        .validate()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let candidate = label(&setup);
    let job = lower(&setup).map_err(|e| CliError::Tool(format!("{candidate}: {e}")))?;
    match verify(&job) {
        Ok(report) => {
            writeln!(out, "{candidate}: {report} — deadlock-free")?;
            Ok(())
        }
        Err(e) => Err(CliError::Tool(format!("{candidate}: {e}"))),
    }
}
