//! `lumos info` — summarize a trace: ranks, event counts, makespan,
//! execution breakdown, and the heaviest kernels.

use crate::args::{ArgSet, ArgSpec};
use crate::common::{load_trace, ms, pct};
use crate::error::CliError;
use lumos_bench::table::TextTable;
use lumos_trace::{queue_delays, stream_occupancy, BreakdownExt, TraceStats};
use std::io::Write;

/// Options of `lumos info`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &["top"],
    flags: &[],
};

/// Usage text.
pub const HELP: &str = "lumos info <trace.json> [--top N]\n\
  Prints trace dimensions, the execution-time breakdown (§4.2.2), and\n\
  the N heaviest kernels (default 5).";

/// Runs `lumos info`.
///
/// # Errors
///
/// Returns usage, I/O, and parse failures.
pub fn run(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.one_positional("trace file")?;
    let top = args.get_num("top", 5usize)?;
    let trace = load_trace(path)?;
    trace.validate()?;

    writeln!(out, "label:     {}", trace.label)?;
    writeln!(out, "ranks:     {}", trace.world_size())?;
    writeln!(out, "events:    {}", trace.total_events())?;
    writeln!(out, "makespan:  {}", ms(trace.makespan()))?;

    let b = trace.breakdown();
    let total = b.total().as_secs_f64().max(f64::MIN_POSITIVE);
    let share = |d: lumos_trace::Dur| pct(d.as_secs_f64() / total);
    writeln!(out)?;
    writeln!(out, "breakdown (mean across ranks):")?;
    writeln!(
        out,
        "  exposed compute  {:>12}  {:>6}",
        ms(b.exposed_compute),
        share(b.exposed_compute)
    )?;
    writeln!(
        out,
        "  overlapped       {:>12}  {:>6}",
        ms(b.overlapped),
        share(b.overlapped)
    )?;
    writeln!(
        out,
        "  exposed comm     {:>12}  {:>6}",
        ms(b.exposed_comm),
        share(b.exposed_comm)
    )?;
    writeln!(
        out,
        "  other            {:>12}  {:>6}",
        ms(b.other),
        share(b.other)
    )?;

    if let Some(rank0) = trace.ranks().first() {
        let stats = TraceStats::from_trace(rank0);
        let mut table = TextTable::new(&["kernel", "count", "total", "mean"]);
        for (name, k) in stats.top_kernels(top) {
            table.row(vec![
                name.to_string(),
                k.count.to_string(),
                ms(k.total),
                ms(k.mean()),
            ]);
        }
        writeln!(out)?;
        writeln!(out, "top kernels (rank 0):")?;
        writeln!(out, "{}", table.to_text())?;

        if let Some(q) = queue_delays(rank0) {
            writeln!(
                out,
                "launch queue (rank 0): mean {} / p50 {} / p99 {} over {} kernels{}",
                ms(q.mean),
                ms(q.p50),
                ms(q.p99),
                q.count,
                if q.is_launch_bound(lumos_trace::Dur::from_us(10)) {
                    " — launch-bound"
                } else {
                    ""
                }
            )?;
        }
        let occupancy = stream_occupancy(rank0);
        if !occupancy.is_empty() {
            writeln!(out, "stream occupancy (rank 0):")?;
            for s in occupancy {
                writeln!(
                    out,
                    "  stream {:>3}: {:>12} busy ({:>5}), {} kernels",
                    s.stream,
                    ms(s.busy),
                    pct(s.fraction),
                    s.kernels
                )?;
            }
        }
    }
    Ok(())
}
