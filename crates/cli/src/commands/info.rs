//! `lumos info` — summarize a trace: ranks, event counts, makespan,
//! execution breakdown, and the heaviest kernels.

use crate::args::{ArgSet, ArgSpec};
use crate::common::{load_artifact, load_trace, ms, pct};
use crate::error::CliError;
use lumos_bench::table::TextTable;
use lumos_trace::{queue_delays, stream_occupancy, BreakdownExt, TraceStats};
use std::io::Write;

/// Options of `lumos info`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &["top"],
    flags: &[],
};

/// Usage text.
pub const HELP: &str = "lumos info <trace.json | artifact.json> [--top N]\n\
  For a trace: prints its dimensions, the execution-time breakdown\n\
  (§4.2.2), and the N heaviest kernels (default 5).\n\
  For a `lumos calibrate` artifact (detected by its content): prints\n\
  its digest (the `lumos serve` registry key), format version,\n\
  hardware preset, base setup, source-trace fingerprint, and fitted\n\
  table sizes.";

/// Whether `path` looks like a calibration artifact rather than a
/// Chrome trace: a JSON object carrying the artifact's identity
/// fields. The full digest/version validation happens on load.
fn sniff_artifact(path: &str) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else {
        return false;
    };
    let Ok(value) = serde_json::from_str::<serde_json::Value>(&text) else {
        return false;
    };
    match value {
        serde_json::Value::Object(map) => ["version", "digest", "fingerprint"]
            .iter()
            .all(|k| map.contains_key(k)),
        _ => false,
    }
}

/// Prints the artifact summary.
fn artifact_info(path: &str, out: &mut dyn Write) -> Result<(), CliError> {
    let artifact = load_artifact(path)?;
    writeln!(out, "calibration artifact")?;
    writeln!(
        out,
        "digest:    {}",
        lumos_calib::digest_hex(artifact.digest)
    )?;
    writeln!(out, "version:   {}", artifact.version)?;
    writeln!(out, "hardware:  {}", artifact.hardware)?;
    writeln!(out, "base:      {}", artifact.setup.label())?;
    writeln!(out, "schedule:  {}", artifact.setup.schedule.name())?;
    writeln!(out)?;
    writeln!(out, "source-trace fingerprint:")?;
    let fp = &artifact.fingerprint;
    writeln!(out, "  events:        {}", fp.events)?;
    writeln!(out, "  ranks:         {}", fp.ranks)?;
    writeln!(out, "  makespan:      {}", ms(fp.makespan))?;
    writeln!(out, "  content hash:  {:#018x}", fp.content_hash)?;
    writeln!(out)?;
    writeln!(
        out,
        "fitted tables: {} compute shapes, {} collective shapes, {} blocks",
        artifact.tables.compute_entries(),
        artifact.tables.collective_entries(),
        artifact.library.len()
    )?;
    Ok(())
}

/// Runs `lumos info`.
///
/// # Errors
///
/// Returns usage, I/O, and parse failures.
pub fn run(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.one_positional("trace or artifact file")?;
    let top = args.get_num("top", 5usize)?;
    if sniff_artifact(path) {
        return artifact_info(path, out);
    }
    let trace = load_trace(path)?;
    trace.validate()?;

    writeln!(out, "label:     {}", trace.label)?;
    writeln!(out, "ranks:     {}", trace.world_size())?;
    writeln!(out, "events:    {}", trace.total_events())?;
    writeln!(out, "makespan:  {}", ms(trace.makespan()))?;
    // The sidecar (when present) tells us which pipeline schedule the
    // trace was recorded under.
    let sidecar = crate::common::sidecar_path(path);
    if let Ok(setup) = crate::common::load_setup(&sidecar) {
        writeln!(out, "schedule:  {}", setup.schedule.name())?;
    }

    let b = trace.breakdown();
    let total = b.total().as_secs_f64().max(f64::MIN_POSITIVE);
    let share = |d: lumos_trace::Dur| pct(d.as_secs_f64() / total);
    writeln!(out)?;
    writeln!(out, "breakdown (mean across ranks):")?;
    writeln!(
        out,
        "  exposed compute  {:>12}  {:>6}",
        ms(b.exposed_compute),
        share(b.exposed_compute)
    )?;
    writeln!(
        out,
        "  overlapped       {:>12}  {:>6}",
        ms(b.overlapped),
        share(b.overlapped)
    )?;
    writeln!(
        out,
        "  exposed comm     {:>12}  {:>6}",
        ms(b.exposed_comm),
        share(b.exposed_comm)
    )?;
    writeln!(
        out,
        "  other            {:>12}  {:>6}",
        ms(b.other),
        share(b.other)
    )?;

    if let Some(rank0) = trace.ranks().first() {
        let stats = TraceStats::from_trace(rank0);
        let mut table = TextTable::new(&["kernel", "count", "total", "mean"]);
        for (name, k) in stats.top_kernels(top) {
            table.row(vec![
                name.to_string(),
                k.count.to_string(),
                ms(k.total),
                ms(k.mean()),
            ]);
        }
        writeln!(out)?;
        writeln!(out, "top kernels (rank 0):")?;
        writeln!(out, "{}", table.to_text())?;

        if let Some(q) = queue_delays(rank0) {
            writeln!(
                out,
                "launch queue (rank 0): mean {} / p50 {} / p99 {} over {} kernels{}",
                ms(q.mean),
                ms(q.p50),
                ms(q.p99),
                q.count,
                if q.is_launch_bound(lumos_trace::Dur::from_us(10)) {
                    " — launch-bound"
                } else {
                    ""
                }
            )?;
        }
        let occupancy = stream_occupancy(rank0);
        if !occupancy.is_empty() {
            writeln!(out, "stream occupancy (rank 0):")?;
            for s in occupancy {
                writeln!(
                    out,
                    "  stream {:>3}: {:>12} busy ({:>5}), {} kernels",
                    s.stream,
                    ms(s.busy),
                    pct(s.fraction),
                    s.kernels
                )?;
            }
        }
    }
    Ok(())
}
