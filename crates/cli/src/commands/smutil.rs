//! `lumos sm-util` — the §4.2.3 SM-utilization timeline: fraction of
//! each bin during which at least one stream was executing.

use crate::args::{ArgSet, ArgSpec};
use crate::common::load_trace;
use crate::error::CliError;
use lumos_trace::{sm_utilization, Dur};
use std::io::Write;

/// Options of `lumos sm-util`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &["rank", "bin-ms"],
    flags: &["csv"],
};

/// Usage text.
pub const HELP: &str = "lumos sm-util <trace.json> [--rank N] [--bin-ms N] [--csv]\n\
  Prints the per-bin SM utilization of one rank (default rank 0,\n\
  1 ms bins). --csv emits `bin,utilization` rows for plotting.";

/// Runs `lumos sm-util`.
///
/// # Errors
///
/// Returns usage, I/O, and parse failures.
pub fn run(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.one_positional("trace file")?;
    let rank = args.get_num("rank", 0usize)?;
    let bin_ms = args.get_num("bin-ms", 1u64)?;
    if bin_ms == 0 {
        return Err(CliError::Usage("--bin-ms must be positive".to_string()));
    }
    let trace = load_trace(path)?;
    let rank_trace = trace
        .ranks()
        .get(rank)
        .ok_or_else(|| CliError::Usage(format!("rank {rank} out of range")))?;
    let util = sm_utilization(rank_trace, Dur::from_us(bin_ms * 1000));

    if args.has("csv") {
        writeln!(out, "bin_ms,utilization")?;
        for (i, u) in util.values.iter().enumerate() {
            writeln!(out, "{},{u:.4}", i as u64 * bin_ms)?;
        }
        return Ok(());
    }

    writeln!(out, "rank {rank}: {} bins of {bin_ms} ms", util.len())?;
    writeln!(out, "mean utilization: {:.1}%", util.mean() * 100.0)?;
    // Coarse sparkline so busy/idle phases are visible in a terminal.
    const GLYPHS: [char; 5] = [' ', '░', '▒', '▓', '█'];
    let glyphs: Vec<char> = util
        .values
        .iter()
        .map(|&u| GLYPHS[((u * 4.0).round() as usize).min(4)])
        .collect();
    for chunk in glyphs.chunks(100) {
        writeln!(out, "|{}|", chunk.iter().collect::<String>())?;
    }
    Ok(())
}
