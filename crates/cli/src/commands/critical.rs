//! `lumos critical-path` — the longest dependency chain of a replay
//! and the heaviest kernels, "identifying which optimization would
//! yield the greatest performance improvement" (§5).

use crate::args::{ArgSet, ArgSpec};
use crate::common::{load_trace, ms, pct};
use crate::error::CliError;
use lumos_bench::table::TextTable;
use lumos_core::analysis::{bottleneck_kernels, critical_path};
use lumos_core::Lumos;
use std::io::Write;

/// Options of `lumos critical-path`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &["top"],
    flags: &[],
};

/// Usage text.
pub const HELP: &str = "lumos critical-path <trace.json> [--top N]\n\
  Replays the trace, walks the critical path, and lists the N\n\
  heaviest kernel names (default 10).";

/// Runs `lumos critical-path`.
///
/// # Errors
///
/// Returns usage, I/O, parse, and simulation failures.
pub fn run(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.one_positional("trace file")?;
    let top = args.get_num("top", 10usize)?;
    let trace = load_trace(path)?;
    let replayed = Lumos::new().replay(&trace)?;
    let cp = critical_path(&replayed.graph, &replayed.result);

    let makespan = replayed.makespan();
    let total = makespan.as_secs_f64().max(f64::MIN_POSITIVE);
    writeln!(out, "makespan:        {}", ms(makespan))?;
    writeln!(out, "path length:     {} tasks", cp.len())?;
    for (name, d) in [
        ("compute", cp.compute),
        ("communication", cp.comm),
        ("host", cp.host),
        ("idle", cp.idle),
    ] {
        writeln!(
            out,
            "  {name:<14} {:>12}  {:>6}",
            ms(d),
            pct(d.as_secs_f64() / total)
        )?;
    }

    let mut table = TextTable::new(&["kernel", "total", "count"]);
    for (name, dur, count) in bottleneck_kernels(&replayed.graph, &replayed.result, top) {
        table.row(vec![name.to_string(), ms(dur), count.to_string()]);
    }
    writeln!(out)?;
    writeln!(out, "bottleneck kernels:")?;
    writeln!(out, "{}", table.to_text())?;
    Ok(())
}
