//! `lumos replay` — replay a trace through the simulator (§3.5) and
//! report makespan, breakdown, and error against the recorded run.

use crate::args::{ArgSet, ArgSpec};
use crate::common::{load_trace, ms, pct, save_trace};
use crate::error::CliError;
use lumos_core::Lumos;
use lumos_trace::BreakdownExt;
use std::io::Write;

/// Options of `lumos replay`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &["out"],
    flags: &["dpro"],
};

/// Usage text.
pub const HELP: &str = "lumos replay <trace.json> [--dpro] [--out replayed.json]\n\
  Builds the execution graph (§3.3), replays it with Algorithm 1, and\n\
  compares against the recorded timeline. --dpro uses the baseline's\n\
  dependency model instead (operator-dataflow fences only, no\n\
  collective rendezvous).";

/// Runs `lumos replay`.
///
/// # Errors
///
/// Returns usage, I/O, parse, and simulation failures.
pub fn run(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.one_positional("trace file")?;
    let trace = load_trace(path)?;
    let toolkit = if args.has("dpro") {
        Lumos::dpro_baseline()
    } else {
        Lumos::new()
    };
    let replayed = toolkit.replay(&trace)?;

    let recorded = trace.makespan();
    let simulated = replayed.makespan();
    writeln!(
        out,
        "model:     {}",
        if args.has("dpro") {
            "dPRO baseline"
        } else {
            "Lumos"
        }
    )?;
    writeln!(out, "recorded:  {}", ms(recorded))?;
    writeln!(out, "replayed:  {}", ms(simulated))?;
    writeln!(
        out,
        "error:     {}",
        pct(simulated.relative_error(recorded))
    )?;

    let rb = replayed.trace.breakdown();
    let ab = trace.breakdown();
    writeln!(out)?;
    writeln!(
        out,
        "breakdown        {:>12}  {:>12}",
        "replayed", "recorded"
    )?;
    for (name, r, a) in [
        ("exposed compute", rb.exposed_compute, ab.exposed_compute),
        ("overlapped", rb.overlapped, ab.overlapped),
        ("exposed comm", rb.exposed_comm, ab.exposed_comm),
        ("other", rb.other, ab.other),
    ] {
        writeln!(out, "  {name:<15}{:>12}  {:>12}", ms(r), ms(a))?;
    }

    if let Some(out_path) = args.get("out") {
        save_trace(&replayed.trace, out_path)?;
        writeln!(out)?;
        writeln!(out, "replayed trace: {out_path}")?;
    }
    Ok(())
}
