//! `lumos replay` — replay a trace through the simulator (§3.5) and
//! report makespan, breakdown, and error against the recorded run.

use crate::args::{ArgSet, ArgSpec};
use crate::common::{calibrated_input, load_trace, ms, pct, save_trace};
use crate::error::CliError;
use lumos_core::Lumos;
use lumos_trace::{Breakdown, BreakdownExt};
use std::io::Write;

/// Options of `lumos replay`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &["calib", "out"],
    flags: &["dpro"],
};

/// Usage text.
pub const HELP: &str = "lumos replay <trace.json> [--calib artifact.json] [--dpro]\n\
    [--out replayed.json]\n\
  Builds the execution graph (§3.3), replays it with Algorithm 1, and\n\
  compares against the recorded timeline. --dpro uses the baseline's\n\
  dependency model instead (operator-dataflow fences only, no\n\
  collective rendezvous). With --calib and no trace file, the base\n\
  configuration is reassembled from the artifact's block library and\n\
  replayed without re-ingesting the trace, compared against the\n\
  artifact's recorded makespan (the breakdown column is then labeled\n\
  `reassembled` — it comes from the synthesized base, not the\n\
  recorded timeline); a trace file given alongside --calib is\n\
  fingerprint-checked and then replayed as usual.";

/// Runs `lumos replay`.
///
/// # Errors
///
/// Returns usage, I/O, parse, and simulation failures.
pub fn run(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    let toolkit = if args.has("dpro") {
        Lumos::dpro_baseline()
    } else {
        Lumos::new()
    };
    // (recorded makespan, reference breakdown + its column label,
    // replay result).
    let (recorded, reference_breakdown, reference_label, replayed) =
        match calibrated_input(args, &[])? {
            Some(ci) => match ci.trace {
                // Trace given alongside --calib: fingerprint-checked
                // (by `calibrated_input`), then replayed as usual.
                Some(trace) => {
                    let replayed = toolkit.replay(&trace)?;
                    (trace.makespan(), trace.breakdown(), "recorded", replayed)
                }
                // Trace-free calibrated replay: identity reassembly of
                // the base configuration from the artifact's block
                // library. The comparison breakdown comes from the
                // synthesized base trace, so it is labeled as such.
                None => {
                    let lookup = ci.artifact.cost_model(ci.fallback);
                    let prediction = toolkit.predict_with_library(
                        &ci.artifact.library,
                        &ci.artifact.setup,
                        &[],
                        &lookup,
                    )?;
                    (
                        ci.artifact.fingerprint.makespan,
                        prediction.trace.breakdown(),
                        "reassembled",
                        prediction.replayed,
                    )
                }
            },
            None => {
                let path = args.one_positional("trace file (or use --calib)")?;
                let trace = load_trace(path)?;
                let replayed = toolkit.replay(&trace)?;
                (trace.makespan(), trace.breakdown(), "recorded", replayed)
            }
        };

    let simulated = replayed.makespan();
    writeln!(
        out,
        "model:     {}",
        if args.has("dpro") {
            "dPRO baseline"
        } else {
            "Lumos"
        }
    )?;
    writeln!(out, "recorded:  {}", ms(recorded))?;
    writeln!(out, "replayed:  {}", ms(simulated))?;
    writeln!(
        out,
        "error:     {}",
        pct(simulated.relative_error(recorded))
    )?;

    let rb = replayed.trace.breakdown();
    let ab: Breakdown = reference_breakdown;
    writeln!(out)?;
    writeln!(
        out,
        "breakdown        {:>12}  {:>12}",
        "replayed", reference_label
    )?;
    for (name, r, a) in [
        ("exposed compute", rb.exposed_compute, ab.exposed_compute),
        ("overlapped", rb.overlapped, ab.overlapped),
        ("exposed comm", rb.exposed_comm, ab.exposed_comm),
        ("other", rb.other, ab.other),
    ] {
        writeln!(out, "  {name:<15}{:>12}  {:>12}", ms(r), ms(a))?;
    }

    if let Some(out_path) = args.get("out") {
        save_trace(&replayed.trace, out_path)?;
        writeln!(out)?;
        writeln!(out, "replayed trace: {out_path}")?;
    }
    Ok(())
}
