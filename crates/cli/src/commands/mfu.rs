//! `lumos mfu` — system-level metrics the paper's §5 limitations
//! defer to future work: model-FLOPS utilization and per-rank memory
//! feasibility for a profiled (or hypothetical) configuration.

use crate::args::{ArgSet, ArgSpec};
use crate::common::{calibrated_input, load_setup, load_trace, sidecar_path};
use crate::error::CliError;
use lumos_cost::GpuSpec;
use lumos_model::memory::{MemoryModel, OptimizerPlacement, Recompute};
use lumos_model::{iteration_flops, utilization};
use std::io::Write;

/// Options of `lumos mfu`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &["setup", "calib", "time-ms", "recompute", "gpu"],
    flags: &["distributed-optimizer"],
};

/// Usage text.
pub const HELP: &str = "lumos mfu <trace.json> [--setup setup.json] [--calib artifact.json]\n\
    [--time-ms N] [--recompute none|selective|full] [--gpu h100|a100]\n\
    [--distributed-optimizer]\n\
  Reports MFU/HFU and the per-rank memory estimate for the traced\n\
  configuration. --time-ms overrides the trace makespan (e.g. a\n\
  measured mean across iterations). With --calib the trace file is\n\
  optional: the artifact supplies the setup and recorded makespan\n\
  without re-ingesting the trace (one given alongside is only\n\
  fingerprint-checked).";

fn parse_recompute(raw: &str) -> Result<Recompute, CliError> {
    Ok(match raw {
        "none" => Recompute::None,
        "selective" => Recompute::Selective,
        "full" => Recompute::Full,
        other => {
            return Err(CliError::Usage(format!(
                "unknown recompute policy `{other}` (expected none, selective, or full)"
            )))
        }
    })
}

fn parse_gpu(raw: &str) -> Result<GpuSpec, CliError> {
    Ok(match raw {
        "h100" => GpuSpec::h100_sxm(),
        "a100" => GpuSpec::a100_sxm(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown gpu `{other}` (expected h100 or a100)"
            )))
        }
    })
}

/// Runs `lumos mfu`.
///
/// # Errors
///
/// Returns usage, I/O, and parse failures.
pub fn run(args: &ArgSet, out: &mut dyn Write) -> Result<(), CliError> {
    let recompute = parse_recompute(args.get("recompute").unwrap_or("selective"))?;
    let calibrated = calibrated_input(args, &["setup"])?;
    // --gpu default: the calibration's recorded hardware preset when
    // one supplies the numbers, H100 otherwise.
    let default_gpu = calibrated
        .as_ref()
        .map_or("h100", |ci| ci.artifact.hardware.as_str());
    let gpu = parse_gpu(args.get("gpu").unwrap_or(default_gpu))?;
    let time_override = match args.get_num_opt::<f64>("time-ms")? {
        Some(ms) if ms > 0.0 => Some(ms / 1e3),
        Some(_) => return Err(CliError::Usage("--time-ms must be positive".to_string())),
        None => None,
    };
    // Calibrated path: setup and makespan come from the artifact; a
    // trace positional is only fingerprint-checked.
    let (setup, time_secs) = if let Some(ci) = calibrated {
        let secs = time_override.unwrap_or_else(|| ci.artifact.fingerprint.makespan.as_secs_f64());
        (ci.artifact.setup, secs)
    } else {
        let path = args.one_positional("trace file")?;
        let setup_path = match args.get("setup") {
            Some(p) => p.to_string(),
            None => sidecar_path(path),
        };
        let setup = load_setup(&setup_path)?;
        let secs = match time_override {
            Some(secs) => secs,
            None => load_trace(path)?.makespan().as_secs_f64(),
        };
        (setup, secs)
    };

    let flops = iteration_flops(&setup, recompute);
    let util = utilization(&setup, recompute, time_secs, gpu.peak_flops());
    writeln!(out, "config:          {}", setup.label())?;
    writeln!(
        out,
        "gpu:             {} ({} GiB)",
        gpu.name, gpu.memory_gib
    )?;
    writeln!(out, "iteration:       {:.2} ms", time_secs * 1e3)?;
    let pf = flops.model_flops() as f64 / 1e15;
    if pf >= 0.1 {
        writeln!(out, "model flops:     {pf:.2} PF/iter")?;
    } else {
        writeln!(out, "model flops:     {:.2} TF/iter", pf * 1e3)?;
    }
    writeln!(out, "utilization:     {util}")?;

    let memory = MemoryModel {
        recompute,
        optimizer: if args.has("distributed-optimizer") {
            OptimizerPlacement::DistributedOptimizer
        } else {
            OptimizerPlacement::Replicated
        },
        ..MemoryModel::default()
    };
    let (stage, est) = memory.estimate_peak(&setup);
    writeln!(out)?;
    writeln!(out, "peak memory (stage {stage}): {est}")?;
    match memory.check(&setup, gpu.memory_bytes()) {
        Ok(est) => writeln!(
            out,
            "fits: yes ({:.1} GiB headroom)",
            est.headroom(gpu.memory_bytes()) as f64 / (1u64 << 30) as f64
        )?,
        Err(oom) => writeln!(out, "fits: NO — {oom}")?,
    }
    Ok(())
}
