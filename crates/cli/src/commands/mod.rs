//! One module per subcommand. Each exposes an [`crate::args::ArgSpec`]
//! and a `run(&ArgSet, &mut dyn Write)` entry point.

pub mod calibrate;
pub mod critical;
pub mod faults;
pub mod info;
pub mod lint;
pub mod mfu;
pub mod predict;
pub mod query;
pub mod replay;
pub mod search;
pub mod serve;
pub mod smutil;
pub mod synth;
