//! A small, dependency-free command-line argument parser.
//!
//! Grammar: positionals interleave freely with `--key value` /
//! `--key=value` options and declared boolean `--flag`s. Unknown
//! options are rejected so typos fail loudly.

use crate::error::CliError;
use std::collections::{HashMap, HashSet};

/// Parsed arguments of one subcommand.
#[derive(Debug, Clone, Default)]
pub struct ArgSet {
    positionals: Vec<String>,
    options: HashMap<String, String>,
    flags: HashSet<String>,
}

/// Declares the options a subcommand accepts.
#[derive(Debug, Clone, Default)]
pub struct ArgSpec {
    /// Option names that take a value (`--name value`).
    pub options: &'static [&'static str],
    /// Boolean flag names (`--name`).
    pub flags: &'static [&'static str],
}

impl ArgSet {
    /// Parses `args` against `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] for unknown options, missing
    /// values, or duplicated options.
    pub fn parse(args: &[String], spec: &ArgSpec) -> Result<ArgSet, CliError> {
        let mut set = ArgSet::default();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let (name, inline) = match name.split_once('=') {
                    Some((n, v)) => (n, Some(v.to_string())),
                    None => (name, None),
                };
                if spec.flags.contains(&name) {
                    if inline.is_some() {
                        return Err(CliError::Usage(format!(
                            "flag --{name} does not take a value"
                        )));
                    }
                    set.flags.insert(name.to_string());
                } else if spec.options.contains(&name) {
                    let value = match inline {
                        Some(v) => v,
                        None => it
                            .next()
                            .ok_or_else(|| {
                                CliError::Usage(format!("option --{name} needs a value"))
                            })?
                            .clone(),
                    };
                    if set.options.insert(name.to_string(), value).is_some() {
                        return Err(CliError::Usage(format!("option --{name} given twice")));
                    }
                } else {
                    return Err(CliError::Usage(format!("unknown option --{name}")));
                }
            } else {
                set.positionals.push(arg.clone());
            }
        }
        Ok(set)
    }

    /// Positional arguments in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The single expected positional.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] unless exactly one positional was
    /// given.
    pub fn one_positional(&self, what: &str) -> Result<&str, CliError> {
        match self.positionals.as_slice() {
            [p] => Ok(p),
            [] => Err(CliError::Usage(format!("missing {what}"))),
            more => Err(CliError::Usage(format!(
                "expected one {what}, got {}",
                more.len()
            ))),
        }
    }

    /// Whether a boolean flag was set.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains(flag)
    }

    /// An option's raw value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A required option's raw value.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when absent.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::Usage(format!("option --{name} is required")))
    }

    /// A numeric option, defaulting when absent.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when present but unparsable.
    pub fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("option --{name}: cannot parse `{raw}`"))),
        }
    }

    /// An optional numeric option (no default).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when present but unparsable.
    pub fn get_num_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("option --{name}: cannot parse `{raw}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ArgSpec {
        ArgSpec {
            options: &["tp", "out"],
            flags: &["dpro"],
        }
    }

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_mixed_forms() {
        let set = ArgSet::parse(
            &strs(&["trace.json", "--tp", "4", "--dpro", "--out=o.json"]),
            &spec(),
        )
        .unwrap();
        assert_eq!(set.one_positional("trace").unwrap(), "trace.json");
        assert_eq!(set.get_num::<u32>("tp", 1).unwrap(), 4);
        assert!(set.has("dpro"));
        assert_eq!(set.get("out"), Some("o.json"));
    }

    #[test]
    fn rejects_unknown_option() {
        let err = ArgSet::parse(&strs(&["--bogus", "1"]), &spec()).unwrap_err();
        assert!(err.to_string().contains("unknown option --bogus"));
    }

    #[test]
    fn rejects_missing_value() {
        let err = ArgSet::parse(&strs(&["--tp"]), &spec()).unwrap_err();
        assert!(err.to_string().contains("needs a value"));
    }

    #[test]
    fn rejects_duplicate_option() {
        let err = ArgSet::parse(&strs(&["--tp", "1", "--tp", "2"]), &spec()).unwrap_err();
        assert!(err.to_string().contains("twice"));
    }

    #[test]
    fn rejects_flag_with_value() {
        let err = ArgSet::parse(&strs(&["--dpro=yes"]), &spec()).unwrap_err();
        assert!(err.to_string().contains("does not take a value"));
    }

    #[test]
    fn defaults_and_required() {
        let set = ArgSet::parse(&strs(&[]), &spec()).unwrap();
        assert_eq!(set.get_num::<u32>("tp", 7).unwrap(), 7);
        assert!(set.require("out").is_err());
        assert!(set.one_positional("trace").is_err());
        assert_eq!(set.get_num_opt::<u64>("tp").unwrap(), None);
    }

    #[test]
    fn unparsable_number_is_usage_error() {
        let set = ArgSet::parse(&strs(&["--tp", "abc"]), &spec()).unwrap();
        let err = set.get_num::<u32>("tp", 1).unwrap_err();
        assert!(err.to_string().contains("cannot parse"));
    }

    #[test]
    fn too_many_positionals_rejected() {
        let set = ArgSet::parse(&strs(&["a", "b"]), &spec()).unwrap();
        assert!(set.one_positional("trace").is_err());
    }
}
