//! CLI error type: usage errors print help hints, tool errors print
//! their source chain.

use std::fmt;

/// Anything a subcommand can fail with.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (unknown option, missing argument, bad value).
    Usage(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Failure inside the toolkit (trace parse, simulation, …).
    Tool(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Tool(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<lumos_trace::TraceError> for CliError {
    fn from(e: lumos_trace::TraceError) -> Self {
        CliError::Tool(format!("trace error: {e}"))
    }
}

impl From<lumos_core::CoreError> for CliError {
    fn from(e: lumos_core::CoreError) -> Self {
        CliError::Tool(format!("core error: {e}"))
    }
}

impl From<lumos_cluster::ClusterError> for CliError {
    fn from(e: lumos_cluster::ClusterError) -> Self {
        CliError::Tool(format!("cluster error: {e}"))
    }
}

impl From<lumos_model::ModelError> for CliError {
    fn from(e: lumos_model::ModelError) -> Self {
        CliError::Tool(format!("model error: {e}"))
    }
}

impl From<lumos_search::SearchError> for CliError {
    fn from(e: lumos_search::SearchError) -> Self {
        CliError::Tool(format!("search error: {e}"))
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Tool(format!("json error: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CliError::Usage("x".into()).to_string().contains("usage"));
        let io: CliError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        assert!(CliError::Tool("t".into()).to_string().contains('t'));
    }
}
