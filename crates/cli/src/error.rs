//! CLI error type: usage errors print help hints, tool errors print
//! their source chain.

use std::fmt;

/// Anything a subcommand can fail with.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (unknown option, missing argument, bad value).
    Usage(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// A failure reading, parsing, or writing a specific file — the
    /// message always names the offending path.
    File {
        /// The file involved.
        path: String,
        /// What went wrong with it.
        detail: String,
    },
    /// Failure inside the toolkit (trace parse, simulation, …).
    Tool(String),
}

impl CliError {
    /// Wraps any displayable failure with the file it concerns.
    pub fn file(path: impl Into<String>, detail: impl fmt::Display) -> Self {
        CliError::File {
            path: path.into(),
            detail: detail.to_string(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::File { path, detail } => write!(f, "`{path}`: {detail}"),
            CliError::Tool(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<lumos_trace::TraceError> for CliError {
    fn from(e: lumos_trace::TraceError) -> Self {
        CliError::Tool(format!("trace error: {e}"))
    }
}

impl From<lumos_core::CoreError> for CliError {
    fn from(e: lumos_core::CoreError) -> Self {
        CliError::Tool(format!("core error: {e}"))
    }
}

impl From<lumos_cluster::ClusterError> for CliError {
    fn from(e: lumos_cluster::ClusterError) -> Self {
        CliError::Tool(format!("cluster error: {e}"))
    }
}

impl From<lumos_model::ModelError> for CliError {
    fn from(e: lumos_model::ModelError) -> Self {
        CliError::Tool(format!("model error: {e}"))
    }
}

impl From<lumos_search::SearchError> for CliError {
    fn from(e: lumos_search::SearchError) -> Self {
        CliError::Tool(format!("search error: {e}"))
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Tool(format!("json error: {e}"))
    }
}

impl From<lumos_calib::CalibError> for CliError {
    fn from(e: lumos_calib::CalibError) -> Self {
        // CalibError messages already name the offending file where
        // one is involved.
        CliError::Tool(format!("calibration error: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CliError::Usage("x".into()).to_string().contains("usage"));
        let io: CliError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        assert!(CliError::Tool("t".into()).to_string().contains('t'));
        let file = CliError::file("a/b.json", "no such file");
        assert!(file.to_string().contains("a/b.json"));
        assert!(file.to_string().contains("no such file"));
    }
}
