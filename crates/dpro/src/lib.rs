//! dPRO-style baseline replayer (Hu et al., MLSys 2022).
//!
//! dPRO builds a global dataflow graph from profiled traces and
//! replays it — but, as the Lumos paper demonstrates (§4.2), it does
//! not model the **event-based inter-stream dependencies**
//! (`cudaEventRecord`/`cudaStreamWaitEvent` fences) that serialize
//! compute and communication streams in modern LLM training. The
//! consequence, quoting the paper:
//!
//! > "dPRO consistently overestimates overlapped execution and
//! > underestimates total iteration time, primarily due to its
//! > inability to accurately model inter-stream dependencies, leading
//! > to overly optimistic predictions of parallel execution."
//!
//! This crate reproduces that baseline *faithfully but charitably*: it
//! shares Lumos's graph builder, simulator, launch/sync modeling, and
//! cross-rank collective rendezvous, differing **only** in dropping
//! event-based inter-stream edges. Any accuracy gap between
//! [`Dpro::replay`] and Lumos is therefore attributable to exactly the
//! modeling difference the paper identifies.
//!
//! # Example
//!
//! ```
//! use lumos_dpro::Dpro;
//! use lumos_trace::{ClusterTrace, RankTrace, TraceEvent, Ts, Dur, ThreadId, StreamId, CudaRuntimeKind};
//!
//! let mut rank0 = RankTrace::new(0);
//! rank0.push(TraceEvent::cpu_op("aten::mm", Ts(0), Dur(5_000), ThreadId(1)));
//! rank0.push(TraceEvent::cuda_runtime(CudaRuntimeKind::LaunchKernel, Ts(5_000), Dur(2_000), ThreadId(1)).with_correlation(1));
//! rank0.push(TraceEvent::kernel("gemm", Ts(9_000), Dur(100_000), StreamId(7)).with_correlation(1));
//! let mut trace = ClusterTrace::new("example");
//! trace.push_rank(rank0);
//!
//! let replayed = Dpro::new().replay(&trace)?;
//! assert!(replayed.makespan() > Dur(100_000));
//! # Ok::<(), lumos_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lumos_core::{CoreError, Lumos, Replayed};
use lumos_trace::ClusterTrace;

/// The dPRO baseline replayer.
#[derive(Debug, Clone)]
pub struct Dpro {
    inner: Lumos,
}

impl Dpro {
    /// Creates the baseline with its published modeling behavior.
    pub fn new() -> Self {
        Dpro {
            inner: Lumos::dpro_baseline(),
        }
    }

    /// Replays a profiled trace with dPRO's dependency model.
    ///
    /// # Errors
    ///
    /// Returns graph-construction or simulation failures.
    pub fn replay(&self, trace: &ClusterTrace) -> Result<Replayed, CoreError> {
        self.inner.replay(trace)
    }

    /// The underlying toolkit configuration (for inspection).
    pub fn toolkit(&self) -> &Lumos {
        &self.inner
    }
}

impl Default for Dpro {
    fn default() -> Self {
        Dpro::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_cluster::{GroundTruthCluster, SimConfig};
    use lumos_cost::AnalyticalCostModel;
    use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};
    use lumos_trace::BreakdownExt;

    /// Compute-heavy setup with TP + DP so inter-stream fences matter.
    fn overlapping_setup() -> SimConfig {
        SimConfig {
            model: ModelConfig::custom("dpro-test", 2, 2048, 8192, 16, 128),
            parallelism: Parallelism::new(2, 1, 2).unwrap(),
            batch: BatchConfig {
                seq_len: 2048,
                microbatch_size: 1,
                num_microbatches: 2,
            },
            schedule: ScheduleKind::OneFOneB,
        }
    }

    #[test]
    fn baseline_drops_interstream_edges_only() {
        let cfg = overlapping_setup();
        let truth = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100())
            .unwrap()
            .profile_iteration(0)
            .unwrap();
        let lumos_graph = Lumos::new().build_graph(&truth.trace).unwrap();
        let dpro_graph = Dpro::new().toolkit().build_graph(&truth.trace).unwrap();
        let (ls, ds) = (lumos_graph.stats(), dpro_graph.stats());
        // dPRO loses the producer-side fences (roughly half the event
        // edges: each fenced collective has a producer and a consumer
        // fence).
        assert!(ds.inter_stream < ls.inter_stream);
        assert!(ls.inter_stream > 0);
        // Everything else identical.
        assert_eq!(ls.tasks, ds.tasks);
        assert_eq!(ls.intra_thread, ds.intra_thread);
        assert_eq!(ls.inter_thread, ds.inter_thread);
        assert_eq!(ls.kernel_launch, ds.kernel_launch);
        assert_eq!(ls.intra_stream, ds.intra_stream);
        assert_eq!(ls.collective_instances, ds.collective_instances);
    }

    #[test]
    fn dpro_is_systematically_optimistic() {
        let cfg = overlapping_setup();
        let truth = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100())
            .unwrap()
            .profile_iteration(0)
            .unwrap();
        let dpro = Dpro::new().replay(&truth.trace).unwrap();
        let lumos = Lumos::new().replay(&truth.trace).unwrap();
        assert!(
            dpro.makespan() < truth.makespan,
            "dpro {} !< truth {}",
            dpro.makespan(),
            truth.makespan
        );
        assert!(dpro.makespan() <= lumos.makespan());
    }

    #[test]
    fn dpro_overestimates_overlap() {
        // The paper's Figure 1/5 diagnosis: overlapped time inflated,
        // exposed communication deflated.
        let cfg = overlapping_setup();
        let truth = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100())
            .unwrap()
            .profile_iteration(0)
            .unwrap();
        let actual = truth.trace.breakdown();
        let dpro = Dpro::new().replay(&truth.trace).unwrap().breakdown();
        assert!(
            dpro.overlapped >= actual.overlapped,
            "dpro overlap {} !>= actual {}",
            dpro.overlapped,
            actual.overlapped
        );
        assert!(
            dpro.exposed_comm <= actual.exposed_comm,
            "dpro exposed comm {} !<= actual {}",
            dpro.exposed_comm,
            actual.exposed_comm
        );
    }
}
