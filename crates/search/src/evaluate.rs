//! The parallel candidate evaluator: one shared trace-fitted cost
//! model, one reassembly + replay per feasible candidate.

use crate::candidate::Candidate;
use crate::error::SearchError;
use crate::parallel::parallel_map;
use crate::space::SpaceSpec;
use crate::SearchOptions;
use lumos_core::manipulate::{plan, reassemble};
use lumos_core::Lumos;
use lumos_cost::{CostModel, LookupCostModel};
use lumos_model::{
    utilization, InterleavedSchedule, MemoryEstimate, PipelineSchedule, ScheduleKind,
    TrainingSetup, Utilization,
};
use lumos_trace::{ClusterTrace, CollectiveKind, Dur, EventKind, KernelClass};
use std::sync::Arc;

/// One evaluated candidate: the numbers a capacity planner ranks by.
#[derive(Debug, Clone)]
pub struct CandidateResult {
    /// The candidate configuration.
    pub candidate: Candidate,
    /// Display label (deployment + micro-batch/interleave/arch).
    pub label: String,
    /// Its validated target setup.
    pub setup: TrainingSetup,
    /// Enumeration index (deterministic ranking tie-break).
    pub index: usize,
    /// Predicted iteration time, including the interleaving
    /// adjustment when `candidate.interleave > 1`.
    pub makespan: Dur,
    /// Raw simulated makespan of the reassembled plain-1F1B graph.
    pub simulated_makespan: Dur,
    /// Pipeline-bubble fraction of the candidate's schedule.
    pub bubble_fraction: f64,
    /// MFU/HFU/achieved TFLOPs at the predicted iteration time.
    pub utilization: Utilization,
    /// Peak-stage memory estimate.
    pub memory: MemoryEstimate,
    /// The pipeline stage that binds memory.
    pub memory_stage: u32,
    /// Training throughput normalized by cluster size.
    pub tokens_per_sec_per_gpu: f64,
}

impl CandidateResult {
    /// Total GPUs the candidate occupies.
    pub fn world_size(&self) -> u32 {
        self.candidate.world_size()
    }
}

/// Evaluates every feasible candidate on `threads` workers.
///
/// The [`LookupCostModel`] is fitted from the base trace **once** and
/// shared read-only across workers (`Arc`), so every candidate reuses
/// the same memoized shape → duration table; only genuinely new shapes
/// fall through to the analytical fallback.
pub(crate) fn evaluate_all<C>(
    trace: &ClusterTrace,
    base: &TrainingSetup,
    spec: &SpaceSpec,
    feasible: &[(Candidate, TrainingSetup)],
    opts: &SearchOptions,
    fallback: C,
    threads: usize,
) -> Result<Vec<CandidateResult>, SearchError>
where
    C: CostModel + Send + Sync + 'static,
{
    let lookup = Arc::new(LookupCostModel::fit_from_trace(
        trace,
        fallback,
        opts.gpus_per_node,
    ));
    let lumos = Lumos::new();
    let results = parallel_map(feasible, threads, |index, (cand, setup)| {
        evaluate_one(trace, base, spec, cand, setup, index, opts, &lumos, &lookup).map_err(
            |source| SearchError::Evaluation {
                candidate: cand.label(spec),
                source,
            },
        )
    });
    // Deterministic error selection: the lowest-index failure wins.
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

/// Prices one candidate: reassemble the base graph under the
/// candidate's transforms, replay it, and derive planner metrics.
#[allow(clippy::too_many_arguments)]
fn evaluate_one<C: CostModel>(
    trace: &ClusterTrace,
    base: &TrainingSetup,
    space: &SpaceSpec,
    cand: &Candidate,
    setup: &TrainingSetup,
    index: usize,
    opts: &SearchOptions,
    lumos: &Lumos,
    lookup: &LookupCostModel<C>,
) -> Result<CandidateResult, lumos_core::CoreError> {
    let rspec = plan(base, setup);
    let predicted = reassemble(trace, &rspec, lookup)?;
    let label = predicted.label.clone();
    let graph = lumos.build_graph(&predicted)?;
    let replayed = lumos.replay_graph(graph, &label)?;
    let simulated = replayed.makespan();

    let pp = setup.parallelism.pp;
    let m = setup.batch.num_microbatches;
    // The bubble of the schedule the candidate actually simulated
    // under (1F1B or GPipe — reassemble honors `setup.schedule`).
    let plain_bubble = PipelineSchedule::generate(setup.schedule, pp, m)?.bubble_fraction();

    // Interleaved 1F1B is scored analytically on top of the simulated
    // plain replay: graph manipulation cannot restage a recorded
    // pipeline into virtual chunks (same class of limitation as the
    // paper's TP restriction), but the schedule model prices exactly
    // the two effects interleaving has — a bubble divided by v and
    // pipeline-boundary traffic multiplied by v. Enumeration rejects
    // `interleave > 1` unless the schedule is 1F1B, so `plain_bubble`
    // here is always the 1F1B bubble the adjustment assumes.
    let (makespan, bubble_fraction) = if cand.interleave > 1 {
        debug_assert_eq!(setup.schedule, ScheduleKind::OneFOneB);
        let inter = InterleavedSchedule::generate(pp, cand.interleave, m)?;
        let bi = inter.bubble_fraction();
        let work_secs = simulated.as_secs_f64() * (1.0 - plain_bubble);
        let extra_comm_secs =
            (inter.comm_amplification() - 1.0) * pipeline_comm_secs_per_rank(&replayed.trace);
        let adjusted = work_secs / (1.0 - bi) + extra_comm_secs;
        (Dur::from_secs_f64(adjusted.max(0.0)), bi)
    } else {
        (simulated, plain_bubble)
    };

    let secs = makespan.as_secs_f64().max(1e-12);
    let util = utilization(
        setup,
        opts.memory_model.recompute,
        secs,
        opts.gpu.peak_flops(),
    );
    let (memory_stage, memory) = opts.memory_model.estimate_peak(setup);
    let tokens_per_iter = setup.batch.tokens_per_microbatch()
        * setup.batch.num_microbatches as u64
        * setup.parallelism.dp as u64;
    let tokens_per_sec_per_gpu =
        tokens_per_iter as f64 / secs / setup.parallelism.world_size() as f64;

    Ok(CandidateResult {
        candidate: *cand,
        label: cand.label(space),
        setup: setup.clone(),
        index,
        makespan,
        simulated_makespan: simulated,
        bubble_fraction,
        utilization: util,
        memory,
        memory_stage,
        tokens_per_sec_per_gpu,
    })
}

/// Mean per-rank time spent in pipeline-boundary SendRecv kernels.
fn pipeline_comm_secs_per_rank(trace: &ClusterTrace) -> f64 {
    let world = trace.world_size().max(1) as f64;
    let total_ns: u128 = trace
        .ranks()
        .iter()
        .flat_map(|r| r.kernels())
        .filter_map(|e| match e.kind {
            EventKind::Kernel {
                class: KernelClass::Collective(meta),
                ..
            } if meta.kind == CollectiveKind::SendRecv => Some(e.dur.as_ns() as u128),
            _ => None,
        })
        .sum();
    total_ns as f64 / 1e9 / world
}
