//! The streaming parallel evaluator: one shared trace-fitted cost
//! model and block library, one reassembly + replay per candidate
//! that cannot be skipped, bounded top-k retention per worker.
//!
//! Workers claim grid indices from a single atomic cursor, decode and
//! lattice-check them on the fly ([`crate::enumerate::Grid`]), gate on
//! memory feasibility, and then — when a retention bound is set —
//! consult the memoized analytic lower bound
//! ([`crate::memo::StageCostCache`]) to skip full interleaved-1F1B
//! scoring for candidates that provably cannot enter the top-k. Peak
//! memory is proportional to `top_k × threads`, not to the size of the
//! space, and the merged result is byte-identical to ranking every
//! candidate: a candidate is only skipped when its objective key is
//! *strictly* worse than `k` already-scored candidates.

use crate::candidate::Candidate;
use crate::enumerate::Grid;
use crate::error::SearchError;
use crate::memo::StageCostCache;
use crate::prune::{self, MemoStats, PruneStats, PrunedCandidate};
use crate::report::{objective_key_cmp, rank_cmp, Objective};
use crate::{SearchOptions, SearchProgress};
use lumos_core::manipulate::{plan, reassemble_with_library, BlockLibrary};
use lumos_core::Lumos;
use lumos_cost::{CostModel, LookupCostModel};
use lumos_model::{utilization, MemoryEstimate, TrainingSetup, Utilization};
use lumos_trace::{ClusterTrace, CollectiveKind, Dur, EventKind, KernelClass};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};

/// Why a fully scored candidate was rejected instead of ranked.
#[derive(Debug, Clone, PartialEq)]
pub enum Infeasibility {
    /// The schedule's bubble fraction reached 1.0 — no useful work
    /// share, so the interleaving adjustment would divide by zero.
    DegenerateBubble {
        /// The degenerate bubble fraction.
        bubble: f64,
    },
    /// The predicted makespan is zero; per-GPU throughput and MFU are
    /// undefined.
    ZeroMakespan,
    /// The device spec reports no peak FLOP/s; MFU is undefined.
    NoPeakFlops,
    /// The objective key came out non-finite (NaN or ±∞) — reported
    /// instead of ranked so the sort never sees it.
    NonFiniteObjective {
        /// The offending key value.
        key: f64,
    },
}

impl std::fmt::Display for Infeasibility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Infeasibility::DegenerateBubble { bubble } => {
                write!(f, "degenerate pipeline bubble ({bubble})")
            }
            Infeasibility::ZeroMakespan => write!(f, "zero predicted makespan"),
            Infeasibility::NoPeakFlops => write!(f, "device spec has no peak FLOP/s"),
            Infeasibility::NonFiniteObjective { key } => {
                write!(f, "non-finite objective key ({key})")
            }
        }
    }
}

/// A fully scored candidate rejected with a typed reason.
#[derive(Debug, Clone)]
pub struct RejectedCandidate {
    /// The candidate configuration.
    pub candidate: Candidate,
    /// Display label.
    pub label: String,
    /// Enumeration index.
    pub index: usize,
    /// Why it was rejected.
    pub reason: Infeasibility,
}

/// One evaluated candidate: the numbers a capacity planner ranks by.
#[derive(Debug, Clone)]
pub struct CandidateResult {
    /// The candidate configuration.
    pub candidate: Candidate,
    /// Display label (deployment + micro-batch/interleave/arch).
    pub label: String,
    /// Its validated target setup.
    pub setup: TrainingSetup,
    /// Enumeration index (deterministic ranking tie-break).
    pub index: usize,
    /// Predicted iteration time, including the interleaving
    /// adjustment when `candidate.interleave > 1`.
    pub makespan: Dur,
    /// Raw simulated makespan of the reassembled plain-1F1B graph.
    pub simulated_makespan: Dur,
    /// Pipeline-bubble fraction of the candidate's schedule.
    pub bubble_fraction: f64,
    /// MFU/HFU/achieved TFLOPs at the predicted iteration time.
    pub utilization: Utilization,
    /// Peak-stage memory estimate.
    pub memory: MemoryEstimate,
    /// The pipeline stage that binds memory.
    pub memory_stage: u32,
    /// Training throughput normalized by cluster size.
    pub tokens_per_sec_per_gpu: f64,
    /// `Some` when the candidate must not be ranked: degenerate
    /// bubble, zero makespan, missing peak FLOP/s, or a non-finite
    /// objective key. Such results are reported in
    /// [`crate::SearchReport::rejected`], never in `results`.
    pub infeasibility: Option<Infeasibility>,
}

impl CandidateResult {
    /// Total GPUs the candidate occupies.
    pub fn world_size(&self) -> u32 {
        self.candidate.world_size()
    }

    /// `true` when the result is rankable (no infeasibility flag).
    pub fn is_feasible(&self) -> bool {
        self.infeasibility.is_none()
    }
}

/// Everything the streaming engine produced, pre-merge of the final
/// report. The shared trace-fitted cost model lives in the
/// [`crate::SearchCalibration`] the run was given, so the refinement
/// phase prices engine executions identically to the screen without
/// re-fitting it.
pub(crate) struct EngineOutcome {
    pub results: Vec<CandidateResult>,
    pub pruned: Vec<PrunedCandidate>,
    pub rejected: Vec<RejectedCandidate>,
    pub stats: PruneStats,
    pub memo: MemoStats,
    pub threads: usize,
}

/// Shared per-run atomic counters.
#[derive(Default)]
struct Counters {
    claimed: AtomicUsize,
    budget: AtomicUsize,
    divisibility: AtomicUsize,
    structural: AtomicUsize,
    memory_pruned: AtomicUsize,
    bound_skipped: AtomicUsize,
    evaluated: AtomicUsize,
    infeasible: AtomicUsize,
}

/// A max-heap entry ordered by (objective key, index) under the
/// NaN-safe total order: the heap's top is the *worst* retained
/// candidate, the one a new candidate must strictly beat.
struct HeapEntry {
    key: f64,
    result: CandidateResult,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        objective_key_cmp(self.key, other.key)
            .then_with(|| self.result.index.cmp(&other.result.index))
    }
}

/// Per-worker bounded retention: an unbounded list when no cap is set
/// (full-ranking compatibility mode), a size-`k` max-heap otherwise.
struct TopK {
    cap: Option<usize>,
    heap: BinaryHeap<HeapEntry>,
}

impl TopK {
    fn new(cap: Option<usize>) -> Self {
        TopK {
            cap,
            heap: BinaryHeap::new(),
        }
    }

    /// `true` once the retention bound is reached (never for
    /// unbounded retention — skipping stays disabled there).
    fn full(&self) -> bool {
        self.cap.is_some_and(|k| self.heap.len() >= k)
    }

    /// The objective key a challenger must strictly beat, once full.
    fn worst_key(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.key)
    }

    fn push(&mut self, key: f64, result: CandidateResult) {
        let entry = HeapEntry { key, result };
        match self.cap {
            Some(k) if self.heap.len() >= k => {
                if k == 0 {
                    return;
                }
                if entry.cmp(self.heap.peek().expect("non-empty")) == Ordering::Less {
                    self.heap.pop();
                    self.heap.push(entry);
                }
            }
            _ => self.heap.push(entry),
        }
    }

    fn into_results(self) -> Vec<CandidateResult> {
        self.heap.into_iter().map(|e| e.result).collect()
    }
}

/// What one worker hands back at join time.
struct WorkerOut {
    results: Vec<CandidateResult>,
    pruned: Vec<PrunedCandidate>,
    rejected: Vec<RejectedCandidate>,
    /// Lowest-index evaluation failure this worker hit.
    error: Option<(usize, SearchError)>,
}

/// One grid point's fate in the decode → lattice → memory-gate →
/// bound-screen → evaluate pipeline.
pub(crate) enum IndexOutcome {
    /// Rejected by the lattice before costing anything.
    Lattice(crate::RejectReason),
    /// Cut by the memory-feasibility gate (would OOM).
    MemoryPruned(PrunedCandidate),
    /// Provably dominated: the analytic lower bound on its objective
    /// key is strictly worse than the screen threshold.
    BoundSkipped,
    /// Fully scored (the result may still carry an infeasibility
    /// flag the caller routes to the rejected list).
    Scored(Box<CandidateResult>),
    /// Graph manipulation or replay failed.
    Failed(Box<SearchError>),
}

/// The per-candidate scoring pipeline with its shared pieces bundled:
/// the grid decoder, the trace-fitted cost model and block library,
/// and the lazily built stage-cost bound cache. Both the exhaustive
/// walk ([`run_streaming`]) and the adaptive engine
/// ([`crate::adaptive`]) drive it index by index, so a candidate is
/// scored identically no matter which engine reached it.
pub(crate) struct Evaluator<'a, C: CostModel> {
    grid: Grid<'a>,
    base: &'a TrainingSetup,
    lookup: &'a LookupCostModel<C>,
    library: &'a BlockLibrary,
    opts: &'a SearchOptions,
    lumos: Lumos,
    // The stage-cost memo's construction walks the whole library
    // (dominant-stream scan + completeness probe); build it only when
    // a bound is actually queried.
    cache: std::sync::OnceLock<StageCostCache<'a, C>>,
    shared_memo: Option<&'a crate::memo::SharedStageMemo>,
    capacity: u64,
}

impl<'a, C: CostModel> Evaluator<'a, C> {
    pub(crate) fn new(
        calib: &'a crate::SearchCalibration<C>,
        spec: &crate::SpaceSpec,
        opts: &'a SearchOptions,
    ) -> Self {
        Evaluator {
            grid: Grid::new(spec, &calib.base),
            base: &calib.base,
            lookup: &calib.lookup,
            library: &calib.library,
            opts,
            lumos: Lumos::new(),
            cache: std::sync::OnceLock::new(),
            shared_memo: opts.shared_memo.as_deref(),
            capacity: opts.gpu.memory_bytes(),
        }
    }

    /// The grid this evaluator decodes indices against.
    pub(crate) fn grid(&self) -> &Grid<'a> {
        &self.grid
    }

    /// Stage-cost memo counters (zeros until a bound was queried).
    pub(crate) fn memo_stats(&self) -> MemoStats {
        self.cache
            .get()
            .map(StageCostCache::stats)
            .unwrap_or_default()
    }

    fn bound_cache(&self) -> &StageCostCache<'a, C> {
        self.cache.get_or_init(|| {
            StageCostCache::new(self.base, self.library, self.lookup, self.shared_memo)
        })
    }

    /// A sound lower bound on the candidate's objective key, `None`
    /// when no bound exists (incomplete library, degenerate schedule).
    fn bound_key(&self, cand: &Candidate, setup: &TrainingSetup) -> Option<f64> {
        let lb = self.bound_cache().lower_bound_secs(cand, setup)?;
        objective_key_lower_bound(self.opts.objective, setup, lb, self.opts)
    }

    /// Runs one grid index through the pipeline. `screen` is the
    /// objective key a candidate's lower bound must *strictly* exceed
    /// to be skipped — ties must still be scored, the enumeration-
    /// index tie-break could admit them. `None` disables the screen:
    /// everything admissible is scored.
    pub(crate) fn process(&self, index: usize, screen: Option<f64>) -> IndexOutcome {
        let cand = self.grid.candidate(index);
        let setup = match self.grid.admit(&cand) {
            Ok(setup) => setup,
            Err(reason) => return IndexOutcome::Lattice(reason),
        };
        if let Some(pruned) =
            prune::gate_one(index, &cand, &setup, &self.opts.memory_model, self.capacity)
        {
            return IndexOutcome::MemoryPruned(pruned);
        }
        if let Some(threshold) = screen {
            let dominated = self
                .bound_key(&cand, &setup)
                .is_some_and(|key_lb| objective_key_cmp(key_lb, threshold) == Ordering::Greater);
            if dominated {
                return IndexOutcome::BoundSkipped;
            }
        }
        let mut result = match evaluate_one(
            self.library,
            self.base,
            self.grid.spec(),
            &cand,
            &setup,
            index,
            self.opts,
            &self.lumos,
            self.lookup,
        ) {
            Ok(r) => r,
            Err(source) => {
                return IndexOutcome::Failed(Box::new(SearchError::Evaluation {
                    candidate: cand.label(self.grid.spec()),
                    source,
                }))
            }
        };
        if result.is_feasible() {
            let key = self.opts.objective.key(&result);
            if !key.is_finite() {
                result.infeasibility = Some(Infeasibility::NonFiniteObjective { key });
            }
        }
        IndexOutcome::Scored(Box::new(result))
    }
}

/// Runs the full streaming pipeline over the grid of `spec` (already
/// normalized): claim → decode → lattice → memory gate → lower-bound
/// skip → evaluate → per-worker top-k, merged deterministically.
/// The calibration (lookup tables + block library) is prebuilt and
/// shared — repeated queries against one [`crate::SearchCalibration`]
/// never re-walk the source trace.
pub(crate) fn run_streaming<C>(
    calib: &crate::SearchCalibration<C>,
    spec: &crate::SpaceSpec,
    opts: &SearchOptions,
    deadline: Option<std::time::Instant>,
) -> Result<EngineOutcome, SearchError>
where
    C: CostModel + Send + Sync,
{
    let evaluator = Evaluator::new(calib, spec, opts);
    let total = evaluator.grid().total();
    let threads = crate::parallel::effective_threads(opts.threads, total);

    let counters = Counters::default();
    let abort = AtomicBool::new(false);
    let expired = AtomicBool::new(false);
    let progress_stride = (total / 20).clamp(1, 65_536);

    let outs: Vec<WorkerOut> = crate::parallel::run_claimed(threads, total, |_t, claims| {
        let mut top = TopK::new(opts.top_k);
        let mut out = WorkerOut {
            results: Vec::new(),
            pruned: Vec::new(),
            rejected: Vec::new(),
            error: None,
        };
        loop {
            if abort.load(AtomicOrdering::Relaxed) {
                break;
            }
            if crate::cancel_requested(opts, deadline) {
                expired.store(true, AtomicOrdering::Relaxed);
                abort.store(true, AtomicOrdering::Relaxed);
                break;
            }
            let Some(index) = claims.next() else { break };
            let claimed = counters.claimed.fetch_add(1, AtomicOrdering::Relaxed) + 1;
            if claimed % progress_stride == 0 {
                if let Some(sink) = &opts.progress {
                    (sink.0)(SearchProgress {
                        grid_points: total,
                        claimed,
                        evaluated: counters.evaluated.load(AtomicOrdering::Relaxed),
                        memory_pruned: counters.memory_pruned.load(AtomicOrdering::Relaxed),
                        bound_skipped: counters.bound_skipped.load(AtomicOrdering::Relaxed),
                    });
                }
            }
            // Lower-bound screen: only once the local heap already
            // holds k candidates does the worst retained key become a
            // threshold. (With `top_k = Some(0)` the heap is trivially
            // full but has no worst entry to dominate, so nothing is
            // ever *claimed* to be dominated: every candidate is still
            // scored honestly, just not retained.)
            let screen = if top.full() { top.worst_key() } else { None };
            match evaluator.process(index, screen) {
                IndexOutcome::Lattice(crate::RejectReason::Budget) => {
                    counters.budget.fetch_add(1, AtomicOrdering::Relaxed);
                }
                IndexOutcome::Lattice(crate::RejectReason::Divisibility) => {
                    counters.divisibility.fetch_add(1, AtomicOrdering::Relaxed);
                }
                IndexOutcome::Lattice(crate::RejectReason::Structural) => {
                    counters.structural.fetch_add(1, AtomicOrdering::Relaxed);
                }
                IndexOutcome::MemoryPruned(pruned) => {
                    counters.memory_pruned.fetch_add(1, AtomicOrdering::Relaxed);
                    bounded_push(&mut out.pruned, pruned, opts.top_k, pruned_order);
                }
                IndexOutcome::BoundSkipped => {
                    counters.bound_skipped.fetch_add(1, AtomicOrdering::Relaxed);
                }
                IndexOutcome::Failed(err) => {
                    if out.error.as_ref().is_none_or(|(i, _)| index < *i) {
                        out.error = Some((index, *err));
                    }
                    abort.store(true, AtomicOrdering::Relaxed);
                    break;
                }
                IndexOutcome::Scored(result) => {
                    counters.evaluated.fetch_add(1, AtomicOrdering::Relaxed);
                    let result = *result;
                    match result.infeasibility.clone() {
                        Some(reason) => {
                            counters.infeasible.fetch_add(1, AtomicOrdering::Relaxed);
                            bounded_push(
                                &mut out.rejected,
                                RejectedCandidate {
                                    candidate: result.candidate,
                                    label: result.label.clone(),
                                    index: result.index,
                                    reason,
                                },
                                opts.top_k,
                                rejected_order,
                            );
                        }
                        None => top.push(opts.objective.key(&result), result),
                    }
                }
            }
        }
        out.results = top.into_results();
        finish_bounded(&mut out.pruned, opts.top_k, pruned_order);
        finish_bounded(&mut out.rejected, opts.top_k, rejected_order);
        out
    });

    // Deterministic error selection: the lowest-index failure wins
    // among the failures workers saw before aborting.
    let mut error: Option<(usize, SearchError)> = None;
    let mut results = Vec::new();
    let mut pruned = Vec::new();
    let mut rejected = Vec::new();
    for out in outs {
        if let Some((i, e)) = out.error {
            if error.as_ref().is_none_or(|(j, _)| i < *j) {
                error = Some((i, e));
            }
        }
        results.extend(out.results);
        pruned.extend(out.pruned);
        rejected.extend(out.rejected);
    }
    if let Some((_, e)) = error {
        return Err(e);
    }
    // Cancellation beats the empty-space diagnosis: an interrupted run
    // may not have claimed enough of the grid to say anything about it.
    if expired.load(AtomicOrdering::Relaxed) {
        return Err(SearchError::DeadlineExceeded);
    }

    let stats = PruneStats {
        enumerated: counters.claimed.load(AtomicOrdering::Relaxed),
        budget_rejects: counters.budget.load(AtomicOrdering::Relaxed),
        divisibility_rejects: counters.divisibility.load(AtomicOrdering::Relaxed),
        structural_rejects: counters.structural.load(AtomicOrdering::Relaxed),
        memory_pruned: counters.memory_pruned.load(AtomicOrdering::Relaxed),
        bound_skipped: counters.bound_skipped.load(AtomicOrdering::Relaxed),
        evaluated: counters.evaluated.load(AtomicOrdering::Relaxed),
        infeasible: counters.infeasible.load(AtomicOrdering::Relaxed),
        ..PruneStats::default()
    };
    if stats.memory_pruned + stats.bound_skipped + stats.evaluated == 0 {
        return Err(SearchError::EmptySpace {
            enumerated: stats.enumerated,
            rejected: stats.budget_rejects + stats.divisibility_rejects + stats.structural_rejects,
        });
    }

    // Deterministic merges: the union of per-worker top-k sets
    // contains the global top-k; ranking + truncation recovers it
    // exactly, independent of how workers carved up the grid.
    results.sort_by(|a, b| rank_cmp(a, b, opts.objective));
    if let Some(k) = opts.top_k {
        results.truncate(k);
    }
    pruned.sort_by(pruned_order);
    rejected.sort_by(rejected_order);
    if let Some(k) = opts.top_k {
        pruned.truncate(k);
        rejected.truncate(k);
    }

    let memo = evaluator.memo_stats();
    Ok(EngineOutcome {
        results,
        pruned,
        rejected,
        stats,
        memo,
        threads,
    })
}

/// Retention order for pruned examples: worst offender (largest
/// requirement) first, enumeration index as tie-break.
pub(crate) fn pruned_order(a: &PrunedCandidate, b: &PrunedCandidate) -> Ordering {
    b.required_bytes
        .cmp(&a.required_bytes)
        .then_with(|| a.index.cmp(&b.index))
}

/// Retention order for rejected examples: enumeration order.
pub(crate) fn rejected_order(a: &RejectedCandidate, b: &RejectedCandidate) -> Ordering {
    a.index.cmp(&b.index)
}

/// Bounded example retention: unbounded when no cap is set; otherwise
/// amortized sort-and-truncate keeping the `cap` best by `order`.
pub(crate) fn bounded_push<T>(
    list: &mut Vec<T>,
    item: T,
    cap: Option<usize>,
    order: fn(&T, &T) -> Ordering,
) {
    list.push(item);
    if let Some(cap) = cap {
        if list.len() >= cap.saturating_mul(2) + 16 {
            list.sort_by(order);
            list.truncate(cap);
        }
    }
}

/// Final truncation pass for [`bounded_push`] lists.
pub(crate) fn finish_bounded<T>(
    list: &mut Vec<T>,
    cap: Option<usize>,
    order: fn(&T, &T) -> Ordering,
) {
    if let Some(cap) = cap {
        list.sort_by(order);
        list.truncate(cap);
    }
}

/// Tokens one iteration trains across all data-parallel replicas —
/// shared between the scored result, the throughput lower bound, and
/// the refinement phase's objective re-evaluation, which are only
/// mutually sound while all use the same formula.
pub(crate) fn tokens_per_iter(setup: &TrainingSetup) -> u64 {
    setup.batch.tokens_per_microbatch()
        * setup.batch.num_microbatches as u64
        * setup.parallelism.dp as u64
}

/// A lower bound on the candidate's objective *key* given a lower
/// bound on its iteration seconds (`None`: no sound bound exists).
fn objective_key_lower_bound(
    objective: Objective,
    setup: &TrainingSetup,
    lb_secs: f64,
    opts: &SearchOptions,
) -> Option<f64> {
    if !(lb_secs > 0.0 && lb_secs.is_finite()) {
        return None;
    }
    match objective {
        Objective::Makespan => Some(lb_secs),
        Objective::PerGpuThroughput => {
            let tokens = tokens_per_iter(setup);
            // secs ≥ lb ⇒ throughput ≤ tokens/(lb·world) ⇒ key ≥ this.
            Some(-(tokens as f64 / lb_secs / setup.parallelism.world_size() as f64))
        }
        Objective::Mfu => {
            let peak = opts.gpu.peak_flops();
            if !(peak > 0.0 && peak.is_finite()) {
                return None;
            }
            Some(-utilization(setup, opts.memory_model.recompute, lb_secs, peak).mfu)
        }
    }
}

/// Prices one candidate: reassemble the base graph under the
/// candidate's transforms (against the shared block library), replay
/// it, and derive planner metrics. Degenerate numerics become typed
/// [`Infeasibility`] flags instead of NaN/∞ metrics.
#[allow(clippy::too_many_arguments)]
fn evaluate_one<C: CostModel>(
    library: &BlockLibrary,
    base: &TrainingSetup,
    space: &crate::SpaceSpec,
    cand: &Candidate,
    setup: &TrainingSetup,
    index: usize,
    opts: &SearchOptions,
    lumos: &Lumos,
    lookup: &LookupCostModel<C>,
) -> Result<CandidateResult, lumos_core::CoreError> {
    let rspec = plan(base, setup);
    let predicted = reassemble_with_library(library, &rspec, lookup)?;
    let label = predicted.label.clone();
    let graph = lumos.build_graph(&predicted)?;
    let replayed = lumos.replay_graph(graph, &label)?;
    let simulated = replayed.makespan();

    let pp = setup.parallelism.pp;
    let m = setup.batch.num_microbatches;

    let mut infeasibility = None;
    // Replay pastes recorded blocks into a plain 1F1B/GPipe-shaped
    // skeleton, so schedules that reshape the pipeline — interleaved
    // 1F1B's virtual chunks, zero-bubble's split backward — are
    // scored through their own adjustment hook: it rescales the
    // skeleton's analytic bubble into the target's and charges any
    // extra pipeline-boundary traffic. Policies whose replay already
    // has the right shape return `None` and keep the raw simulation.
    let (makespan, bubble_fraction) = match setup.schedule.replay_adjustment(pp, m, cand.interleave)
    {
        Some(adj) => {
            if adj.is_degenerate() {
                infeasibility = Some(Infeasibility::DegenerateBubble {
                    bubble: adj.target_bubble.max(adj.skeleton_bubble),
                });
                (simulated, adj.target_bubble)
            } else {
                let pp_comm = pipeline_comm_secs_per_rank(&replayed.trace);
                (
                    Dur::from_secs_f64(adj.apply_secs(simulated.as_secs_f64(), pp_comm)),
                    adj.target_bubble,
                )
            }
        }
        None => {
            let plain = setup.schedule.analytic_bubble(pp, m);
            if plain >= 1.0 {
                infeasibility = Some(Infeasibility::DegenerateBubble { bubble: plain });
            }
            (simulated, plain)
        }
    };

    if infeasibility.is_none() && makespan.is_zero() {
        infeasibility = Some(Infeasibility::ZeroMakespan);
    }
    let secs = makespan.as_secs_f64().max(1e-12);
    let peak = opts.gpu.peak_flops();
    let util = if peak > 0.0 && peak.is_finite() {
        utilization(setup, opts.memory_model.recompute, secs, peak)
    } else {
        if infeasibility.is_none() {
            infeasibility = Some(Infeasibility::NoPeakFlops);
        }
        Utilization {
            mfu: 0.0,
            hfu: 0.0,
            tflops_per_gpu: 0.0,
        }
    };
    let (memory_stage, memory) = opts.memory_model.estimate_peak(setup);
    let tokens_per_sec_per_gpu =
        tokens_per_iter(setup) as f64 / secs / setup.parallelism.world_size() as f64;

    Ok(CandidateResult {
        candidate: *cand,
        label: cand.label(space),
        setup: setup.clone(),
        index,
        makespan,
        simulated_makespan: simulated,
        bubble_fraction,
        utilization: util,
        memory,
        memory_stage,
        tokens_per_sec_per_gpu,
        infeasibility,
    })
}

/// Mean per-rank time spent in pipeline-boundary SendRecv kernels —
/// the trace-walking twin of
/// [`lumos_cluster::EngineMetrics::pipeline_comm_secs_per_rank`], fed
/// to [`lumos_model::ScheduleAdjustment::apply_secs`] so the analytic
/// screen and the metrics-only refinement apply identical arithmetic.
fn pipeline_comm_secs_per_rank(trace: &ClusterTrace) -> f64 {
    let world = trace.world_size().max(1) as f64;
    let total_ns: u128 = trace
        .ranks()
        .iter()
        .flat_map(|r| r.kernels())
        .filter_map(|e| match e.kind {
            EventKind::Kernel {
                class: KernelClass::Collective(meta),
                ..
            } if meta.kind == CollectiveKind::SendRecv => Some(e.dur.as_ns() as u128),
            _ => None,
        })
        .sum();
    total_ns as f64 / 1e9 / world
}
