//! The search-space descriptor: value grids per axis plus the
//! world-size divisibility lattice.

use lumos_model::{ScheduleKind, TrainingSetup};

/// One architecture variant in the (optional) architecture axis —
/// the shapes [`lumos_core::manipulate::Transform`] can reach from a
/// recorded trace (layer count and width).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchPoint {
    /// Display label (e.g. `16L-d4096`).
    pub label: String,
    /// Transformer layer count.
    pub layers: u32,
    /// Hidden size (`d_model`).
    pub hidden: u64,
    /// Feed-forward size (`d_ffn`).
    pub ffn: u64,
}

impl ArchPoint {
    /// A labeled architecture point.
    pub fn new(label: impl Into<String>, layers: u32, hidden: u64, ffn: u64) -> Self {
        ArchPoint {
            label: label.into(),
            layers,
            hidden,
            ffn,
        }
    }
}

/// A what-if configuration search space.
///
/// Each axis is a value grid; an **empty axis means "keep the base
/// setup's value"**. Enumeration walks the cartesian product and
/// rejects lattice violations (see [`crate::enumerate_candidates`]):
///
/// * world size `tp × pp × dp` must be in [`SpaceSpec::gpus`] when
///   given, and never exceed [`SpaceSpec::max_gpus`];
/// * layers must divide into `pp` stages (and into `pp × v` chunks
///   when interleaving), heads into `tp` shards;
/// * TP rescales must preserve collective structure
///   (`tp = 1 ↔ tp > 1` changes are trace-unreachable, per §3.4).
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceSpec {
    /// Tensor-parallel degrees.
    pub tp: Vec<u32>,
    /// Pipeline-parallel degrees.
    pub pp: Vec<u32>,
    /// Data-parallel degrees.
    pub dp: Vec<u32>,
    /// Micro-batch counts per iteration.
    pub microbatches: Vec<u32>,
    /// Interleaved-1F1B virtual-chunk counts (`1` = plain 1F1B).
    pub interleave: Vec<u32>,
    /// Pipeline schedules to enumerate (registry handles); empty =
    /// keep the base setup's schedule.
    pub schedules: Vec<ScheduleKind>,
    /// Exact allowed world sizes (cluster sizes); `None` = any size
    /// within budget.
    pub gpus: Option<Vec<u32>>,
    /// Hard GPU budget (default 1024).
    pub max_gpus: u32,
    /// Architecture variants; empty = base architecture only.
    pub arch: Vec<ArchPoint>,
}

impl SpaceSpec {
    /// A spec over the three parallelism axes with everything else at
    /// base values.
    pub fn deployment_grid(tp: &[u32], pp: &[u32], dp: &[u32]) -> Self {
        SpaceSpec {
            tp: tp.to_vec(),
            pp: pp.to_vec(),
            dp: dp.to_vec(),
            ..SpaceSpec::empty()
        }
    }

    /// The all-empty spec: one candidate, the base configuration.
    /// Alias of [`Default::default`].
    pub fn empty() -> Self {
        SpaceSpec::default()
    }

    /// Sets the micro-batch axis (builder style).
    pub fn with_microbatches(mut self, microbatches: &[u32]) -> Self {
        self.microbatches = microbatches.to_vec();
        self
    }

    /// Sets the interleave axis (builder style).
    pub fn with_interleave(mut self, interleave: &[u32]) -> Self {
        self.interleave = interleave.to_vec();
        self
    }

    /// Sets the schedule axis (builder style).
    pub fn with_schedules(mut self, schedules: &[ScheduleKind]) -> Self {
        self.schedules = schedules.to_vec();
        self
    }

    /// Restricts world sizes to exactly `gpus` (builder style).
    pub fn with_gpus(mut self, gpus: &[u32]) -> Self {
        self.gpus = Some(gpus.to_vec());
        self
    }

    /// Caps the GPU budget (builder style).
    pub fn with_max_gpus(mut self, max_gpus: u32) -> Self {
        self.max_gpus = max_gpus;
        self
    }

    /// Sets the architecture axis (builder style).
    pub fn with_arch(mut self, arch: Vec<ArchPoint>) -> Self {
        self.arch = arch;
        self
    }

    /// A copy with every axis sorted and deduplicated (enumeration
    /// order, and therefore ranking tie-breaks, are defined on the
    /// normalized spec).
    pub fn normalized(&self) -> Self {
        fn norm(axis: &[u32]) -> Vec<u32> {
            let mut v: Vec<u32> = axis.iter().copied().filter(|&x| x > 0).collect();
            v.sort_unstable();
            v.dedup();
            v
        }
        // Schedules dedup by name, preserving listing order (there
        // is no meaningful sort for policies).
        let mut schedules: Vec<ScheduleKind> = Vec::new();
        for s in &self.schedules {
            if !schedules.contains(s) {
                schedules.push(*s);
            }
        }
        SpaceSpec {
            tp: norm(&self.tp),
            pp: norm(&self.pp),
            dp: norm(&self.dp),
            microbatches: norm(&self.microbatches),
            interleave: norm(&self.interleave),
            schedules,
            gpus: self.gpus.as_deref().map(norm),
            max_gpus: self.max_gpus,
            arch: self.arch.clone(),
        }
    }

    /// The axis values actually enumerated against `base` (empty axes
    /// resolve to the base value).
    pub(crate) fn resolved_axes(&self, base: &TrainingSetup) -> ResolvedAxes {
        let spec = self.normalized();
        let or_base = |axis: Vec<u32>, base_value: u32| {
            if axis.is_empty() {
                vec![base_value]
            } else {
                axis
            }
        };
        ResolvedAxes {
            tp: or_base(spec.tp, base.parallelism.tp),
            pp: or_base(spec.pp, base.parallelism.pp),
            dp: or_base(spec.dp, base.parallelism.dp),
            microbatches: or_base(spec.microbatches, base.batch.num_microbatches),
            interleave: or_base(spec.interleave, 1),
            schedules: if spec.schedules.is_empty() {
                vec![base.schedule]
            } else {
                spec.schedules
            },
            gpus: spec.gpus,
            max_gpus: spec.max_gpus,
            arch_points: spec.arch,
        }
    }

    /// Upper bound on the number of grid points before lattice
    /// filtering (useful for progress displays and sanity checks).
    pub fn grid_upper_bound(&self, base: &TrainingSetup) -> usize {
        let axes = self.resolved_axes(base);
        let arch = axes.arch_points.len().max(1);
        axes.tp.len()
            * axes.pp.len()
            * axes.dp.len()
            * axes.microbatches.len()
            * axes.interleave.len()
            * axes.schedules.len()
            * arch
    }
}

impl Default for SpaceSpec {
    /// Every axis empty (= base value) under the default 1024-GPU
    /// budget. Implemented by hand so `..Default::default()` struct
    /// updates never produce the degenerate `max_gpus = 0` budget
    /// that would reject every candidate.
    fn default() -> Self {
        SpaceSpec {
            tp: Vec::new(),
            pp: Vec::new(),
            dp: Vec::new(),
            microbatches: Vec::new(),
            interleave: Vec::new(),
            schedules: Vec::new(),
            gpus: None,
            max_gpus: 1024,
            arch: Vec::new(),
        }
    }
}

/// Axes after base-value substitution and normalization.
pub(crate) struct ResolvedAxes {
    pub tp: Vec<u32>,
    pub pp: Vec<u32>,
    pub dp: Vec<u32>,
    pub microbatches: Vec<u32>,
    pub interleave: Vec<u32>,
    pub schedules: Vec<ScheduleKind>,
    pub gpus: Option<Vec<u32>>,
    pub max_gpus: u32,
    pub arch_points: Vec<ArchPoint>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_model::{ModelConfig, Parallelism};

    #[test]
    fn normalization_sorts_dedups_and_drops_zero() {
        let spec = SpaceSpec::deployment_grid(&[4, 2, 2, 0], &[1], &[8, 1]);
        let n = spec.normalized();
        assert_eq!(n.tp, vec![2, 4]);
        assert_eq!(n.dp, vec![1, 8]);
    }

    #[test]
    fn default_matches_empty_and_keeps_the_budget() {
        assert_eq!(SpaceSpec::default(), SpaceSpec::empty());
        let via_update = SpaceSpec {
            dp: vec![1, 2],
            ..Default::default()
        };
        assert_eq!(via_update.max_gpus, 1024);
    }

    #[test]
    fn empty_axes_resolve_to_base() {
        let base = TrainingSetup::new(ModelConfig::tiny(), Parallelism::new(1, 2, 1).unwrap());
        let axes = SpaceSpec::empty().resolved_axes(&base);
        assert_eq!(axes.tp, vec![1]);
        assert_eq!(axes.pp, vec![2]);
        assert_eq!(axes.dp, vec![1]);
        assert_eq!(axes.microbatches, vec![base.batch.num_microbatches]);
        assert_eq!(axes.interleave, vec![1]);
    }

    #[test]
    fn grid_upper_bound_is_axis_product() {
        let base = TrainingSetup::new(ModelConfig::tiny(), Parallelism::new(1, 2, 1).unwrap());
        let spec =
            SpaceSpec::deployment_grid(&[1, 2], &[1, 2], &[1, 2, 4]).with_microbatches(&[2, 4]);
        assert_eq!(spec.grid_upper_bound(&base), 2 * 2 * 3 * 2);
    }
}
