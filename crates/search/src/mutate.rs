//! Mutation operators over the mixed-radix grid: where the adaptive
//! engine proposes new candidates from a frontier parent.
//!
//! Three families, mirroring how good parallelism configs cluster:
//!
//! * **single-axis neighbor moves** — step one axis one notch (±1 in
//!   its sorted value grid): the local hill-climb that polishes
//!   micro-batch counts and interleave depth;
//! * **divisibility-lattice jumps** — step two parallelism axes in
//!   opposite directions at once (e.g. pp up, dp down): these travel
//!   roughly along the iso-world-size surface where the GPU-budget
//!   lattice keeps candidates admissible;
//! * **random re-rolls** — replace one axis (or the whole coordinate)
//!   with a uniform draw: the escape hatch out of exhausted regions.
//!
//! All draws come from the run's single [`SplitMix64`], so a fixed
//! `--seed` replays the identical proposal stream.

use crate::enumerate::{Grid, AXES};
use crate::power::SplitMix64;

/// Decode-order positions of the parallelism axes (dp, pp, tp) the
/// lattice jumps pair up.
const PARALLEL_AXES: [usize; 3] = [2, 3, 4];

/// Proposes mutated grid indices of `parent` into `out` (duplicates
/// and already-visited indices are filtered by the caller).
pub(crate) fn propose(grid: &Grid<'_>, parent: usize, rng: &mut SplitMix64, out: &mut Vec<usize>) {
    let dims = grid.dims();
    let coords = grid.coords(parent);

    // Single-axis neighbor moves: every axis, both directions.
    for axis in 0..AXES {
        if dims[axis] <= 1 {
            continue;
        }
        for step in [-1isize, 1] {
            if let Some(next) = step_axis(&coords, axis, step, &dims) {
                out.push(grid.index_of(&next));
            }
        }
    }

    // Divisibility-lattice jumps: two random parallelism axes stepped
    // in opposite directions (two attempts per parent).
    for _ in 0..2 {
        let a = PARALLEL_AXES[rng.below(PARALLEL_AXES.len())];
        let b = PARALLEL_AXES[rng.below(PARALLEL_AXES.len())];
        if a == b || dims[a] <= 1 || dims[b] <= 1 {
            continue;
        }
        let dir = if rng.below(2) == 0 { 1isize } else { -1 };
        if let Some(half) = step_axis(&coords, a, dir, &dims) {
            if let Some(full) = step_axis(&half, b, -dir, &dims) {
                out.push(grid.index_of(&full));
            }
        }
    }

    // Random re-rolls: one axis uniformly re-drawn, plus one fully
    // random coordinate.
    let axis = rng.below(AXES);
    if dims[axis] > 1 {
        let mut next = coords;
        next[axis] = rng.below(dims[axis]);
        out.push(grid.index_of(&next));
    }
    out.push(rng.below(grid.total().max(1)));
}

/// `coords` with `axis` stepped by `step`, or `None` when that walks
/// off the axis.
fn step_axis(
    coords: &[usize; AXES],
    axis: usize,
    step: isize,
    dims: &[usize; AXES],
) -> Option<[usize; AXES]> {
    let digit = coords[axis] as isize + step;
    if digit < 0 || digit >= dims[axis] as isize {
        return None;
    }
    let mut next = *coords;
    next[axis] = digit as usize;
    Some(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpaceSpec;
    use lumos_model::{ModelConfig, Parallelism, TrainingSetup};

    fn grid_fixture(base: &TrainingSetup) -> Grid<'_> {
        let spec = SpaceSpec::deployment_grid(&[2, 4], &[1, 2, 4], &[1, 2, 4])
            .with_microbatches(&[2, 4, 8]);
        Grid::new(&spec, base)
    }

    #[test]
    fn proposals_stay_in_the_grid_and_replay_deterministically() {
        let base = TrainingSetup::new(ModelConfig::tiny(), Parallelism::new(2, 1, 1).unwrap());
        let grid = grid_fixture(&base);
        let parent = grid.total() / 2;
        let mut a = Vec::new();
        let mut b = Vec::new();
        propose(&grid, parent, &mut SplitMix64::new(11), &mut a);
        propose(&grid, parent, &mut SplitMix64::new(11), &mut b);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|&i| i < grid.total()));
    }

    #[test]
    fn neighbor_moves_change_exactly_one_axis() {
        let base = TrainingSetup::new(ModelConfig::tiny(), Parallelism::new(2, 1, 1).unwrap());
        let grid = grid_fixture(&base);
        let parent = 0;
        let mut proposals = Vec::new();
        propose(&grid, parent, &mut SplitMix64::new(3), &mut proposals);
        let parent_coords = grid.coords(parent);
        // The first proposals are the deterministic neighbor moves;
        // each differs from the parent in exactly one axis by one.
        let one_axis_steps = proposals
            .iter()
            .take_while(|&&p| {
                let c = grid.coords(p);
                let diffs: Vec<usize> = (0..AXES).filter(|&x| c[x] != parent_coords[x]).collect();
                diffs.len() == 1 && c[diffs[0]].abs_diff(parent_coords[diffs[0]]) == 1
            })
            .count();
        assert!(one_axis_steps >= 4);
    }
}
