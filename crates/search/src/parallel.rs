//! Worker-pool sizing for the streaming evaluator.
//!
//! The engine itself lives in `evaluate::run_streaming`: workers are
//! plain `std::thread::scope` threads claiming grid indices from one
//! shared atomic cursor, so load imbalance between candidates
//! self-levels without a work-stealing runtime (the usual crate for
//! this is `rayon`; this workspace builds offline).

/// Resolves the worker count: explicit override, else available
/// parallelism, never more than `jobs` and never zero.
pub fn effective_threads(requested: Option<usize>, jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    requested.unwrap_or(hw).clamp(1, jobs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(Some(16), 3), 3);
        assert_eq!(effective_threads(Some(0), 3), 1);
        assert!(effective_threads(None, 100) >= 1);
        assert_eq!(effective_threads(Some(2), 0), 1);
    }
}
