//! Worker-pool sizing and the shared atomic-cursor claim loop.
//!
//! Every parallel walk in the workspace — the streaming evaluator
//! (`evaluate::run_streaming`), `lumos lint`'s space-file mode, and
//! the adaptive engine's batches and verification sweep — shards the
//! same way: plain `std::thread::scope` threads claiming indices from
//! one shared atomic cursor ([`Claims`]), so load imbalance between
//! items self-levels without a work-stealing runtime (the usual crate
//! for this is `rayon`; this workspace builds offline).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves the worker count: explicit override, else available
/// parallelism, never more than `jobs` and never zero.
pub fn effective_threads(requested: Option<usize>, jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    requested.unwrap_or(hw).clamp(1, jobs.max(1))
}

/// One shared work cursor over `0..total`: workers call [`Claims::next`]
/// until it returns `None`. Claiming is a single relaxed `fetch_add`,
/// so the only coordination cost per item is one atomic RMW.
pub struct Claims {
    cursor: AtomicUsize,
    total: usize,
}

impl Claims {
    /// A fresh cursor over `0..total`.
    pub fn new(total: usize) -> Self {
        Claims {
            cursor: AtomicUsize::new(0),
            total,
        }
    }

    /// Claims the next unprocessed index, or `None` when the range is
    /// exhausted.
    pub fn next(&self) -> Option<usize> {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some(i)
    }

    /// Indices handed out so far (may overshoot `total` by up to the
    /// worker count once the range drains).
    pub fn claimed(&self) -> usize {
        self.cursor.load(Ordering::Relaxed).min(self.total)
    }
}

/// Runs `worker` on `threads` scoped threads against one shared
/// [`Claims`] cursor over `0..total`, returning each thread's result
/// in spawn order.
///
/// The worker owns its claim loop (`while let Some(i) = claims.next()`)
/// so it can bail early on cancellation or deadline; per-thread results
/// are merged by the caller, which keeps the hot path free of shared
/// locks.
pub fn run_claimed<T, F>(threads: usize, total: usize, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &Claims) -> T + Sync,
{
    let claims = Claims::new(total);
    let (claims, worker) = (&claims, &worker);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads.max(1))
            .map(|t| s.spawn(move || worker(t, claims)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("search worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(Some(16), 3), 3);
        assert_eq!(effective_threads(Some(0), 3), 1);
        assert!(effective_threads(None, 100) >= 1);
        assert_eq!(effective_threads(Some(2), 0), 1);
    }

    #[test]
    fn claims_cover_the_range_exactly_once() {
        for threads in [1usize, 2, 4, 7] {
            let per_thread = run_claimed(threads, 100, |_, claims| {
                let mut mine = Vec::new();
                while let Some(i) = claims.next() {
                    mine.push(i);
                }
                mine
            });
            let mut all: Vec<usize> = per_thread.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn claimed_saturates_at_total() {
        let claims = Claims::new(2);
        assert_eq!(claims.next(), Some(0));
        assert_eq!(claims.next(), Some(1));
        assert_eq!(claims.next(), None);
        assert_eq!(claims.next(), None);
        assert_eq!(claims.claimed(), 2);
    }

    #[test]
    fn empty_range_spawns_but_claims_nothing() {
        let results = run_claimed(3, 0, |t, claims| {
            assert!(claims.next().is_none());
            t
        });
        assert_eq!(results, vec![0, 1, 2]);
    }
}
