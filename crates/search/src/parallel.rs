//! A small deterministic fork-join pool over `std::thread::scope`.
//!
//! The usual crate for this is `rayon`; this workspace builds offline,
//! so the evaluator uses this ~60-line work-stealing map instead.
//! Results land in their input slots, so the output order — and
//! therefore everything ranked from it — is independent of thread
//! count and scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves the worker count: explicit override, else available
/// parallelism, never more than `jobs` and never zero.
pub fn effective_threads(requested: Option<usize>, jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    requested.unwrap_or(hw).clamp(1, jobs.max(1))
}

/// Applies `f` to every item on `threads` workers, returning results
/// in input order. Items are claimed from a shared atomic cursor, so
/// load imbalance between candidates self-levels.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 7] {
            let out = parallel_map(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[5u32], 4, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(Some(16), 3), 3);
        assert_eq!(effective_threads(Some(0), 3), 1);
        assert!(effective_threads(None, 100) >= 1);
        assert_eq!(effective_threads(Some(2), 0), 1);
    }
}
