//! Search-level errors.

use lumos_core::CoreError;
use std::fmt;

/// A failed search run.
#[derive(Debug)]
pub enum SearchError {
    /// Every grid point was rejected by the lattice.
    EmptySpace {
        /// Grid points visited.
        enumerated: usize,
        /// Grid points rejected.
        rejected: usize,
    },
    /// A candidate's graph manipulation or simulation failed.
    Evaluation {
        /// The candidate's label.
        candidate: String,
        /// The underlying failure.
        source: CoreError,
    },
    /// Extracting the shared block library from the base trace failed
    /// (e.g. the trace lacks layer annotations), so no candidate can
    /// be priced.
    Extraction {
        /// The underlying failure.
        source: CoreError,
    },
    /// Profiling the base configuration failed (trace-less entry
    /// point).
    BaseProfile(String),
    /// Phase-two refinement of a finalist failed: its configuration
    /// could not be lowered to per-rank programs, or the discrete-
    /// event engine could not execute them.
    Refinement {
        /// The finalist's label.
        candidate: String,
        /// What failed.
        detail: String,
    },
    /// Static verification ([`lumos_cluster::verify`]) rejected a
    /// finalist's lowered program before simulation
    /// ([`crate::SearchOptions::verify`]).
    InvalidProgram {
        /// The finalist's label.
        candidate: String,
        /// The violation found.
        source: lumos_cluster::VerifyError,
    },
    /// A malformed space-spec file.
    Spec(String),
    /// A schedule name (CLI flag or spec-file `schedules` axis) that
    /// no registered [`lumos_model::Schedule`] answers to.
    UnknownSchedule {
        /// The unresolved name.
        name: String,
        /// The registry's known set, comma-joined for display.
        known: String,
    },
    /// The run was cancelled cooperatively before completing: its
    /// wall-clock deadline ([`crate::SearchOptions::deadline`])
    /// expired, or its cancel flag ([`crate::SearchOptions::cancel`])
    /// was raised. Partial results are discarded — a truncated grid
    /// walk cannot claim to contain the true top-k.
    DeadlineExceeded,
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::EmptySpace {
                enumerated,
                rejected,
            } => write!(
                f,
                "search space is empty: all {enumerated} grid points rejected \
                 ({rejected} lattice violations)"
            ),
            SearchError::Evaluation { candidate, source } => {
                write!(f, "evaluating candidate {candidate}: {source}")
            }
            SearchError::Extraction { source } => {
                write!(f, "extracting blocks from the base trace: {source}")
            }
            SearchError::BaseProfile(msg) => write!(f, "profiling base configuration: {msg}"),
            SearchError::Refinement { candidate, detail } => {
                write!(f, "refining finalist {candidate}: {detail}")
            }
            SearchError::InvalidProgram { candidate, source } => {
                write!(f, "verifying finalist {candidate}: {source}")
            }
            SearchError::Spec(msg) => write!(f, "invalid space spec: {msg}"),
            SearchError::UnknownSchedule { name, known } => {
                write!(f, "unknown schedule `{name}` (known: {known})")
            }
            SearchError::DeadlineExceeded => write!(
                f,
                "search cancelled: deadline exceeded before the run completed"
            ),
        }
    }
}

impl std::error::Error for SearchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SearchError::Evaluation { source, .. } | SearchError::Extraction { source } => {
                Some(source)
            }
            SearchError::InvalidProgram { source, .. } => Some(source),
            _ => None,
        }
    }
}
