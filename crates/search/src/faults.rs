//! The fault-robustness pass of simulation refinement: rank
//! configurations by how they hold up when things go wrong.
//!
//! Jitter replicas ([`crate::refine`]) answer "how does this finalist
//! behave under *healthy* run-to-run variance?". This pass answers the
//! harsher question: with a [`lumos_cluster::FaultSpec`]'s stragglers, degradation
//! windows, and rank failures injected, what makespan should the
//! planner *expect*, and how bad is the tail? Per finalist it executes
//! `fault_replicas` deterministic scenario replicas through the
//! metrics-only engine path
//! ([`lumos_cluster::PreparedJob::execute_metrics_faulted`]) and
//! reports:
//!
//! * **expected** — mean effective makespan across replicas (the
//!   re-ranking key when the pass runs: optimize for expected time
//!   under faults, not the clean point estimate);
//! * **p95** — nearest-rank tail makespan;
//! * **degradation** — `(expected − clean) / clean`, how much the
//!   fault mix costs this configuration on average;
//! * **robustness** — `clean / p95` in `(0, 1]`: 1.0 means even the
//!   tail replica is no slower than the clean run.
//!
//! Replica `r` of a finalist is sampled as
//! [`lumos_cluster::FaultSpec::realize`]`(fault_seed, r, world)` — a pure hash of
//! `(seed, replica, site)`, so rankings are byte-identical across
//! thread counts and replays. Elastic-failure replicas additionally
//! need the **survivor configuration** (one fewer data-parallel
//! replica, same everything else) simulated; it is lowered and
//! executed at most once per finalist, lazily, and its makespan is
//! rescaled by `dp / (dp − 1)` so the survivor processes the same
//! global batch. Finalists with `dp = 1` have no survivor to shrink
//! to — elastic recovery degrades to checkpoint restart there.

use crate::candidate::Candidate;
use crate::error::SearchError;
use crate::evaluate::CandidateResult;
use crate::refine::adjusted_makespan;
use crate::SearchOptions;
use lumos_cluster::{lower, JitterModel, MeasuredStats, PreparedJob};
use lumos_cost::{CostModel, HostOverheads, LookupCostModel};
use lumos_model::Parallelism;
use lumos_trace::Dur;

/// Robustness statistics from the fault-scenario pass of one finalist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultStats {
    /// Deterministic fault replicas executed.
    pub replicas: u32,
    /// Mean effective makespan across replicas (recovery costs
    /// included) — the robust ranking key.
    pub expected: Dur,
    /// Nearest-rank 95th-percentile effective makespan.
    pub p95: Dur,
    /// Signed relative delta `(expected − clean) / clean`: what the
    /// fault mix costs this configuration on average.
    pub degradation: f64,
    /// Robustness score `clean / p95`, clamped into `(0, 1]`: 1.0
    /// means the tail fault replica is no slower than the clean run.
    pub robustness: f64,
}

/// Executes the fault-replica pass for one finalist. Returns `None`
/// when the pass is off (no spec, an empty spec, or zero replicas) —
/// the caller's output is then byte-identical to a fault-less run.
///
/// `engine_clean` is the finalist's *unadjusted* engine makespan
/// (degradation windows are fractions of the engine timeline);
/// `simulated` is the adjusted clean makespan every replica's
/// effective time is compared against.
pub(crate) fn fault_pass<C>(
    finalist: &CandidateResult,
    opts: &SearchOptions,
    lookup: &LookupCostModel<C>,
    overheads: &HostOverheads,
    prep: &PreparedJob<'_>,
    engine_clean: Dur,
    simulated: Dur,
) -> Result<Option<FaultStats>, SearchError>
where
    C: CostModel,
{
    let Some(spec) = &opts.fault_spec else {
        return Ok(None);
    };
    if spec.is_empty() || opts.fault_replicas == 0 {
        return Ok(None);
    }
    let fail = |detail: String| SearchError::Refinement {
        candidate: finalist.label.clone(),
        detail,
    };
    let cand = &finalist.candidate;
    let setup = &finalist.setup;
    let world = setup.parallelism.world_size();
    let no_jitter = JitterModel::none();

    // The elastic survivor (dp − 1) is simulated at most once, the
    // first time a replica needs it. `Some(None)` = tried and
    // unavailable (dp = 1 or the survivor will not lower).
    let mut survivor_s: Option<Option<f64>> = None;

    let mut iterations = Vec::with_capacity(opts.fault_replicas as usize);
    for replica in 0..opts.fault_replicas {
        let real = spec.realize(opts.fault_seed, replica, world);
        if real.is_clean() {
            iterations.push(simulated);
            continue;
        }
        let scenario = real.compile(world, engine_clean);
        let faulted = if scenario.is_identity() {
            // Failure-only replica: the engine timeline is the clean
            // one; only the recovery arithmetic differs.
            simulated
        } else {
            let out = prep
                .execute_metrics_faulted(lookup, overheads, &no_jitter, 0, &scenario)
                .map_err(|e| fail(format!("engine (fault replica {replica}): {e}")))?;
            adjusted_makespan(cand, setup, out.makespan, out.pipeline_comm_secs_per_rank())
                .map_err(&fail)?
        };
        let survivor = if real.wants_survivor() {
            *survivor_s
                .get_or_insert_with(|| survivor_iteration_s(finalist, opts, lookup, overheads))
        } else {
            None
        };
        let effective = real.effective_iteration_s(faulted.as_secs_f64(), survivor);
        iterations.push(Dur::from_secs_f64(effective));
    }

    let stats = MeasuredStats { iterations };
    let (expected, p95) = (stats.mean(), stats.p95());
    let clean_s = simulated.as_secs_f64();
    let degradation = if clean_s > 0.0 {
        (expected.as_secs_f64() - clean_s) / clean_s
    } else {
        0.0
    };
    let robustness = if p95.is_zero() {
        1.0
    } else {
        (clean_s / p95.as_secs_f64()).min(1.0)
    };
    Ok(Some(FaultStats {
        replicas: opts.fault_replicas,
        expected,
        p95,
        degradation,
        robustness,
    }))
}

/// Simulates the elastic survivor configuration of a finalist: the
/// same deployment with one fewer data-parallel replica, makespan
/// rescaled by `dp / (dp − 1)` to conserve the global batch. `None`
/// when no survivor exists (`dp = 1`) or the survivor configuration
/// fails to lower/execute — elastic recovery then degrades to
/// checkpoint restart rather than failing the search.
fn survivor_iteration_s<C>(
    finalist: &CandidateResult,
    opts: &SearchOptions,
    lookup: &LookupCostModel<C>,
    overheads: &HostOverheads,
) -> Option<f64>
where
    C: CostModel,
{
    let setup = &finalist.setup;
    let dp = setup.parallelism.dp;
    if dp < 2 {
        return None;
    }
    let parallelism = Parallelism::new(setup.parallelism.tp, setup.parallelism.pp, dp - 1).ok()?;
    let mut survivor = setup.clone();
    survivor.parallelism = parallelism;
    let job = lower(&survivor).ok()?;
    if opts.verify {
        lumos_cluster::verify(&job).ok()?;
    }
    let prep = PreparedJob::new(&job).ok()?;
    let out = prep
        .execute_metrics(lookup, overheads, &JitterModel::none(), 0)
        .ok()?;
    let cand = Candidate {
        dp: dp - 1,
        ..finalist.candidate
    };
    let adjusted = adjusted_makespan(
        &cand,
        &survivor,
        out.makespan,
        out.pipeline_comm_secs_per_rank(),
    )
    .ok()?;
    Some(adjusted.as_secs_f64() * dp as f64 / (dp - 1) as f64)
}
