//! Parallel what-if configuration search over the Lumos estimation
//! stack.
//!
//! Lumos's headline capability is cheap what-if estimation: one
//! profiled trace plus graph manipulation (§3.4) prices a *new*
//! configuration in milliseconds instead of a cluster run. The obvious
//! consumer of that capability is not a single question but a *search*:
//! "over thousands of candidate (TP, PP, DP, micro-batch, interleave,
//! GPU-count) deployments, which feasible one trains fastest?" This
//! crate turns the one-at-a-time [`lumos_core::Lumos::predict`] flow
//! into that engine:
//!
//! 1. **Describe** the space with a [`SpaceSpec`] — value grids per
//!    axis plus a world-size divisibility lattice (layer/head/chunk
//!    divisibility, GPU budget, structural TP constraints);
//! 2. **Enumerate** candidates deterministically
//!    ([`enumerate_candidates`]), rejecting lattice violations before
//!    they cost anything;
//! 3. **Pre-prune** on memory feasibility via
//!    [`lumos_model::MemoryModel`] — configurations that would OOM
//!    never reach simulation, and every pruned candidate records the
//!    stage and byte requirement that killed it;
//! 4. **Evaluate** survivors in parallel: the trace-fitted
//!    [`lumos_cost::LookupCostModel`] is fitted **once** and shared
//!    (read-only) across worker threads, each of which reassembles the
//!    base execution graph under the candidate's transforms and
//!    replays it;
//! 5. **Rank** into a [`SearchReport`]: top-k by the chosen
//!    [`Objective`], per-candidate makespan/MFU/memory, and pruning
//!    statistics.
//!
//! Results are bit-for-bit deterministic: the same spec produces the
//! same report regardless of thread count.
//!
//! # Quickstart
//!
//! ```
//! use lumos_search::{search, Objective, SearchOptions, SpaceSpec};
//! use lumos_cluster::{GroundTruthCluster, JitterModel};
//! use lumos_cost::AnalyticalCostModel;
//! use lumos_model::{ModelConfig, Parallelism, TrainingSetup};
//!
//! // Profile one base iteration (in real use: load a Kineto trace).
//! let base = TrainingSetup::new(ModelConfig::tiny(), Parallelism::new(1, 2, 1)?);
//! let profiled = GroundTruthCluster::new(&base, AnalyticalCostModel::h100())?
//!     .with_jitter(JitterModel::realistic(7))
//!     .profile_iteration(0)?;
//!
//! // Search deployments of up to 8 GPUs reachable from that trace.
//! let spec = SpaceSpec::deployment_grid(&[1], &[1, 2], &[1, 2, 4]);
//! let report = search(
//!     &profiled.trace,
//!     &base,
//!     &spec,
//!     &SearchOptions::default(),
//!     AnalyticalCostModel::h100(),
//! )?;
//! assert!(!report.results.is_empty());
//! println!("{report}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod candidate;
mod enumerate;
mod error;
mod evaluate;
pub mod parallel;
mod prune;
mod report;
mod space;
pub mod spec_toml;

pub use candidate::Candidate;
pub use enumerate::{enumerate_candidates, EnumerationOutcome, RejectReason};
pub use error::SearchError;
pub use evaluate::CandidateResult;
pub use prune::{PruneStats, PrunedCandidate};
pub use report::{Objective, SearchReport};
pub use space::{ArchPoint, SpaceSpec};
pub use spec_toml::SpecFile;

use lumos_cost::{CostModel, GpuSpec};
use lumos_model::{MemoryModel, TrainingSetup};
use lumos_trace::ClusterTrace;

/// Knobs of one search run.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// What to rank by.
    pub objective: Objective,
    /// The device candidates must fit on (capacity bytes + peak
    /// FLOP/s for MFU).
    pub gpu: GpuSpec,
    /// Memory-model constants for the feasibility gate.
    pub memory_model: MemoryModel,
    /// Worker threads (`None` = available parallelism).
    pub threads: Option<usize>,
    /// GPUs per node, for collective-topology classification in the
    /// shared lookup cost model.
    pub gpus_per_node: u32,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            objective: Objective::PerGpuThroughput,
            gpu: GpuSpec::h100_sxm(),
            memory_model: MemoryModel::default(),
            threads: None,
            gpus_per_node: 8,
        }
    }
}

/// Runs the full search pipeline: enumerate → memory-prune →
/// parallel-evaluate → rank.
///
/// `trace` is the profiled base iteration and `base` the setup that
/// produced it; `fallback` prices kernel shapes absent from the trace
/// (shared read-only across workers, fitted once).
///
/// A report with **zero results** is a valid outcome: it means every
/// lattice-valid candidate was memory-pruned, and the report's
/// [`SearchReport::pruned`] list says why, per candidate.
///
/// # Errors
///
/// Returns [`SearchError::EmptySpace`] when no candidate survives the
/// lattice, and propagates manipulation/simulation failures from
/// candidate evaluation.
pub fn search<C>(
    trace: &ClusterTrace,
    base: &TrainingSetup,
    spec: &SpaceSpec,
    opts: &SearchOptions,
    fallback: C,
) -> Result<SearchReport, SearchError>
where
    C: CostModel + Send + Sync + 'static,
{
    let outcome = enumerate_candidates(spec, base);
    if outcome.candidates.is_empty() {
        return Err(SearchError::EmptySpace {
            enumerated: outcome.stats.enumerated,
            rejected: outcome.stats.structural_rejects
                + outcome.stats.divisibility_rejects
                + outcome.stats.budget_rejects,
        });
    }
    let (feasible, pruned) = prune::memory_gate(
        &outcome.candidates,
        &opts.memory_model,
        opts.gpu.memory_bytes(),
    );
    let mut stats = outcome.stats;
    stats.memory_pruned = pruned.len();
    stats.evaluated = feasible.len();

    let normalized = spec.normalized();
    let threads = parallel::effective_threads(opts.threads, feasible.len());
    let results =
        evaluate::evaluate_all(trace, base, &normalized, &feasible, opts, fallback, threads)?;
    let ranked = report::rank(results, opts.objective);

    Ok(SearchReport {
        base_label: base.label(),
        base_makespan: trace.makespan(),
        objective: opts.objective,
        results: ranked,
        pruned,
        stats,
        threads,
    })
}

/// Profiles one `seed`-jittered iteration of `base` on the
/// ground-truth cluster under the default H100 cost model — the base
/// trace for trace-less searches (the CLI's `--model` mode calls
/// this).
///
/// # Errors
///
/// Returns [`SearchError::BaseProfile`] on invalid configurations or
/// engine failures.
pub fn profile_base(base: &TrainingSetup, seed: u64) -> Result<ClusterTrace, SearchError> {
    use lumos_cluster::{GroundTruthCluster, JitterModel};

    let cluster = GroundTruthCluster::new(base, lumos_cost::AnalyticalCostModel::h100())
        .map_err(|e| SearchError::BaseProfile(e.to_string()))?
        .with_jitter(JitterModel::realistic(seed));
    Ok(cluster
        .profile_iteration(0)
        .map_err(|e| SearchError::BaseProfile(e.to_string()))?
        .trace)
}

/// One-call convenience: [`profile_base`] followed by [`search`] under
/// the default H100 analytical fallback.
///
/// # Errors
///
/// Propagates base-profiling and search failures.
pub fn profile_and_search(
    base: &TrainingSetup,
    spec: &SpaceSpec,
    opts: &SearchOptions,
    seed: u64,
) -> Result<SearchReport, SearchError> {
    let trace = profile_base(base, seed)?;
    search(
        &trace,
        base,
        spec,
        opts,
        lumos_cost::AnalyticalCostModel::h100(),
    )
}
