//! Parallel what-if configuration search over the Lumos estimation
//! stack.
//!
//! Lumos's headline capability is cheap what-if estimation: one
//! profiled trace plus graph manipulation (§3.4) prices a *new*
//! configuration in milliseconds instead of a cluster run. The obvious
//! consumer of that capability is not a single question but a *search*:
//! "over a million candidate (TP, PP, DP, micro-batch, interleave,
//! GPU-count) deployments, which feasible one trains fastest?" This
//! crate turns the one-at-a-time [`lumos_core::Lumos::predict`] flow
//! into that engine:
//!
//! 1. **Describe** the space with a [`SpaceSpec`] — value grids per
//!    axis plus a world-size divisibility lattice (layer/head/chunk
//!    divisibility, GPU budget, structural TP constraints);
//! 2. **Stream** candidates: the grid is a mixed-radix index space
//!    decoded on demand ([`CandidateStream`]), never a materialized
//!    vector, so enumeration costs O(1) memory however large the
//!    space. Worker threads claim grid indices from one atomic
//!    cursor; lattice violations are rejected before they cost
//!    anything;
//! 3. **Pre-prune** on memory feasibility via
//!    [`lumos_model::MemoryModel`] — configurations that would OOM
//!    never reach simulation, and every pruned candidate records the
//!    stage and byte requirement that killed it;
//! 4. **Skip dominated candidates**: per-stage compute costs are
//!    derived once per [`lumos_model::StageCostKey`] and memoized
//!    across every candidate that differs only in PP/DP/micro-batch
//!    count/interleave. The memo feeds a sound analytic lower bound
//!    on iteration time; once a worker's top-k heap is full,
//!    candidates whose bound is strictly worse than the heap's worst
//!    entry are counted ([`PruneStats::bound_skipped`]) and never
//!    fully simulated — without changing the reported top-k;
//! 5. **Evaluate** the rest in parallel: the trace-fitted
//!    [`lumos_cost::LookupCostModel`] and the reassembly block
//!    library are each built **once** and shared read-only across
//!    workers, which reassemble the base execution graph under the
//!    candidate's transforms and replay it. Degenerate candidates
//!    (zero makespan, bubble → 1, missing peak FLOP/s, non-finite
//!    objective) become typed [`Infeasibility`] rejections instead of
//!    NaN-ranked garbage;
//! 6. **Rank** into a [`SearchReport`]: bounded per-worker top-k
//!    heaps merged under a NaN-safe total order ([`f64::total_cmp`],
//!    non-finite keys strictly last, enumeration index as tie-break).
//!    With [`SearchOptions::top_k`] set, peak memory is proportional
//!    to `top_k × threads` — not to the size of the space — and the
//!    result is byte-identical to ranking every candidate;
//! 7. **Refine** (optional, [`SearchOptions::refine_sim`]): lower each
//!    analytic finalist to a full multi-rank program and execute it
//!    through the ground-truth discrete-event engine
//!    ([`lumos_cluster`]) in parallel, against the same shared
//!    trace-fitted cost model — re-ranking the finals by the search
//!    objective re-evaluated at the simulated makespan (overlap, host
//!    dispatch, and collective rendezvous included) and
//!    reporting the analytic-vs-simulated delta per finalist, plus
//!    deterministic jitter-replica robustness statistics
//!    (mean/p95/stability) when [`SearchOptions::jitter_replicas`] is
//!    set.
//!
//! For spaces too large to walk at all, [`SearchOptions::adaptive`]
//! swaps the exhaustive enumeration for the corpus-guided engine:
//! deterministic seed probes, a power-scheduled mutation frontier
//! (single-axis neighbor moves plus divisibility-lattice jumps), and
//! — on spaces small enough — a screened verification sweep that
//! proves the adaptive answer *equals* the exhaustive top-k while
//! fully simulating only a fraction of the grid.
//! [`SearchReport::adaptive`] records how the run terminated
//! ([`AdaptiveOutcome`]), and a fixed [`SearchOptions::seed`] replays
//! the run byte-identically.
//!
//! Reported top-k results are bit-for-bit deterministic: the same spec
//! produces the same ranking regardless of thread count or how workers
//! happened to carve up the grid. (Skip *counters* may vary across
//! runs — they depend on how early each worker's heap filled — but
//! which candidates appear in the report never does.)
//!
//! # Quickstart
//!
//! ```
//! use lumos_search::{search, Objective, SearchOptions, SpaceSpec};
//! use lumos_cluster::{GroundTruthCluster, JitterModel};
//! use lumos_cost::AnalyticalCostModel;
//! use lumos_model::{ModelConfig, Parallelism, TrainingSetup};
//!
//! // Profile one base iteration (in real use: load a Kineto trace).
//! let base = TrainingSetup::new(ModelConfig::tiny(), Parallelism::new(1, 2, 1)?);
//! let profiled = GroundTruthCluster::new(&base, AnalyticalCostModel::h100())?
//!     .with_jitter(JitterModel::realistic(7))
//!     .profile_iteration(0)?;
//!
//! // Search deployments of up to 8 GPUs reachable from that trace,
//! // keeping only the 5 best in memory.
//! let spec = SpaceSpec::deployment_grid(&[1], &[1, 2], &[1, 2, 4]);
//! let opts = SearchOptions {
//!     top_k: Some(5),
//!     ..SearchOptions::default()
//! };
//! let report = search(
//!     &profiled.trace,
//!     &base,
//!     &spec,
//!     &opts,
//!     AnalyticalCostModel::h100(),
//! )?;
//! assert!(!report.results.is_empty());
//! println!("{report}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod candidate;
mod corpus;
mod enumerate;
mod error;
mod evaluate;
mod faults;
mod memo;
mod mutate;
pub mod parallel;
mod power;
mod prune;
mod refine;
mod report;
mod space;
pub mod spec_toml;

pub use adaptive::{AdaptiveOutcome, AdaptiveReport};
pub use candidate::Candidate;
pub use enumerate::{
    enumerate_candidates, CandidateStream, EnumeratedCandidate, EnumerationOutcome, RejectReason,
};
pub use error::SearchError;
pub use evaluate::{CandidateResult, Infeasibility, RejectedCandidate};
pub use faults::FaultStats;
pub use memo::SharedStageMemo;
pub use prune::{memory_gate, MemoStats, PruneStats, PrunedCandidate};
pub use refine::{JitterStats, RefinedResult};
pub use report::{rank, Objective, SearchReport};
pub use space::{ArchPoint, SpaceSpec};
pub use spec_toml::SpecFile;

use lumos_calib::CalibrationArtifact;
use lumos_core::manipulate::BlockLibrary;
use lumos_cost::{CostModel, GpuSpec, LookupCostModel};
use lumos_model::{MemoryModel, TrainingSetup};
use lumos_trace::{ClusterTrace, Dur};
use std::fmt;
use std::sync::Arc;

/// Finalists refined when no retention bound is set
/// ([`SearchOptions::top_k`] = `None`, the `--keep-all` path): phase
/// two lowers and engine-executes each finalist, so it must stay a
/// short list even when the screen retained the whole space.
const DEFAULT_REFINE_FINALISTS: usize = 16;

/// A live progress snapshot of a streaming search, delivered to
/// [`SearchOptions::progress`] roughly every 5% of the grid (at most
/// every 65 536 grid points).
#[derive(Debug, Clone, Copy)]
pub struct SearchProgress {
    /// Total grid points in the space.
    pub grid_points: usize,
    /// Grid points claimed by workers so far.
    pub claimed: usize,
    /// Candidates fully simulated so far.
    pub evaluated: usize,
    /// Candidates cut by the memory gate so far.
    pub memory_pruned: usize,
    /// Candidates skipped by the analytic lower bound so far.
    pub bound_skipped: usize,
}

/// A progress callback, invoked from worker threads (keep it cheap and
/// thread-safe — e.g. a line to stderr).
#[derive(Clone)]
pub struct ProgressSink(pub Arc<dyn Fn(SearchProgress) + Send + Sync>);

impl ProgressSink {
    /// Wraps a callback.
    pub fn new(f: impl Fn(SearchProgress) + Send + Sync + 'static) -> Self {
        ProgressSink(Arc::new(f))
    }
}

impl fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ProgressSink(..)")
    }
}

/// Knobs of one search run.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// What to rank by.
    pub objective: Objective,
    /// The device candidates must fit on (capacity bytes + peak
    /// FLOP/s for MFU).
    pub gpu: GpuSpec,
    /// Memory-model constants for the feasibility gate.
    pub memory_model: MemoryModel,
    /// Worker threads (`None` = available parallelism).
    pub threads: Option<usize>,
    /// GPUs per node, for collective-topology classification in the
    /// shared lookup cost model.
    pub gpus_per_node: u32,
    /// Retention bound: `Some(k)` keeps only the global top-k results
    /// (and at most `k` pruned/rejected example records) in memory —
    /// the setting for million-candidate spaces, and what arms
    /// lower-bound skipping. `None` retains every evaluated candidate
    /// (the pre-streaming behavior); skipping stays disabled so the
    /// full ranking is exact.
    pub top_k: Option<usize>,
    /// Phase two: execute the analytic finals through the discrete-
    /// event engine (full multi-rank lowering, shared trace-fitted
    /// cost model) and re-rank them by the search objective
    /// re-evaluated at the simulated makespan, reporting the
    /// analytic-vs-simulated delta per finalist
    /// ([`SearchReport::refined`]). Refines at most
    /// [`SearchOptions::top_k`] finalists (16 when retention is
    /// unbounded) — engine execution per candidate is orders of
    /// magnitude costlier than the screen.
    pub refine_sim: bool,
    /// With [`SearchOptions::refine_sim`]: deterministic jitter
    /// replicas to execute per finalist (0 = off). Adds mean / p95 /
    /// stability columns and re-ranks by the jittered mean, so the
    /// search optimizes for robustness under run-to-run variance.
    pub jitter_replicas: u32,
    /// Seed of the refinement jitter model (replica `r` executes as
    /// iteration `r` of a [`lumos_cluster::JitterModel::realistic`]
    /// model with this seed). Fixed by default so refined reports are
    /// reproducible run to run.
    pub jitter_seed: u64,
    /// With [`SearchOptions::refine_sim`]: the fault-scenario
    /// specification of the robustness pass ([`crate::faults`]).
    /// `None` — or a spec with no scenarios — leaves the report
    /// byte-identical to a fault-less run.
    pub fault_spec: Option<lumos_cluster::FaultSpec>,
    /// Deterministic fault replicas to execute per finalist when
    /// [`SearchOptions::fault_spec`] is set. Each replica samples
    /// which scenarios fire by hashing `(fault_seed, replica, site)`,
    /// so rankings replay byte-identically on any thread count.
    pub fault_replicas: u32,
    /// Seed of the fault-scenario sampler. Fixed by default so robust
    /// rankings are reproducible run to run.
    pub fault_seed: u64,
    /// With [`SearchOptions::refine_sim`]: statically verify each
    /// finalist's lowered program ([`lumos_cluster::verify`] —
    /// referential integrity, collective consistency, point-to-point
    /// matching, deadlock freedom) before handing it to the engine.
    /// A violation aborts the run with
    /// [`SearchError::InvalidProgram`] instead of surfacing as a
    /// simulated deadlock. Never changes results for clean programs.
    pub verify: bool,
    /// Optional progress callback for long searches.
    pub progress: Option<ProgressSink>,
    /// Cooperative cancel flag: workers observe it between candidates
    /// (and between refinement finalists) and, once raised, the run
    /// aborts with [`SearchError::DeadlineExceeded`]. Raise it from
    /// another thread to interrupt a long search cleanly.
    pub cancel: Option<Arc<std::sync::atomic::AtomicBool>>,
    /// Wall-clock budget for the whole run (screen *and* refinement),
    /// measured from entry into [`search_calibrated`]. Expiry aborts
    /// with [`SearchError::DeadlineExceeded`] — partial results are
    /// discarded, because a truncated grid walk cannot claim to
    /// contain the true top-k.
    pub deadline: Option<std::time::Duration>,
    /// Cross-run stage-work memo shared between searches against the
    /// **same** calibration (a long-lived service keeps one per
    /// artifact). A warm memo never changes reported results — see
    /// [`SharedStageMemo`].
    pub shared_memo: Option<Arc<SharedStageMemo>>,
    /// Run the corpus-guided adaptive engine ([`crate::adaptive`])
    /// instead of the exhaustive streaming walk: seed probes, a
    /// power-scheduled mutation frontier, and (on spaces small enough)
    /// a screened verification sweep that proves the result equals the
    /// exhaustive top-k. The setting for spaces too large to
    /// enumerate; [`SearchReport::adaptive`] records how the run
    /// terminated.
    pub adaptive: bool,
    /// Adaptive-only: the full-evaluation budget (candidates fully
    /// simulated, not merely screened). `None` uses the built-in
    /// default. Checked between batches, so overshoot is bounded by
    /// one batch; exhaustion yields the typed
    /// [`AdaptiveOutcome::BudgetExhausted`] marker, never an error.
    pub budget: Option<usize>,
    /// Adaptive-only: RNG seed for probe and mutation draws. A fixed
    /// seed replays the identical search — byte-identical report —
    /// on any thread count.
    pub seed: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            objective: Objective::PerGpuThroughput,
            gpu: GpuSpec::h100_sxm(),
            memory_model: MemoryModel::default(),
            threads: None,
            gpus_per_node: 8,
            top_k: None,
            refine_sim: false,
            jitter_replicas: 0,
            jitter_seed: 2025,
            fault_spec: None,
            fault_replicas: 32,
            fault_seed: 2025,
            verify: false,
            progress: None,
            cancel: None,
            deadline: None,
            shared_memo: None,
            adaptive: false,
            budget: None,
            seed: 2025,
        }
    }
}

/// `true` when the run should abort cooperatively: its cancel flag is
/// raised or its wall-clock deadline instant has passed. Checked by
/// the streaming evaluator between candidates and by refinement
/// between finalists.
pub(crate) fn cancel_requested(opts: &SearchOptions, deadline: Option<std::time::Instant>) -> bool {
    opts.cancel
        .as_ref()
        .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
        || deadline.is_some_and(|d| std::time::Instant::now() >= d)
}

/// The reusable, query-independent half of a search: the trace-fitted
/// lookup cost model and the reassembly block library, bundled with
/// the base setup and recorded makespan. Fit it once — from a trace
/// ([`SearchCalibration::fit`]) or from a persisted calibration
/// artifact ([`SearchCalibration::from_artifact`]) — then run any
/// number of [`search_calibrated`] queries against it without ever
/// re-walking the source trace.
#[derive(Debug)]
pub struct SearchCalibration<C> {
    pub(crate) lookup: LookupCostModel<C>,
    pub(crate) library: BlockLibrary,
    pub(crate) base: TrainingSetup,
    pub(crate) base_makespan: Dur,
}

impl<C: CostModel> SearchCalibration<C> {
    /// Fits a calibration from a profiled trace: lookup tables from
    /// every kernel observation, the block library from every
    /// annotation range. `gpus_per_node` classifies collective
    /// placements (pass [`SearchOptions::gpus_per_node`] to match what
    /// plain [`search`] would do).
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Extraction`] when the trace has no
    /// annotation ranges to carve blocks from.
    pub fn fit(
        trace: &ClusterTrace,
        base: &TrainingSetup,
        fallback: C,
        gpus_per_node: u32,
    ) -> Result<Self, SearchError> {
        let lookup = LookupCostModel::fit_from_trace(trace, fallback, gpus_per_node);
        let library = BlockLibrary::extract(trace, base.parallelism)
            .map_err(|source| SearchError::Extraction { source })?;
        Ok(SearchCalibration {
            lookup,
            library,
            base: base.clone(),
            base_makespan: trace.makespan(),
        })
    }

    /// Builds a calibration from a persisted artifact (tables and
    /// library are cloned out of it). Searches run this way are
    /// byte-identical to [`search`] on the artifact's source trace.
    pub fn from_artifact(artifact: &CalibrationArtifact, fallback: C) -> Self {
        SearchCalibration {
            lookup: artifact.cost_model(fallback),
            library: artifact.library.clone(),
            base: artifact.setup.clone(),
            base_makespan: artifact.fingerprint.makespan,
        }
    }

    /// The base setup queries start from.
    pub fn base(&self) -> &TrainingSetup {
        &self.base
    }

    /// Recorded makespan of the base trace.
    pub fn base_makespan(&self) -> Dur {
        self.base_makespan
    }

    /// The shared trace-fitted cost model.
    pub fn lookup(&self) -> &LookupCostModel<C> {
        &self.lookup
    }

    /// The shared reassembly block library.
    pub fn library(&self) -> &BlockLibrary {
        &self.library
    }
}

/// Runs the full streaming search pipeline: enumerate lazily →
/// memory-prune → lower-bound skip → parallel-evaluate → merge top-k.
///
/// `trace` is the profiled base iteration and `base` the setup that
/// produced it; `fallback` prices kernel shapes absent from the trace
/// (shared read-only across workers, fitted once). Equivalent to
/// [`SearchCalibration::fit`] followed by [`search_calibrated`]; use
/// that pair directly when several queries share one trace.
///
/// A report with **zero results** is a valid outcome: it means every
/// lattice-valid candidate was memory-pruned (or rejected as
/// infeasible during scoring), and the report's
/// [`SearchReport::pruned`] / [`SearchReport::rejected`] lists say
/// why, per candidate.
///
/// With [`SearchOptions::refine_sim`] set, a second phase lowers each
/// analytic finalist to a full multi-rank program, executes it through
/// the discrete-event engine against the same shared trace-fitted cost
/// model, and re-ranks the finals by the search objective re-evaluated
/// at the simulated makespan — [`SearchReport::refined`] carries the
/// per-finalist analytic-vs-simulated deltas (and jitter-robustness
/// statistics when [`SearchOptions::jitter_replicas`] > 0).
///
/// # Errors
///
/// Returns [`SearchError::EmptySpace`] when no candidate survives the
/// lattice, [`SearchError::Extraction`] when the base trace cannot
/// supply reassembly blocks, [`SearchError::Refinement`] when a
/// finalist cannot be lowered or executed, and propagates
/// manipulation/simulation failures from candidate evaluation.
pub fn search<C>(
    trace: &ClusterTrace,
    base: &TrainingSetup,
    spec: &SpaceSpec,
    opts: &SearchOptions,
    fallback: C,
) -> Result<SearchReport, SearchError>
where
    C: CostModel + Send + Sync + 'static,
{
    let calib = SearchCalibration::fit(trace, base, fallback, opts.gpus_per_node)?;
    search_calibrated(&calib, spec, opts)
}

/// [`search`] against a prebuilt [`SearchCalibration`] — the
/// calibrate-once path. Repeated queries (different spaces,
/// objectives, retention bounds, refinement settings) share one
/// fitted cost model and block library; nothing re-reads or re-walks
/// the source trace. [`SearchOptions::gpus_per_node`] is ignored here:
/// collective-topology classification was fixed when the calibration
/// was fitted.
///
/// # Errors
///
/// As [`search`], minus [`SearchError::Extraction`] (extraction
/// already happened when the calibration was built).
pub fn search_calibrated<C>(
    calib: &SearchCalibration<C>,
    spec: &SpaceSpec,
    opts: &SearchOptions,
) -> Result<SearchReport, SearchError>
where
    C: CostModel + Send + Sync,
{
    let base = &calib.base;
    let normalized = spec.normalized();
    // One deadline instant for the whole run: screen and refinement
    // share the budget instead of each getting a fresh one.
    let deadline = opts.deadline.map(|d| std::time::Instant::now() + d);
    let (outcome, adaptive) = if opts.adaptive {
        let (outcome, adaptive) = adaptive::run_adaptive(calib, &normalized, opts, deadline)?;
        (outcome, Some(adaptive))
    } else {
        (
            evaluate::run_streaming(calib, &normalized, opts, deadline)?,
            None,
        )
    };
    let mut results = outcome.results;
    let refined = if opts.refine_sim {
        // Phase two is per-candidate engine work, so it always runs on
        // a short list: the retention bound when one is set, else a
        // fixed cap — full retention must not turn refinement into an
        // engine execution of the whole space.
        let finalists = opts
            .top_k
            .unwrap_or(DEFAULT_REFINE_FINALISTS)
            .min(results.len());
        let refined =
            refine::refine_finalists(&results[..finalists], opts, &calib.lookup, deadline)?;
        // Phase two's verdict wins: reorder the refined prefix of the
        // ranked results to the simulation-refined order (indices are
        // unique per candidate); unrefined results keep their analytic
        // order behind it.
        let position: std::collections::HashMap<usize, usize> = refined
            .iter()
            .enumerate()
            .map(|(pos, r)| (r.index, pos))
            .collect();
        results[..finalists].sort_by_key(|r| {
            (
                position.get(&r.index).copied().unwrap_or(usize::MAX),
                r.index,
            )
        });
        Some(refined)
    } else {
        None
    };
    Ok(SearchReport {
        base_label: base.label(),
        base_makespan: calib.base_makespan,
        objective: opts.objective,
        results,
        pruned: outcome.pruned,
        rejected: outcome.rejected,
        stats: outcome.stats,
        memo: outcome.memo,
        threads: outcome.threads,
        refined,
        adaptive,
    })
}

/// Profiles one `seed`-jittered iteration of `base` on the
/// ground-truth cluster under the default H100 cost model — the base
/// trace for trace-less searches (the CLI's `--model` mode calls
/// this).
///
/// # Errors
///
/// Returns [`SearchError::BaseProfile`] on invalid configurations or
/// engine failures.
pub fn profile_base(base: &TrainingSetup, seed: u64) -> Result<ClusterTrace, SearchError> {
    use lumos_cluster::{GroundTruthCluster, JitterModel};

    let cluster = GroundTruthCluster::new(base, lumos_cost::AnalyticalCostModel::h100())
        .map_err(|e| SearchError::BaseProfile(e.to_string()))?
        .with_jitter(JitterModel::realistic(seed));
    Ok(cluster
        .profile_iteration(0)
        .map_err(|e| SearchError::BaseProfile(e.to_string()))?
        .trace)
}

/// One-call convenience: [`profile_base`] followed by [`search`] under
/// the default H100 analytical fallback.
///
/// # Errors
///
/// Propagates base-profiling and search failures.
pub fn profile_and_search(
    base: &TrainingSetup,
    spec: &SpaceSpec,
    opts: &SearchOptions,
    seed: u64,
) -> Result<SearchReport, SearchError> {
    let trace = profile_base(base, seed)?;
    search(
        &trace,
        base,
        spec,
        opts,
        lumos_cost::AnalyticalCostModel::h100(),
    )
}
