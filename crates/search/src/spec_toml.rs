//! Space-spec files: a small TOML subset (this workspace builds
//! offline, so no `toml` crate).
//!
//! Supported syntax — flat `key = value` lines, `#` comments, integer
//! / float / string / boolean scalars, integer arrays, and arrays of
//! integer arrays (for the arch axis):
//!
//! ```toml
//! # lumos search space
//! tp = [2, 4]
//! pp = [1, 2, 4]
//! dp = [1, 2, 4, 8]
//! microbatches = [4, 8, 16]
//! interleave = [1, 2]
//! schedules = ["1f1b", "gpipe", "zb-h1"]
//! max-gpus = 64
//! # arch points as [layers, hidden, ffn] triples (optional)
//! arch = [[8, 4096, 16384], [12, 3072, 12288]]
//!
//! # search options (optional; CLI flags override)
//! objective = "throughput"
//! top-k = 10
//! gpu-memory-gib = 80
//! ```

use crate::report::Objective;
use crate::space::{ArchPoint, SpaceSpec};
use crate::SearchError;
use lumos_model::{ScheduleBuilder, ScheduleKind};

/// A parsed spec file: the space plus optional search options.
#[derive(Debug, Clone, Default)]
pub struct SpecFile {
    /// The search space.
    pub space: SpaceSpec,
    /// Optional ranking objective.
    pub objective: Option<Objective>,
    /// Optional report size.
    pub top_k: Option<usize>,
    /// Optional per-GPU memory capacity in whole GiB.
    pub gpu_memory_gib: Option<u32>,
}

impl SpecFile {
    /// Parses the TOML subset described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Spec`] naming the offending line.
    pub fn parse(text: &str) -> Result<Self, SearchError> {
        let mut file = SpecFile::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                return Err(err(lineno, "tables are not supported; use flat keys"));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, "expected `key = value`"))?;
            let key = key.trim().replace('_', "-");
            let value = value.trim();
            match key.as_str() {
                "tp" => file.space.tp = int_array(value, lineno)?,
                "pp" => file.space.pp = int_array(value, lineno)?,
                "dp" => file.space.dp = int_array(value, lineno)?,
                "microbatches" => file.space.microbatches = int_array(value, lineno)?,
                "interleave" => file.space.interleave = int_array(value, lineno)?,
                "schedules" => file.space.schedules = schedule_array(value, lineno)?,
                "gpus" => file.space.gpus = Some(int_array(value, lineno)?),
                "max-gpus" => file.space.max_gpus = int_scalar(value, lineno)?,
                "arch" => file.space.arch = arch_array(value, lineno)?,
                "objective" => {
                    file.objective = Some(
                        string_scalar(value, lineno)?
                            .parse()
                            .map_err(|e: String| err(lineno, &e))?,
                    )
                }
                "top-k" => file.top_k = Some(int_scalar::<usize>(value, lineno)?),
                "gpu-memory-gib" => file.gpu_memory_gib = Some(int_scalar::<u32>(value, lineno)?),
                other => return Err(err(lineno, &format!("unknown key `{other}`"))),
            }
        }
        Ok(file)
    }
}

fn err(lineno: usize, msg: &str) -> SearchError {
    SearchError::Spec(format!("line {}: {msg}", lineno + 1))
}

/// Drops a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn int_scalar<T: std::str::FromStr>(value: &str, lineno: usize) -> Result<T, SearchError> {
    value
        .parse()
        .map_err(|_| err(lineno, &format!("expected an integer, got `{value}`")))
}

fn string_scalar(value: &str, lineno: usize) -> Result<String, SearchError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(err(
            lineno,
            &format!("expected a \"string\", got `{value}`"),
        ))
    }
}

/// Splits the contents of one bracket pair at top-level commas.
fn bracket_items(value: &str, lineno: usize) -> Result<Vec<&str>, SearchError> {
    let v = value.trim();
    if !(v.starts_with('[') && v.ends_with(']')) {
        return Err(err(lineno, &format!("expected an array, got `{value}`")));
    }
    let inner = &v[1..v.len() - 1];
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| err(lineno, "unbalanced brackets"))?
            }
            ',' if depth == 0 => {
                items.push(inner[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(err(lineno, "unbalanced brackets"));
    }
    let last = inner[start..].trim();
    if !last.is_empty() {
        items.push(last);
    }
    Ok(items)
}

fn int_array(value: &str, lineno: usize) -> Result<Vec<u32>, SearchError> {
    bracket_items(value, lineno)?
        .into_iter()
        .map(|item| int_scalar(item, lineno))
        .collect()
}

/// `["1f1b", "gpipe", …]` → registry handles. Unknown names produce
/// [`SearchError::UnknownSchedule`] listing the registered set, so a
/// typo in a spec file names its alternatives.
fn schedule_array(value: &str, lineno: usize) -> Result<Vec<ScheduleKind>, SearchError> {
    bracket_items(value, lineno)?
        .into_iter()
        .map(|item| {
            let name = string_scalar(item, lineno)?;
            ScheduleBuilder::from_name(&name)
                .build()
                .map_err(|_| SearchError::UnknownSchedule {
                    name,
                    known: lumos_model::registry::known_names().join(", "),
                })
        })
        .collect()
}

/// `[[layers, hidden, ffn], …]` → labeled arch points.
fn arch_array(value: &str, lineno: usize) -> Result<Vec<ArchPoint>, SearchError> {
    bracket_items(value, lineno)?
        .into_iter()
        .map(|triple| {
            let parts = bracket_items(triple, lineno)?;
            if parts.len() != 3 {
                return Err(err(
                    lineno,
                    "each arch point needs exactly [layers, hidden, ffn]",
                ));
            }
            let layers: u32 = int_scalar(parts[0], lineno)?;
            let hidden: u64 = int_scalar(parts[1], lineno)?;
            let ffn: u64 = int_scalar(parts[2], lineno)?;
            Ok(ArchPoint::new(
                format!("{layers}L-d{hidden}"),
                layers,
                hidden,
                ffn,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# capacity planning sweep
tp = [2, 4]
pp = [1, 2]          # pipeline depths
dp = [1, 2, 4, 8]
microbatches = [4, 8]
interleave = [1, 2]
schedules = ["1f1b", "zb-h1"]
max-gpus = 64
arch = [[8, 4096, 16384], [12, 3072, 12288]]
objective = "throughput"
top-k = 5
gpu-memory-gib = 80
"#;

    #[test]
    fn parses_full_sample() {
        let f = SpecFile::parse(SAMPLE).unwrap();
        assert_eq!(f.space.tp, vec![2, 4]);
        assert_eq!(f.space.dp, vec![1, 2, 4, 8]);
        assert_eq!(f.space.max_gpus, 64);
        assert_eq!(
            f.space.schedules,
            vec![ScheduleKind::OneFOneB, ScheduleKind::ZbH1]
        );
        assert_eq!(f.space.arch.len(), 2);
        assert_eq!(f.space.arch[1].hidden, 3072);
        assert_eq!(f.space.arch[0].label, "8L-d4096");
        assert_eq!(f.objective, Some(Objective::PerGpuThroughput));
        assert_eq!(f.top_k, Some(5));
        assert_eq!(f.gpu_memory_gib, Some(80));
    }

    #[test]
    fn underscores_and_dashes_both_work() {
        let f = SpecFile::parse("max_gpus = 8\ntop_k = 3").unwrap();
        assert_eq!(f.space.max_gpus, 8);
        assert_eq!(f.top_k, Some(3));
    }

    #[test]
    fn errors_name_the_line() {
        let e = SpecFile::parse("tp = [1]\nbogus = 3").unwrap_err();
        assert!(e.to_string().contains("line 2"));
        assert!(e.to_string().contains("bogus"));
        assert!(SpecFile::parse("tp = 1,2").is_err());
        assert!(SpecFile::parse("[section]").is_err());
        assert!(SpecFile::parse("objective = fast").is_err());
        assert!(SpecFile::parse("arch = [[1, 2]]").is_err());
    }

    #[test]
    fn unknown_schedule_names_the_known_set() {
        let e = SpecFile::parse("schedules = [\"1f1b\", \"dualpipe\"]").unwrap_err();
        match &e {
            SearchError::UnknownSchedule { name, known } => {
                assert_eq!(name, "dualpipe");
                assert!(known.contains("1f1b"));
                assert!(known.contains("gpipe"));
                assert!(known.contains("zb-h1"));
            }
            other => panic!("expected UnknownSchedule, got {other:?}"),
        }
        // Unquoted names are a syntax error, not an unknown schedule.
        assert!(matches!(
            SpecFile::parse("schedules = [1f1b]"),
            Err(SearchError::Spec(_))
        ));
    }

    #[test]
    fn comments_respect_strings() {
        let f = SpecFile::parse("objective = \"mfu\" # ranked by utilization").unwrap();
        assert_eq!(f.objective, Some(Objective::Mfu));
    }

    #[test]
    fn empty_file_is_empty_space() {
        let f = SpecFile::parse("\n# nothing\n").unwrap();
        assert!(f.space.tp.is_empty());
        assert_eq!(f.space.max_gpus, 1024);
    }
}
