//! The power schedule: deterministic pseudo-randomness and parent
//! selection for the adaptive engine.
//!
//! Adaptive runs must be replayable from `--seed` alone, so the RNG is
//! a hand-rolled SplitMix64 (the workspace builds offline; no `rand`
//! in this crate's dependency set) and every draw the engine makes
//! flows through one generator in a fixed order. The schedule itself
//! is the classic fuzzing power schedule: frontier entries are picked
//! with weight proportional to their rank (better objective key ⇒
//! more energy) and discounted by how often they were already tried,
//! so fresh promising regions get mutation budget before well-mined
//! ones.

use crate::corpus::Corpus;

/// SplitMix64: a tiny, well-mixed 64-bit generator. Deterministic
/// across platforms — the replay guarantee rests on it.
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator. Every adaptive run derives exactly one
    /// from [`crate::SearchOptions::seed`].
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly mixed bits.
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `0..n` (`n > 0`).
    pub(crate) fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Multiply-shift mapping: unbiased enough for scheduling
        // decisions, and branch-free (no rejection loop to make draw
        // counts input-dependent).
        (((self.next_u64() >> 11) as u128 * n as u128) >> 53) as usize
    }

    /// A uniform draw from `[0, 1)`.
    pub(crate) fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Picks the next parent to mutate: frontier position `p` (0 = best)
/// out of `n` entries gets weight `(n − p) / (1 + trials)`. Returns
/// the frontier slot, or `None` on an empty frontier.
pub(crate) fn pick_parent(corpus: &Corpus, rng: &mut SplitMix64) -> Option<usize> {
    let frontier = corpus.frontier();
    let n = frontier.len();
    if n == 0 {
        return None;
    }
    let weight = |pos: usize| (n - pos) as f64 / (1 + frontier[pos].trials) as f64;
    let total: f64 = (0..n).map(weight).sum();
    let mut target = rng.unit() * total;
    for pos in 0..n {
        target -= weight(pos);
        if target <= 0.0 {
            return Some(pos);
        }
    }
    Some(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Different seeds diverge immediately.
        let mut c = SplitMix64::new(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn below_stays_in_range_and_covers_it() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let d = rng.below(5);
            assert!(d < 5);
            seen[d] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_is_a_probability() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..100 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn power_schedule_prefers_fresh_high_rank_entries() {
        let mut corpus = Corpus::new(8);
        for i in 0..4usize {
            // Entry keyed `i` with objective key i as f64: index 0 best.
            corpus.insert(i, i as f64);
        }
        // Exhaust entry 0's freshness.
        for _ in 0..50 {
            corpus.record_trial(0);
        }
        let mut rng = SplitMix64::new(1);
        let mut picks = [0usize; 4];
        for _ in 0..400 {
            picks[pick_parent(&corpus, &mut rng).unwrap()] += 1;
        }
        // The well-mined best entry yields to fresher ones.
        assert!(picks[1] > picks[0]);
    }
}
