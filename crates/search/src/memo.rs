//! Memoized per-stage cost derivation and the analytic lower bound.
//!
//! Candidates that differ only in pipeline depth, data parallelism,
//! micro-batch count, or interleaving share per-layer / embedding /
//! LM-head compute costs (see [`lumos_model::StageCostKey`]). This
//! module derives those costs **once per key** — from recorded block
//! kernel durations, or from re-priced op lists when the candidate's
//! TP degree or layer shape differs from the base — and caches them
//! behind a mutex shared by all evaluator workers.
//!
//! The derived costs feed a *sound* lower bound on a candidate's
//! iteration time: the busiest pipeline stage must serially execute
//! its per-micro-batch compute work `m` times on its compute stream,
//! whatever the schedule does around it. Every number that enters the
//! bound is a minimum over the block choices reassembly could make
//! (shards, recorded micro-batches) restricted to a single stream, so
//! the bound never exceeds the simulated makespan — which is what lets
//! the engine skip full scoring for provably dominated candidates
//! without changing the reported top-k.

use crate::candidate::Candidate;
use crate::prune::MemoStats;
use lumos_core::manipulate::{
    kernel_class_of_op, plan, proportional_layer_map, regenerated_block_ops, Block, BlockKey,
    BlockKind, BlockLibrary,
};
use lumos_core::Phase;
use lumos_cost::{CostModel, LookupCostModel};
use lumos_model::ops::OpDesc;
use lumos_model::{StageCostKey, StageWork, TrainingSetup};
use lumos_trace::{EventKind, KernelClass, StreamId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Per-key derived costs: combined forward + backward seconds per
/// *source* layer (minimum over shards and recorded micro-batches),
/// plus embedding and head blocks. Zeros are always sound (they only
/// weaken the bound).
#[derive(Debug, Default)]
struct CachedCosts {
    source_layer_secs: Vec<f64>,
    embed_secs: f64,
    head_secs: f64,
    /// Set when any block/op-list pairing mismatched during
    /// derivation. Reassembling such a candidate would *error*, so no
    /// candidate under this key may be skipped: a skip would turn a
    /// deterministic failure into a scheduling-dependent one (skipped
    /// on runs where the worker's heap filled early, aborting the
    /// search on runs where it filled late).
    unusable: bool,
}

/// A stage-work memo shared **across** search runs against one
/// calibration — the cross-request warm cache behind a long-lived
/// service (`lumos serve` keeps one per registry artifact).
///
/// The per-run [`StageCostCache`] derives per-candidate
/// [`StageWork`] from `(base, library, lookup)` plus the candidate's
/// `(stage-cost key, layer count)` alone, so work derived by one run
/// is valid for every later run against the *same* calibration.
/// Sharing a memo across different calibrations is unsound — callers
/// must key memos by artifact. A warm memo never changes reported
/// top-k results (the derivation is deterministic in the key); it
/// only converts derivations into refcount bumps.
pub struct SharedStageMemo {
    work: Mutex<HashMap<(StageCostKey, u32), Arc<StageWork>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl SharedStageMemo {
    /// An empty memo.
    pub fn new() -> Self {
        SharedStageMemo {
            work: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Lifetime hit/miss counts across every run that attached this
    /// memo (`misses` == distinct stage-work entries derived).
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl Default for SharedStageMemo {
    fn default() -> Self {
        SharedStageMemo::new()
    }
}

impl std::fmt::Debug for SharedStageMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SharedStageMemo")
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

/// The shared stage-cost memo: one per search run, read-mostly.
pub(crate) struct StageCostCache<'a, C> {
    base: &'a TrainingSetup,
    library: &'a BlockLibrary,
    lookup: &'a LookupCostModel<C>,
    /// The stream the bound is measured on: the one carrying the most
    /// recorded compute time (the conventional compute stream).
    stream: Option<StreamId>,
    /// `false` when the library is missing any block reassembly could
    /// request: evaluating some candidate would then *error*, and
    /// bound-skipping it instead would make the search's success
    /// scheduling-dependent — so no bound is ever issued.
    complete: bool,
    map: Mutex<HashMap<StageCostKey, Arc<CachedCosts>>>,
    /// Resolved per-candidate stage work, keyed by `(stage-cost key,
    /// target layer count)` — the only inputs the layer mapping
    /// depends on. Entries are `Arc`-shared so a cache hit is a
    /// refcount bump, not a rebuild of the per-layer cost vector.
    work: Mutex<HashMap<(StageCostKey, u32), Arc<StageWork>>>,
    /// Optional cross-run memo ([`crate::SearchOptions::shared_memo`]):
    /// probed after a local-map miss, fed on every derivation. Sound
    /// only because callers key it by calibration — see
    /// [`SharedStageMemo`].
    shared: Option<&'a SharedStageMemo>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<'a, C: CostModel> StageCostCache<'a, C> {
    pub(crate) fn new(
        base: &'a TrainingSetup,
        library: &'a BlockLibrary,
        lookup: &'a LookupCostModel<C>,
        shared: Option<&'a SharedStageMemo>,
    ) -> Self {
        StageCostCache {
            base,
            library,
            lookup,
            stream: dominant_compute_stream(library),
            complete: library_is_complete(library, base),
            map: Mutex::new(HashMap::new()),
            work: Mutex::new(HashMap::new()),
            shared,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    pub(crate) fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// A lower bound on the candidate's predicted iteration seconds,
    /// or `None` when no usable bound exists (no compute stream, zero
    /// derived costs, or a block/op mismatch that voids derivation).
    pub(crate) fn lower_bound_secs(&self, cand: &Candidate, setup: &TrainingSetup) -> Option<f64> {
        if !self.complete {
            return None;
        }
        let work = self.work_for(setup)?;
        let pp = setup.parallelism.pp;
        let m = setup.batch.num_microbatches;
        let mut bound = work.pipeline_lower_bound_secs(pp, m);
        if let Some(adj) = setup.schedule.replay_adjustment(pp, m, cand.interleave) {
            // Adjusted schedules are scored as
            // `sim × (1 − skeleton_bubble) / (1 − target_bubble)`
            // plus non-negative extra communication; scale the bound
            // the same way (the analytic forms avoid the O(pp·m)
            // schedule materialization this per-candidate path must
            // not pay).
            if adj.is_degenerate() {
                return None; // degenerate; flagged during evaluation
            }
            bound *= adj.bound_scale();
        }
        // Safety margin: the real objective key is derived from an
        // ns-rounded `Dur` while this bound is accumulated in f64, so
        // shave a relative ulp allowance plus one nanosecond — without
        // it, float noise at an exact tie boundary could rate the
        // bound a hair *above* the candidate's true key and skip a
        // result the full ranking would admit by index tie-break.
        let bound = bound * (1.0 - 1e-9) - 1e-9;
        (bound > 0.0 && bound.is_finite()).then_some(bound)
    }

    /// The candidate's resolved stage work, `Arc`-shared per
    /// `(stage-cost key, layer count)`: candidates that differ only in
    /// pipeline depth / data parallelism / micro-batch count /
    /// interleaving reuse one allocation — a hit costs a hash probe
    /// and a refcount bump, not a `Vec<f64>` rebuild.
    fn work_for(&self, setup: &TrainingSetup) -> Option<Arc<StageWork>> {
        let key = (StageCostKey::of(setup), setup.model.num_layers);
        if let Some(work) = self.work.lock().expect("work memo poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(work.clone());
        }
        // Warm path: a previous run against the same calibration may
        // have derived this entry already. Adopt it into the local map
        // so later probes in this run stay on the fast path.
        if let Some(shared) = self.shared {
            let adopted = shared
                .work
                .lock()
                .expect("shared memo poisoned")
                .get(&key)
                .cloned();
            if let Some(work) = adopted {
                shared.hits.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.work
                    .lock()
                    .expect("work memo poisoned")
                    .entry(key)
                    .or_insert_with(|| work.clone());
                return Some(work);
            }
        }
        let costs = self.costs_for(setup)?;
        if costs.unusable {
            return None;
        }
        // Candidate layers map onto source layers via the same helper
        // reassembly's plan uses — not a re-derivation of its formula
        // (and no setup clones on this per-candidate path).
        let layer_map = proportional_layer_map(self.base.model.num_layers, setup.model.num_layers);
        let work = Arc::new(StageWork {
            layer_secs: layer_map
                .iter()
                .map(|&src| costs.source_layer_secs[src as usize])
                .collect(),
            embed_secs: costs.embed_secs,
            head_secs: costs.head_secs,
        });
        // Publish the derivation to the cross-run memo (first insert
        // wins there too; the loser adopts the existing entry so both
        // memos share one allocation).
        let work = match self.shared {
            Some(shared) => {
                let mut map = shared.work.lock().expect("shared memo poisoned");
                match map.entry(key.clone()) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        shared.hits.fetch_add(1, Ordering::Relaxed);
                        e.get().clone()
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        shared.misses.fetch_add(1, Ordering::Relaxed);
                        v.insert(work).clone()
                    }
                }
            }
            None => work,
        };
        // First insert wins on a race (the loser drops its copy and
        // adopts the existing entry); the derivation is deterministic
        // in the key, so both values are identical either way.
        Some(
            self.work
                .lock()
                .expect("work memo poisoned")
                .entry(key)
                .or_insert(work)
                .clone(),
        )
    }

    /// Cached costs for the setup's stage-cost key, deriving on miss.
    fn costs_for(&self, setup: &TrainingSetup) -> Option<Arc<CachedCosts>> {
        self.stream?;
        let key = StageCostKey::of(setup);
        if let Some(costs) = self.map.lock().expect("memo poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(costs.clone());
        }
        // Derive outside the lock: duplicate work on a race is
        // harmless (the derivation is deterministic in the key), but
        // only the insert that lands counts as the key's miss — the
        // loser of the race sees an occupied entry and counts a hit,
        // keeping `misses` == distinct keys derived.
        let derived = Arc::new(self.derive(setup));
        let mut map = self.map.lock().expect("memo poisoned");
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.get().clone())
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Some(v.insert(derived).clone())
            }
        }
    }

    fn derive(&self, setup: &TrainingSetup) -> CachedCosts {
        let stream = self.stream.expect("checked by costs_for");
        // Whether reassembly re-prices this candidate's kernels is the
        // plan's decision, not a local mirror of its condition.
        let recost = plan(self.base, setup).recost_kernels;
        let ops_for = |kind: BlockKind, phase: Phase| -> Option<Vec<OpDesc>> {
            if !recost {
                return None;
            }
            regenerated_block_ops(setup, kind, phase)
        };

        // Regenerated op lists depend only on the block's content
        // *class* (every layer shares one list), not on which shard or
        // micro-batch recorded it — derive each at most once.
        fn content_class(kind: BlockKind) -> u8 {
            match kind {
                BlockKind::Layer(_) => 0,
                BlockKind::Embed => 1,
                BlockKind::Head => 2,
            }
        }
        let mut op_lists: HashMap<(u8, Phase), Option<Vec<OpDesc>>> = HashMap::new();

        // Minimum per (content, phase) over every block the reassembler
        // could paste (any shard, any recorded micro-batch).
        let mut minima: HashMap<(BlockKind, Phase), f64> = HashMap::new();
        let mut unusable = false;
        for (key, block) in self.library.iter() {
            if !matches!(key.phase, Phase::Forward | Phase::Backward) {
                continue;
            }
            let kind = key.kind;
            let ops_list = op_lists
                .entry((content_class(kind), key.phase))
                .or_insert_with(|| ops_for(kind, key.phase));
            let secs = match block_stream_secs(block, stream, ops_list.as_deref(), self.lookup) {
                Some(secs) => secs,
                None => {
                    unusable = true;
                    break;
                }
            };
            let entry = minima.entry((kind, key.phase)).or_insert(f64::INFINITY);
            *entry = entry.min(secs);
        }
        let get = |kind: BlockKind, phase: Phase| -> f64 {
            match minima.get(&(kind, phase)) {
                Some(&v) if v.is_finite() => v,
                _ => 0.0,
            }
        };
        CachedCosts {
            source_layer_secs: (0..self.base.model.num_layers)
                .map(|l| {
                    get(BlockKind::Layer(l), Phase::Forward)
                        + get(BlockKind::Layer(l), Phase::Backward)
                })
                .collect(),
            embed_secs: get(BlockKind::Embed, Phase::Forward)
                + get(BlockKind::Embed, Phase::Backward),
            head_secs: get(BlockKind::Head, Phase::Forward) + get(BlockKind::Head, Phase::Backward),
            unusable,
        }
    }
}

/// Seconds of non-collective kernel time a block contributes to
/// `stream`. Without an op list, recorded durations; with one, each
/// launch is paired with its regenerated op in host order and priced
/// exactly the way reassembly prices it (collectives excluded — their
/// replayed durations depend on rendezvous, so counting them could
/// overshoot). A launch/op count mismatch returns `None`: reassembly
/// would *error* on this block, so the whole key must become
/// unusable rather than silently bounding the candidate at zero.
fn block_stream_secs<C: CostModel>(
    block: &Block,
    stream: StreamId,
    ops_list: Option<&[OpDesc]>,
    lookup: &LookupCostModel<C>,
) -> Option<f64> {
    // The launch order and launch→kernel pairing come from the same
    // `Block` helpers reassembly's pricing pass uses — the two walks
    // cannot drift apart.
    let kernels = block.kernels_by_correlation();
    let launches = block.launches_in_host_order();
    let kernel_of = |l: &lumos_trace::TraceEvent| -> Option<(StreamId, KernelClass, f64)> {
        let e = kernels.get(&l.kind.correlation().unwrap_or(0))?;
        match e.kind {
            EventKind::Kernel {
                stream: s, class, ..
            } => Some((s, class, e.dur.as_secs_f64())),
            _ => None,
        }
    };

    match ops_list {
        None => Some(
            launches
                .iter()
                .filter_map(|l| kernel_of(l))
                .filter(|(s, class, _)| {
                    *s == stream && !matches!(class, KernelClass::Collective(_))
                })
                .map(|(_, _, secs)| secs)
                .sum(),
        ),
        Some(ops_list) => {
            if launches.len() != ops_list.len() {
                return None; // mismatch: reassembly would error here
            }
            let mut total = 0.0;
            for (l, op) in launches.iter().zip(ops_list) {
                let Some((s, class, _)) = kernel_of(l) else {
                    continue; // launch without a kernel: reassembly keeps it unpriced
                };
                let is_collective_kernel = matches!(class, KernelClass::Collective(_));
                match (is_collective_kernel, kernel_class_of_op(&op.body)) {
                    // Kind mismatch in either direction is a
                    // reassembly error too, not just a count mismatch.
                    (true, Some(_)) | (false, None) => return None,
                    // Collectives are excluded from the bound.
                    (true, None) => {}
                    (false, Some(op_class)) => {
                        if s == stream {
                            total += lookup.compute_cost(&op_class).as_secs_f64();
                        }
                    }
                }
            }
            Some(total)
        }
    }
}

/// `true` when the library holds every block reassembly could request
/// for any candidate reachable from `base`: both phases of every
/// source layer plus embedding and head, for every (tp, dp) shard and
/// recorded micro-batch. [`lumos_core::manipulate::reassemble`] looks
/// blocks up with coordinates reduced modulo the base degrees, so
/// these key ranges are exhaustive — a complete library means
/// candidate evaluation can never fail on a missing block, which is
/// what makes bound-skipping safe (a skipped candidate must lose
/// deterministically, not dodge an error some other run would hit).
fn library_is_complete(library: &BlockLibrary, base: &TrainingSetup) -> bool {
    let par = base.parallelism;
    let mut kinds: Vec<BlockKind> = (0..base.model.num_layers).map(BlockKind::Layer).collect();
    kinds.push(BlockKind::Embed);
    kinds.push(BlockKind::Head);
    kinds.iter().all(|&kind| {
        (0..par.tp).all(|tp| {
            (0..par.dp).all(|dp| {
                (0..base.batch.num_microbatches).all(|mb| {
                    [Phase::Forward, Phase::Backward].iter().all(|&phase| {
                        library
                            .get(&BlockKey {
                                tp,
                                dp,
                                kind,
                                mb,
                                phase,
                            })
                            .is_some()
                    })
                })
            })
        })
    })
}

/// The stream carrying the most recorded non-collective kernel time —
/// the compute stream by the trace producers' convention, discovered
/// instead of assumed.
fn dominant_compute_stream(library: &BlockLibrary) -> Option<StreamId> {
    let mut totals: HashMap<StreamId, u128> = HashMap::new();
    for (_, block) in library.iter() {
        for e in &block.events {
            if let EventKind::Kernel { stream, class, .. } = e.kind {
                if !matches!(class, KernelClass::Collective(_)) {
                    *totals.entry(stream).or_insert(0) += e.dur.as_ns() as u128;
                }
            }
        }
    }
    totals
        .into_iter()
        .max_by_key(|&(s, total)| (total, std::cmp::Reverse(s.0)))
        .map(|(s, _)| s)
}
