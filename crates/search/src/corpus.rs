//! The adaptive engine's corpus: every grid index it has touched,
//! plus a bounded frontier of the best fully scored candidates that
//! the power schedule mutates next.
//!
//! Corpus entries are keyed by their mixed-radix grid index — the
//! same key the exhaustive walk uses for tie-breaks — so membership
//! checks, mutation dedup, and the final verification sweep all agree
//! on candidate identity for free.

use std::collections::HashSet;

/// One frontier entry: a fully scored, feasible candidate the power
/// schedule may pick as a mutation parent.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CorpusEntry {
    /// Mixed-radix grid index (candidate identity).
    pub index: usize,
    /// Objective key (lower is better, NaN-free by construction —
    /// non-finite keys are routed to the rejected list upstream).
    pub key: f64,
    /// Times the power schedule picked this entry as a parent.
    pub trials: usize,
}

/// Visited-set plus bounded best-first frontier.
pub(crate) struct Corpus {
    visited: HashSet<usize>,
    /// Sorted best-first by `(key, index)`; at most `cap` entries.
    frontier: Vec<CorpusEntry>,
    cap: usize,
}

impl Corpus {
    /// An empty corpus whose frontier keeps at most `cap` entries.
    pub(crate) fn new(cap: usize) -> Self {
        Corpus {
            visited: HashSet::new(),
            frontier: Vec::with_capacity(cap.min(1024)),
            cap: cap.max(1),
        }
    }

    /// Marks a grid index as processed; `true` the first time.
    /// Everything the engine touches — lattice rejects included — is
    /// recorded, so mutations never re-propose an index and the
    /// verification sweep never double-counts one.
    pub(crate) fn mark_visited(&mut self, index: usize) -> bool {
        self.visited.insert(index)
    }

    /// Whether an index has already been processed.
    #[cfg(test)]
    pub(crate) fn is_visited(&self, index: usize) -> bool {
        self.visited.contains(&index)
    }

    /// Distinct indices processed so far.
    pub(crate) fn visited_len(&self) -> usize {
        self.visited.len()
    }

    /// Offers a scored candidate to the frontier; kept only while it
    /// ranks within the best `cap` seen so far.
    pub(crate) fn insert(&mut self, index: usize, key: f64) {
        let entry = CorpusEntry {
            index,
            key,
            trials: 0,
        };
        let pos = self
            .frontier
            .partition_point(|e| (e.key, e.index) < (key, index));
        if pos >= self.cap {
            return;
        }
        self.frontier.insert(pos, entry);
        self.frontier.truncate(self.cap);
    }

    /// The frontier, best first.
    pub(crate) fn frontier(&self) -> &[CorpusEntry] {
        &self.frontier
    }

    /// Frontier size.
    pub(crate) fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    /// Charges one mutation trial to frontier slot `pos`.
    pub(crate) fn record_trial(&mut self, pos: usize) {
        if let Some(entry) = self.frontier.get_mut(pos) {
            entry.trials += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visited_set_deduplicates() {
        let mut corpus = Corpus::new(4);
        assert!(corpus.mark_visited(7));
        assert!(!corpus.mark_visited(7));
        assert!(corpus.is_visited(7));
        assert!(!corpus.is_visited(8));
        assert_eq!(corpus.visited_len(), 1);
    }

    #[test]
    fn frontier_keeps_the_best_cap_entries_sorted() {
        let mut corpus = Corpus::new(3);
        for (index, key) in [(10, 5.0), (11, 1.0), (12, 3.0), (13, 2.0), (14, 9.0)] {
            corpus.insert(index, key);
        }
        let keys: Vec<f64> = corpus.frontier().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![1.0, 2.0, 3.0]);
        assert_eq!(corpus.frontier_len(), 3);
    }

    #[test]
    fn equal_keys_tie_break_by_index() {
        let mut corpus = Corpus::new(4);
        corpus.insert(20, 1.0);
        corpus.insert(5, 1.0);
        let indices: Vec<usize> = corpus.frontier().iter().map(|e| e.index).collect();
        assert_eq!(indices, vec![5, 20]);
    }

    #[test]
    fn trials_accumulate_on_the_right_slot() {
        let mut corpus = Corpus::new(4);
        corpus.insert(1, 1.0);
        corpus.insert(2, 2.0);
        corpus.record_trial(1);
        corpus.record_trial(1);
        assert_eq!(corpus.frontier()[0].trials, 0);
        assert_eq!(corpus.frontier()[1].trials, 2);
    }
}
