//! Memory-feasibility pre-pruning: infeasible configurations never
//! reach simulation.

use crate::candidate::Candidate;
use lumos_model::{MemoryModel, TrainingSetup};

/// Counters over every grid point of a search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Grid points visited.
    pub enumerated: usize,
    /// Rejected: over GPU budget / not an allowed cluster size.
    pub budget_rejects: usize,
    /// Rejected: divisibility or setup-validity violations.
    pub divisibility_rejects: usize,
    /// Rejected: TP structure change unreachable from the trace.
    pub structural_rejects: usize,
    /// Pruned by the memory-feasibility gate (would OOM).
    pub memory_pruned: usize,
    /// Skipped by the analytic lower bound: provably ranked below the
    /// running top-k, so never fully simulated.
    pub bound_skipped: usize,
    /// Candidates that reached (parallel) simulation and were fully
    /// scored (including ones later rejected as infeasible).
    pub evaluated: usize,
    /// Fully scored candidates rejected with a typed infeasibility
    /// reason (degenerate bubble, zero makespan, non-finite objective)
    /// instead of being ranked.
    pub infeasible: usize,
    /// Distinct grid indices the adaptive engine decoded (seed
    /// probes, mutations, and the verification sweep). Zero on
    /// exhaustive runs, where `enumerated` already is the visit count.
    pub visited: usize,
    /// Mutation proposals the adaptive power schedule issued
    /// (including ones later rejected by the lattice or the screen).
    pub mutations: usize,
    /// Corpus entries on the adaptive frontier at termination — the
    /// pool the power schedule was still picking parents from.
    pub frontier: usize,
}

impl PruneStats {
    /// Everything that was cut before full simulation.
    pub fn total_skipped(&self) -> usize {
        self.budget_rejects
            + self.divisibility_rejects
            + self.structural_rejects
            + self.memory_pruned
            + self.bound_skipped
    }

    /// `part` as a percentage of the enumerated grid; `0.0` on an
    /// empty walk, so displays never divide by zero.
    pub fn percent(&self, part: usize) -> f64 {
        if self.enumerated == 0 {
            0.0
        } else {
            part as f64 * 100.0 / self.enumerated as f64
        }
    }

    /// Share of grid points cut before full simulation, in percent.
    pub fn skip_percent(&self) -> f64 {
        self.percent(self.total_skipped())
    }

    /// Share of grid points fully simulated, in percent.
    pub fn visit_percent(&self) -> f64 {
        self.percent(self.evaluated)
    }
}

/// Stage-cost memoization counters of one search run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lower-bound queries answered from the shared stage-cost cache.
    pub hits: usize,
    /// Queries that derived (and cached) fresh stage costs.
    pub misses: usize,
}

/// A candidate cut by the memory gate, with the evidence.
#[derive(Debug, Clone)]
pub struct PrunedCandidate {
    /// The infeasible candidate.
    pub candidate: Candidate,
    /// Its (validated) target setup label.
    pub label: String,
    /// Enumeration index of the candidate.
    pub index: usize,
    /// Pipeline stage that binds (overflows first).
    pub stage: u32,
    /// Bytes that stage requires.
    pub required_bytes: u64,
    /// Device capacity it exceeded.
    pub capacity_bytes: u64,
}

/// Splits candidates into memory-feasible and pruned, using
/// [`MemoryModel::check`] against `capacity` bytes per device.
///
/// The gate is exact with respect to the memory model: a candidate is
/// pruned **iff** its peak-stage estimate exceeds capacity (tested by
/// `pruning_is_exact_and_loses_no_candidate` in
/// `tests/search_engine.rs`). The streaming engine applies the same
/// check per-candidate ([`gate_one`]); this batch form serves callers
/// holding a materialized candidate list.
pub fn memory_gate(
    candidates: &[(Candidate, TrainingSetup)],
    memory: &MemoryModel,
    capacity: u64,
) -> (Vec<(Candidate, TrainingSetup)>, Vec<PrunedCandidate>) {
    let mut feasible = Vec::with_capacity(candidates.len());
    let mut pruned = Vec::new();
    for (index, (cand, setup)) in candidates.iter().enumerate() {
        match gate_one(index, cand, setup, memory, capacity) {
            None => feasible.push((*cand, setup.clone())),
            Some(p) => pruned.push(p),
        }
    }
    (feasible, pruned)
}

/// Checks one candidate against the memory gate: `None` when it fits,
/// the pruning evidence when it does not.
pub(crate) fn gate_one(
    index: usize,
    cand: &Candidate,
    setup: &TrainingSetup,
    memory: &MemoryModel,
    capacity: u64,
) -> Option<PrunedCandidate> {
    match memory.check(setup, capacity) {
        Ok(_) => None,
        Err(oom) => Some(PrunedCandidate {
            candidate: *cand,
            label: setup.label(),
            index,
            stage: oom.stage,
            required_bytes: oom.required,
            capacity_bytes: oom.capacity,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_model::{ModelConfig, Parallelism};

    #[test]
    fn percentages_guard_the_empty_space() {
        let empty = PruneStats::default();
        assert_eq!(empty.skip_percent(), 0.0);
        assert_eq!(empty.visit_percent(), 0.0);
        let stats = PruneStats {
            enumerated: 200,
            budget_rejects: 40,
            divisibility_rejects: 10,
            memory_pruned: 30,
            bound_skipped: 20,
            evaluated: 100,
            ..PruneStats::default()
        };
        assert_eq!(stats.skip_percent(), 50.0);
        assert_eq!(stats.visit_percent(), 50.0);
    }

    #[test]
    fn gate_partitions_exactly() {
        let tiny = TrainingSetup::new(ModelConfig::tiny(), Parallelism::new(1, 1, 1).unwrap());
        let big = TrainingSetup::new(ModelConfig::gpt3_175b(), Parallelism::new(1, 1, 1).unwrap());
        let cand = Candidate {
            tp: 1,
            pp: 1,
            dp: 1,
            microbatches: 2,
            interleave: 1,
            schedule: lumos_model::ScheduleKind::OneFOneB,
            arch: None,
        };
        let memory = MemoryModel::default();
        let capacity = 80 << 30;
        let input = vec![(cand, tiny), (cand, big)];
        let (feasible, pruned) = memory_gate(&input, &memory, capacity);
        assert_eq!(feasible.len(), 1);
        assert_eq!(pruned.len(), 1);
        assert!(pruned[0].required_bytes > pruned[0].capacity_bytes);
        assert!(pruned[0].label.contains("175"));
        assert_eq!(pruned[0].index, 1);
    }
}
