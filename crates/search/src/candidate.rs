//! One point of the search space and its mapping onto graph-
//! manipulation transforms.

use crate::space::{ArchPoint, SpaceSpec};
use lumos_core::manipulate::{apply_transforms, Transform};
use lumos_core::CoreError;
use lumos_model::{ScheduleKind, TrainingSetup};

/// One candidate configuration: a deployment (and optionally an
/// architecture variant) reachable from the base trace by graph
/// manipulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Candidate {
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Pipeline-parallel degree.
    pub pp: u32,
    /// Data-parallel degree.
    pub dp: u32,
    /// Micro-batches per iteration.
    pub microbatches: u32,
    /// Interleaved-1F1B virtual chunks (`1` = plain 1F1B).
    pub interleave: u32,
    /// Pipeline schedule this candidate runs under.
    pub schedule: ScheduleKind,
    /// Index into [`SpaceSpec::arch`]; `None` = base architecture.
    pub arch: Option<usize>,
}

impl Candidate {
    /// Total GPUs this candidate occupies.
    pub fn world_size(&self) -> u32 {
        self.tp * self.pp * self.dp
    }

    /// `TPxPPxDP` label in the paper's convention, with micro-batch /
    /// interleave / arch suffixes when they differ from defaults.
    pub fn label(&self, spec: &SpaceSpec) -> String {
        let mut s = format!("{}x{}x{}", self.tp, self.pp, self.dp);
        s.push_str(&format!(" m={}", self.microbatches));
        if self.interleave > 1 {
            s.push_str(&format!(" v={}", self.interleave));
        }
        if !spec.schedules.is_empty() {
            // Only disambiguate when the schedule is actually an
            // enumerated axis; default spaces keep their old labels.
            s.push_str(&format!(" s={}", self.schedule.name()));
        }
        if let Some(i) = self.arch {
            if let Some(a) = spec.arch.get(i) {
                s.push_str(&format!(" [{}]", a.label));
            }
        }
        s
    }

    /// The architecture point this candidate targets, if any.
    pub fn arch_point<'s>(&self, spec: &'s SpaceSpec) -> Option<&'s ArchPoint> {
        self.arch.and_then(|i| spec.arch.get(i))
    }

    /// The transform list taking the base setup to this candidate
    /// (identity candidates produce an empty list).
    pub fn transforms_from(&self, base: &TrainingSetup, spec: &SpaceSpec) -> Vec<Transform> {
        let mut transforms = Vec::new();
        if let Some(a) = self.arch_point(spec) {
            if a.layers != base.model.num_layers {
                transforms.push(Transform::NumLayers { layers: a.layers });
            }
            if a.hidden != base.model.hidden_size || a.ffn != base.model.ffn_size {
                transforms.push(Transform::HiddenSize {
                    hidden: a.hidden,
                    ffn: a.ffn,
                });
            }
        }
        if self.tp != base.parallelism.tp {
            transforms.push(Transform::TensorParallel { tp: self.tp });
        }
        if self.pp != base.parallelism.pp {
            transforms.push(Transform::PipelineParallel { pp: self.pp });
        }
        if self.dp != base.parallelism.dp {
            transforms.push(Transform::DataParallel { dp: self.dp });
        }
        if self.microbatches != base.batch.num_microbatches {
            transforms.push(Transform::Microbatches {
                num: self.microbatches,
            });
        }
        transforms
    }

    /// Applies [`Candidate::transforms_from`] to the base, validating
    /// the resulting setup.
    ///
    /// # Errors
    ///
    /// Returns divisibility/validity violations of the target setup.
    pub fn target_setup(
        &self,
        base: &TrainingSetup,
        spec: &SpaceSpec,
    ) -> Result<TrainingSetup, CoreError> {
        let mut setup = apply_transforms(base, &self.transforms_from(base, spec))?;
        // The schedule is regenerated (not transformed from recorded
        // blocks), so it swaps directly.
        setup.schedule = self.schedule;
        Ok(setup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_model::{ModelConfig, Parallelism};

    fn base() -> TrainingSetup {
        TrainingSetup::new(ModelConfig::tiny(), Parallelism::new(1, 2, 1).unwrap())
    }

    fn cand(tp: u32, pp: u32, dp: u32, m: u32) -> Candidate {
        Candidate {
            tp,
            pp,
            dp,
            microbatches: m,
            interleave: 1,
            schedule: ScheduleKind::OneFOneB,
            arch: None,
        }
    }

    #[test]
    fn identity_candidate_has_no_transforms() {
        let b = base();
        let c = cand(1, 2, 1, b.batch.num_microbatches);
        assert!(c.transforms_from(&b, &SpaceSpec::empty()).is_empty());
        assert_eq!(c.target_setup(&b, &SpaceSpec::empty()).unwrap(), b);
    }

    #[test]
    fn deployment_changes_map_to_transforms() {
        let b = base();
        let c = cand(1, 2, 4, 8);
        let ts = c.transforms_from(&b, &SpaceSpec::empty());
        assert_eq!(ts.len(), 2); // dp + microbatches
        let target = c.target_setup(&b, &SpaceSpec::empty()).unwrap();
        assert_eq!(target.parallelism.dp, 4);
        assert_eq!(target.batch.num_microbatches, 8);
    }

    #[test]
    fn arch_axis_maps_to_shape_transforms() {
        let b = base();
        let spec = SpaceSpec::empty().with_arch(vec![ArchPoint::new("deep", 4, 256, 1024)]);
        let c = Candidate {
            arch: Some(0),
            ..cand(1, 2, 1, b.batch.num_microbatches)
        };
        let target = c.target_setup(&b, &spec).unwrap();
        assert_eq!(target.model.num_layers, 4);
    }

    #[test]
    fn label_is_humane() {
        let c = Candidate {
            interleave: 2,
            ..cand(2, 4, 8, 16)
        };
        let label = c.label(&SpaceSpec::empty());
        assert!(label.contains("2x4x8"));
        assert!(label.contains("v=2"));
        assert_eq!(c.world_size(), 64);
    }
}
